"""RSVP-style per-flow resource reservation (Section V-A1).

The paper: "the possibility to provide QoS guarantees on specific AR
applications could be a commercial argument for mobile broadband
operators".  This module implements the data plane such a guarantee
needs plus a minimal signaling layer:

- :class:`ReservedQueue` — a queue discipline with per-flow guaranteed
  rates: reserved flows are served by strict priority *within* their
  token-bucket allowance (so a reservation cannot be starved, and
  cannot hog beyond its reservation either), everything else shares a
  FIFO.
- :class:`ReservationTable` / :func:`reserve_path` — walks the current
  route and installs the reservation on every link, converting link
  queues to :class:`ReservedQueue` as needed (the PATH/RESV handshake
  collapsed to an instantaneous control-plane action, admission
  control included).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.simnet.link import Link
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.simnet.queues import QueueDiscipline


class AdmissionError(RuntimeError):
    """The requested reservation exceeds a link's admittable capacity."""


@dataclass
class _Reservation:
    flow: str
    rate_bps: float
    bucket_bits: float
    max_burst_bits: float
    queue: Deque[Packet] = field(default_factory=deque)


class ReservedQueue(QueueDiscipline):
    """Guaranteed-rate queue: reserved flows first, within token bounds.

    ``dequeue`` refills each reservation's token bucket from elapsed
    time, serves any reserved flow with both a packet and tokens, then
    falls back to the best-effort FIFO.  Tokens cap at one ``burst``
    so idle reservations cannot save up unbounded credit.
    """

    def __init__(self, capacity: int = 1000, burst_seconds: float = 0.05) -> None:
        super().__init__()
        self.capacity = capacity
        self.burst_seconds = burst_seconds
        self._reservations: Dict[str, _Reservation] = {}
        self._best_effort: Deque[Packet] = deque()
        self._last_refill = 0.0
        self._len = 0

    # ------------------------------------------------------------------
    def add_reservation(self, flow: str, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        burst = rate_bps * self.burst_seconds
        self._reservations[flow] = _Reservation(
            flow=flow, rate_bps=rate_bps, bucket_bits=burst, max_burst_bits=burst,
        )

    def remove_reservation(self, flow: str) -> None:
        reservation = self._reservations.pop(flow, None)
        if reservation is not None:
            # Stranded packets fall back to best effort.
            self._best_effort.extend(reservation.queue)

    def reserved_rate_bps(self) -> float:
        return sum(r.rate_bps for r in self._reservations.values())

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> bool:
        if self._len >= self.capacity:
            # Buffer protection: a reserved packet evicts a best-effort
            # one rather than being tail-dropped behind a flood.
            if packet.flow in self._reservations and self._best_effort:
                victim = self._best_effort.pop()
                self.byte_count -= victim.size
                self._len -= 1
                self.drops += 1
            else:
                self.drops += 1
                return False
        packet.enqueued_at = now
        reservation = self._reservations.get(packet.flow)
        if reservation is not None:
            reservation.queue.append(packet)
        else:
            self._best_effort.append(packet)
        self.byte_count += packet.size
        self._len += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        self._refill(now)
        # Reserved flows first, if they have tokens.
        for reservation in self._reservations.values():
            if reservation.queue and reservation.bucket_bits >= reservation.queue[0].bits:
                packet = reservation.queue.popleft()
                reservation.bucket_bits -= packet.bits
                self._pop_accounting(packet)
                return packet
        if self._best_effort:
            packet = self._best_effort.popleft()
            self._pop_accounting(packet)
            return packet
        # Starvation guard: nothing best-effort and every reserved flow
        # is out of tokens — serve the longest-waiting reserved packet
        # anyway (work conservation; the link would otherwise idle).
        waiting = [r for r in self._reservations.values() if r.queue]
        if waiting:
            reservation = min(waiting, key=lambda r: r.queue[0].enqueued_at)
            packet = reservation.queue.popleft()
            self._pop_accounting(packet)
            return packet
        return None

    def _pop_accounting(self, packet: Packet) -> None:
        self.byte_count -= packet.size
        self._len -= 1

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed <= 0:
            return
        self._last_refill = now
        for reservation in self._reservations.values():
            reservation.bucket_bits = min(
                reservation.max_burst_bits,
                reservation.bucket_bits + reservation.rate_bps * elapsed,
            )

    def __len__(self) -> int:
        return self._len


class ReservationTable:
    """Network-wide reservation bookkeeping with admission control.

    ``admission_fraction`` bounds how much of each link's capacity may
    be promised away (the rest stays best-effort).
    """

    def __init__(self, net: Network, admission_fraction: float = 0.8) -> None:
        self.net = net
        self.admission_fraction = admission_fraction
        self.reservations: Dict[str, List[Link]] = {}

    def reserve_path(self, src: str, dst: str, flow: str, rate_bps: float) -> List[Link]:
        """Install a guaranteed rate for ``flow`` on every link of the
        current ``src``→``dst`` route.  Raises :class:`AdmissionError`
        (installing nothing) if any link lacks capacity."""
        links = self.net.path_links(src, dst)
        # Admission check on all links first — atomic install.
        for link in links:
            queue = link.queue
            already = queue.reserved_rate_bps() if isinstance(queue, ReservedQueue) else 0.0
            if already + rate_bps > link.rate_bps * self.admission_fraction:
                raise AdmissionError(
                    f"link {link.name} cannot admit {rate_bps / 1e6:.2f} Mb/s "
                    f"(reserved {already / 1e6:.2f} of {link.rate_bps / 1e6:.2f})"
                )
        for link in links:
            if not isinstance(link.queue, ReservedQueue):
                link.queue = self._convert(link.queue)
            link.queue.add_reservation(flow, rate_bps)
        self.reservations[flow] = links
        return links

    def release(self, flow: str) -> None:
        for link in self.reservations.pop(flow, []):
            if isinstance(link.queue, ReservedQueue):
                link.queue.remove_reservation(flow)

    @staticmethod
    def _convert(old_queue: QueueDiscipline) -> ReservedQueue:
        """Swap a link's discipline, preserving whatever is queued."""
        capacity = getattr(old_queue, "capacity", 1000)
        new_queue = ReservedQueue(capacity=capacity)
        while True:
            packet = old_queue.dequeue(0.0)
            if packet is None:
                break
            new_queue.enqueue(packet, packet.enqueued_at)
        return new_queue
