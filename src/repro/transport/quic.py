"""QUIC-like transport (Section V-B2), simplified.

The paper lists QUIC as combining "functionalities from TCP, Multipath
TCP, TLS, and HTTP".  The properties relevant to MAR — and implemented
here — are:

- **stream multiplexing without head-of-line blocking**: independent
  streams over one connection; a loss on stream A never stalls stream
  B's delivery (the TCP baseline stalls everything behind the hole);
- **0/1-RTT setup**: a resumed connection sends data immediately;
- connection-level NewReno-style congestion control over UDP;
- per-packet (not per-byte) loss detection with fast retransmit on
  packet-number gaps and a probe timeout.

Packets carry (packet_number, stream_id, stream_offset, length); ACK
frames carry the largest received number plus a compact gap list, close
to the real wire image but unserialized.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.simnet.node import Host
from repro.simnet.packet import IP_UDP_HEADER, Packet
from repro.transport.base import SocketBase

QUIC_HEADER = 20
MAX_DATAGRAM = 1200
ACK_SIZE = 64
PTO_MIN = 0.05


class QuicStream:
    """Receive-side state of one stream: in-order delivery per stream."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self.next_offset = 0
        self.segments: Dict[int, int] = {}   # offset -> length
        self.delivered = 0

    def on_segment(self, offset: int, length: int) -> int:
        """Buffer a segment; returns bytes newly delivered in order."""
        if offset + length <= self.next_offset:
            return 0
        self.segments[offset] = max(self.segments.get(offset, 0), length)
        newly = 0
        progressed = True
        while progressed:
            progressed = False
            for off in sorted(self.segments):
                seg_len = self.segments[off]
                if off <= self.next_offset < off + seg_len or off == self.next_offset:
                    advance = off + seg_len - self.next_offset
                    if advance > 0:
                        self.next_offset += advance
                        newly += advance
                    del self.segments[off]
                    progressed = True
                    break
                if off + seg_len <= self.next_offset:
                    del self.segments[off]
                    progressed = True
                    break
        self.delivered += newly
        return newly


class QuicConnection(SocketBase):
    """One endpoint of a QUIC-like connection.

    Create both endpoints, point them at each other, then call
    :meth:`connect` on the client (pass ``resumed=True`` for 0-RTT).
    ``on_stream_data(stream_id, nbytes)`` fires as stream bytes are
    delivered in per-stream order.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        dst: str,
        dst_port: int,
        on_stream_data: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        super().__init__(host, port)
        self.dst = dst
        self.dst_port = dst_port
        self.on_stream_data = on_stream_data
        self.established = False
        self.handshake_rtts = 0

        # --- sender state ---
        self._next_pn = 0
        self._stream_offsets: Dict[int, int] = {}
        self._pending: List[Tuple[int, int, int]] = []  # (stream, offset, len)
        self._inflight: Dict[int, Tuple[int, int, int, float, bool]] = {}
        self.cwnd = 10 * MAX_DATAGRAM
        self.ssthresh = 1 << 30
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._largest_acked = -1
        self._pto_event = None
        self.retransmits = 0
        self.packets_sent = 0

        # --- receiver state ---
        self.streams: Dict[int, QuicStream] = {}
        self._received_pns: Set[int] = set()
        self._largest_rx = -1
        self._ack_pending = False

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def connect(self, resumed: bool = False) -> None:
        """1-RTT handshake, or 0-RTT when resuming a known server."""
        if resumed:
            self.established = True
            self.handshake_rtts = 0
            self._flush()
        else:
            packet = self._packet(self.dst, self.dst_port, QUIC_HEADER + 48,
                                  kind="quic-initial")
            self._transmit(packet)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_stream(self, stream_id: int, nbytes: int) -> None:
        """Queue bytes on a stream."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        offset = self._stream_offsets.get(stream_id, 0)
        self._stream_offsets[stream_id] = offset + nbytes
        while nbytes > 0:
            chunk = min(nbytes, MAX_DATAGRAM)
            self._pending.append((stream_id, offset, chunk))
            offset += chunk
            nbytes -= chunk
        self._flush()

    @property
    def bytes_in_flight(self) -> int:
        return sum(length for _, _, length, _, _ in self._inflight.values())

    # ------------------------------------------------------------------
    # Sending machinery
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if not self.established:
            return
        while self._pending and self.bytes_in_flight < self.cwnd:
            stream_id, offset, length = self._pending.pop(0)
            self._send_segment(stream_id, offset, length, retransmit=False)
        self._arm_pto()

    def _send_segment(self, stream_id: int, offset: int, length: int,
                      retransmit: bool) -> None:
        pn = self._next_pn
        self._next_pn += 1
        self._inflight[pn] = (stream_id, offset, length, self.sim.now, retransmit)
        if retransmit:
            self.retransmits += 1
        self.packets_sent += 1
        packet = self._packet(
            self.dst, self.dst_port, length + QUIC_HEADER + IP_UDP_HEADER,
            kind="quic-data",
            flow=f"quic:{self.host.name}:{self.port}",
            pn=pn, stream=stream_id, offset=offset, len=length,
        )
        self._transmit(packet)

    def _arm_pto(self) -> None:
        if self._inflight:
            pto = max(PTO_MIN, (self.srtt or 0.1) * 2 + 4 * self.rttvar)
            if self._pto_event is not None:
                # Re-arm in place: no cancelled entry left in the heap.
                self._pto_event = self.sim.reschedule(self._pto_event, pto)
            else:
                self._pto_event = self.sim.schedule(pto, self._on_pto)
        elif self._pto_event is not None:
            self._pto_event.cancel()
            self._pto_event = None

    def _on_pto(self) -> None:
        """Probe timeout: retransmit the oldest packet, collapse cwnd."""
        self._pto_event = None
        if not self._inflight:
            return
        oldest = min(self._inflight)
        stream_id, offset, length, _, _ = self._inflight.pop(oldest)
        self.ssthresh = max(self.cwnd // 2, 2 * MAX_DATAGRAM)
        self.cwnd = 2 * MAX_DATAGRAM
        self._send_segment(stream_id, offset, length, retransmit=True)
        self._arm_pto()

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        kind = packet.kind
        if kind == "quic-initial":
            self.established = True
            reply = self._packet(packet.src, packet.src_port,
                                 QUIC_HEADER + 48, kind="quic-accept")
            self._transmit(reply)
        elif kind == "quic-accept":
            if not self.established:
                self.established = True
                self.handshake_rtts = 1
                self._flush()
        elif kind == "quic-data":
            self._on_data(packet)
        elif kind == "quic-ack":
            self._on_ack(packet)

    def _on_data(self, packet: Packet) -> None:
        self.established = True
        pn = packet.payload["pn"]
        if pn in self._received_pns:
            return
        self._received_pns.add(pn)
        self._largest_rx = max(self._largest_rx, pn)
        stream_id = packet.payload["stream"]
        stream = self.streams.setdefault(stream_id, QuicStream(stream_id))
        newly = stream.on_segment(packet.payload["offset"], packet.payload["len"])
        if newly and self.on_stream_data is not None:
            self.on_stream_data(stream_id, newly)
        if not self._ack_pending:
            self._ack_pending = True
            self.sim.schedule(0.005, self._send_ack, packet.src, packet.src_port)

    def _send_ack(self, peer: str, peer_port: int) -> None:
        self._ack_pending = False
        floor = max(0, self._largest_rx - 256)
        missing = [
            pn for pn in range(floor, self._largest_rx + 1)
            if pn not in self._received_pns
        ]
        packet = self._packet(peer, peer_port, ACK_SIZE, kind="quic-ack",
                              largest=self._largest_rx, missing=missing[:64])
        self._transmit(packet)

    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        largest = packet.payload["largest"]
        missing = set(packet.payload["missing"])
        acked_bytes = 0
        for pn in [p for p in self._inflight if p <= largest and p not in missing]:
            stream_id, offset, length, sent_at, retransmitted = self._inflight.pop(pn)
            acked_bytes += length
            if not retransmitted:
                self._sample_rtt(self.sim.now - sent_at)
        if acked_bytes:
            if self.cwnd < self.ssthresh:
                self.cwnd += acked_bytes                      # slow start
            else:
                self.cwnd += MAX_DATAGRAM * acked_bytes // self.cwnd
        # Fast retransmit: packets 3+ below the largest ack still missing.
        for pn in sorted(self._inflight):
            if pn <= largest - 3 and pn in missing | set(self._inflight):
                if pn in missing or pn < largest - 3:
                    stream_id, offset, length, _, _ = self._inflight.pop(pn)
                    self.ssthresh = max(self.cwnd // 2, 2 * MAX_DATAGRAM)
                    self.cwnd = self.ssthresh
                    self._send_segment(stream_id, offset, length, retransmit=True)
                    break
        self._largest_acked = max(self._largest_acked, largest)
        self._flush()

    def _sample_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    # ------------------------------------------------------------------
    def stream_delivered(self, stream_id: int) -> int:
        stream = self.streams.get(stream_id)
        return stream.delivered if stream else 0
