"""UDP: unreliable, unordered datagram service.

MARTP (Section VI-H: "the actual implementation of this protocol may be
done on top of UDP at the application level") runs entirely over this
socket.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.node import Host
from repro.simnet.packet import IP_UDP_HEADER, Packet
from repro.transport.base import SocketBase


class UdpSocket(SocketBase):
    """A datagram socket.

    ``on_receive`` is called with each arriving packet.  ``sendto``
    accounts for IP/UDP header overhead on the wire.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        on_receive: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        super().__init__(host, port)
        self.on_receive = on_receive
        self.bytes_sent = 0
        self.bytes_received = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def sendto(
        self,
        dst: str,
        dst_port: int,
        size: int,
        kind: str = "data",
        flow: str = "",
        **payload,
    ) -> Packet:
        """Send ``size`` payload bytes (+28 B header) to ``dst:dst_port``."""
        if self.closed:
            raise RuntimeError("socket is closed")
        packet = self._packet(dst, dst_port, size + IP_UDP_HEADER, kind, flow, **payload)
        self._transmit(packet)
        self.bytes_sent += packet.size
        self.datagrams_sent += 1
        return packet

    def on_packet(self, packet: Packet) -> None:
        self.bytes_received += packet.size
        self.datagrams_received += 1
        if self.on_receive is not None:
            self.on_receive(packet)
