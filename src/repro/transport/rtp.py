"""RTP-like media framing with a playout jitter buffer.

Section V-A2 surveys RTP/RTCP as inspiration for an AR transport: media
timestamps, jitter compensation, and QoS feedback.  This module
provides the receive-side playout model used to evaluate how much
buffering a given network path forces on an interactive stream —
directly trading latency (buffer depth) for frame-loss (late frames).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.simnet.node import Host
from repro.simnet.packet import Packet
from repro.transport.udp import UdpSocket


class RtpStream:
    """Sender side: stamps outgoing media units with sequence + timestamp."""

    def __init__(self, socket: UdpSocket, dst: str, dst_port: int, ssrc: int = 1) -> None:
        self.socket = socket
        self.dst = dst
        self.dst_port = dst_port
        self.ssrc = ssrc
        self.seq = 0
        self.frames_sent = 0

    def send_frame(self, size: int, media_ts: Optional[float] = None, **extra) -> None:
        """Send one media unit of ``size`` bytes."""
        ts = media_ts if media_ts is not None else self.socket.sim.now
        self.socket.sendto(
            self.dst,
            self.dst_port,
            size,
            kind="rtp",
            flow=f"rtp:{self.ssrc}",
            rtp_seq=self.seq,
            rtp_ts=ts,
            ssrc=self.ssrc,
            **extra,
        )
        self.seq += 1
        self.frames_sent += 1


class RtpReceiver:
    """Receive side: playout buffer with fixed delay.

    Frames are released to ``on_play(seq, payload)`` exactly
    ``playout_delay`` seconds after their media timestamp; frames
    arriving after their deadline are counted late and dropped.  The
    interarrival jitter estimator follows RFC 3550 §6.4.1.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        playout_delay: float = 0.05,
        on_play: Optional[Callable[[int, dict], None]] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.playout_delay = playout_delay
        self.on_play = on_play
        self.socket = UdpSocket(host, port, on_receive=self._on_packet)
        self.jitter = 0.0
        self._last_transit: Optional[float] = None
        self.received = 0
        self.played = 0
        self.late = 0
        self.max_seq = -1
        self.playout_log: List[Tuple[float, int]] = []

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != "rtp":
            return
        self.received += 1
        seq = packet.payload["rtp_seq"]
        self.max_seq = max(self.max_seq, seq)
        transit = self.sim.now - packet.payload["rtp_ts"]
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self.jitter += (d - self.jitter) / 16.0
        self._last_transit = transit
        deadline = packet.payload["rtp_ts"] + self.playout_delay
        if self.sim.now > deadline:
            self.late += 1
            return
        self.sim.schedule_at(deadline, self._play, seq, dict(packet.payload))

    def _play(self, seq: int, payload: dict) -> None:
        self.played += 1
        self.playout_log.append((self.sim.now, seq))
        if self.on_play is not None:
            self.on_play(seq, payload)

    @property
    def loss_fraction(self) -> float:
        """Fraction of the sequence space never played (lost or late)."""
        expected = self.max_seq + 1
        if expected <= 0:
            return 0.0
        return 1.0 - self.played / expected
