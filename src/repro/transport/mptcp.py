"""Multipath TCP (Section V-B1), simplified.

The paper cites MPTCP for two benefits: (1) aggregating WiFi + 4G
capacity toward MAR's bandwidth needs, and (2) smoothing handover
(Paasch et al.).  This module implements the data-plane behaviours
those claims rest on:

- one connection = several :class:`~repro.transport.tcp.TcpConnection`
  subflows, each with its own congestion state (loosely-coupled —
  plain per-subflow NewReno, adequate for the experiments here);
- a connection-level byte stream sprayed over subflows by a
  lowest-RTT-first scheduler with per-subflow window limits;
- connection-level data-sequence (DSN) reassembly at the receiver:
  the sender records which DSN interval rides on which subflow (the
  stand-in for DSN headers, since segment payloads are not
  materialized), and the receiver maps each subflow's in-order TCP
  delivery back to DSN space, deduplicating against the set of
  already-delivered intervals;
- subflow failure handling: when a subflow's path dies, every byte the
  subflow has not cumulatively acked — in flight *and* sitting in its
  send backlog — is re-injected on the survivors (the handover
  mechanism).  Spurious failovers therefore deliver some bytes twice;
  the receiver counts those as ``duplicate_bytes`` rather than new
  data.

Setup uses the same simplified handshake as the TCP module.  A real
MPTCP couples congestion windows (LIA/OLIA) for bottleneck fairness;
the experiments here never share a bottleneck between subflows of the
same connection, so the coupling is out of scope and documented as
such.
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.simnet.node import Host
from repro.transport.tcp import TcpConnection, TcpListener


class _IntervalSet:
    """Sorted disjoint half-open byte intervals with overlap accounting."""

    def __init__(self) -> None:
        self._spans: List[List[int]] = []    # sorted, disjoint [start, end)
        self.total = 0                       # bytes covered

    def add(self, start: int, end: int) -> int:
        """Insert ``[start, end)``; return the number of NEW bytes covered."""
        if end <= start:
            return 0
        spans = self._spans
        # Find insertion window by linear scan from a bisected start; the
        # sets here stay small (merged contiguous transfer prefixes).
        lo = 0
        while lo < len(spans) and spans[lo][1] < start:
            lo += 1
        hi = lo
        new_start, new_end = start, end
        overlap = 0
        while hi < len(spans) and spans[hi][0] <= end:
            overlap += min(spans[hi][1], end) - max(spans[hi][0], start)
            new_start = min(new_start, spans[hi][0])
            new_end = max(new_end, spans[hi][1])
            hi += 1
        spans[lo:hi] = [[new_start, new_end]]
        fresh = (end - start) - overlap
        self.total += fresh
        return fresh

    def contiguous_from_zero(self) -> int:
        """Length of the delivered prefix starting at DSN 0."""
        if self._spans and self._spans[0][0] == 0:
            return self._spans[0][1]
        return 0


class MptcpSender:
    """Connection-level sender over several TCP subflows.

    Parameters
    ----------
    subflows:
        Client-side :class:`TcpConnection` endpoints, already created
        (typically one per access interface, each on its own host so
        routes diverge).  They are connected by :meth:`connect`.
    """

    def __init__(self, subflows: List[TcpConnection]) -> None:
        if not subflows:
            raise ValueError("need at least one subflow")
        self.subflows = subflows
        self.sim = subflows[0].sim
        self._alive: Dict[int, bool] = {i: True for i in range(len(subflows))}
        self._connected = 0
        self._pending_bytes = 0
        self._dsn = 0                     # next fresh data-sequence byte
        self._assigned: Dict[int, int] = {}  # subflow -> total conn bytes assigned
        #: DSN intervals awaiting subflow assignment, in send order.
        #: Re-injected intervals go to the front (retransmit priority).
        self._send_queue: Deque[Tuple[int, int]] = deque()
        #: Per-subflow append-only assignment log: the DSN interval each
        #: subflow-level chunk carries.  This is the simulation stand-in
        #: for the DSN header riding in segment payloads; the receiver
        #: reads it to reassemble connection-level delivery.
        self.dsn_log: List[List[Tuple[int, int]]] = []
        self.reinjected_bytes = 0
        self.on_established: Optional[Callable[[], None]] = None
        for i, subflow in enumerate(subflows):
            self._assigned[i] = 0
            self.dsn_log.append([])
            subflow.on_established = self._make_established(i)

    # ------------------------------------------------------------------
    def connect(self) -> None:
        for subflow in self.subflows:
            subflow.connect()

    def _make_established(self, index: int):
        return functools.partial(self._subflow_established, index)

    def _subflow_established(self, index: int) -> None:
        self._connected += 1
        if self._connected == 1 and self.on_established is not None:
            self.on_established()
        self._pump()

    # ------------------------------------------------------------------
    def send(self, nbytes: int) -> None:
        """Queue connection-level bytes for transmission."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._send_queue.append((self._dsn, self._dsn + nbytes))
        self._dsn += nbytes
        self._pending_bytes += nbytes
        self._pump()

    def set_alive(self, index: int, alive: bool) -> None:
        """Mark a subflow's path up/down (handover signalling).

        On failure, every byte the subflow has not cumulatively acked is
        re-injected on the survivors: bytes in flight AND bytes parked
        in the subflow's send backlog (``app_bytes - snd_nxt``) — the
        backlog is equally stranded when the path dies, and dropping it
        silently loses data (found by repro.check's handover harness).
        """
        was_alive = self._alive[index]
        self._alive[index] = alive
        if was_alive and not alive:
            subflow = self.subflows[index]
            stranded = self._stranded_intervals(index, subflow.snd_una,
                                                subflow.app_bytes)
            for start, end in reversed(stranded):
                self._send_queue.appendleft((start, end))
                self._pending_bytes += end - start
                self.reinjected_bytes += end - start
        self._pump()

    def _stranded_intervals(self, index: int, acked_offset: int,
                            sent_offset: int) -> List[Tuple[int, int]]:
        """DSN intervals mapping to subflow bytes ``[acked, sent)``."""
        out: List[Tuple[int, int]] = []
        offset = 0
        for start, end in self.dsn_log[index]:
            length = end - start
            lo = max(acked_offset, offset)
            hi = min(sent_offset, offset + length)
            if lo < hi:
                out.append((start + (lo - offset), start + (hi - offset)))
            offset += length
            if offset >= sent_offset:
                break
        return out

    # ------------------------------------------------------------------
    def _usable(self) -> List[Tuple[int, TcpConnection]]:
        return [
            (i, s) for i, s in enumerate(self.subflows)
            if self._alive[i] and s.state == "established"
        ]

    def _pump(self) -> None:
        """Spray pending bytes over usable subflows, lowest RTT first."""
        while self._pending_bytes > 0:
            usable = self._usable()
            if not usable:
                return
            # Prefer the lowest-srtt subflow with spare window AND a
            # shallow unsent backlog — assigning ahead of the window
            # would pin bytes to one subflow regardless of how path
            # capacities actually evolve.
            def srtt_of(pair):
                return pair[1].srtt if pair[1].srtt is not None else 0.05
            candidates = [
                (i, s) for i, s in sorted(usable, key=srtt_of)
                if s.bytes_in_flight < s.cwnd
                and (s.app_bytes - s.snd_nxt) < 2 * s.mss
            ]
            if not candidates:
                # Everyone is window-limited; retry when ACKs open windows.
                self.sim.schedule(0.01, self._pump)
                return
            index, subflow = candidates[0]
            chunk = min(
                self._pending_bytes,
                max(int(subflow.cwnd - subflow.bytes_in_flight), subflow.mss),
            )
            self.dsn_log[index].extend(self._take(chunk))
            subflow.send(chunk)
            self._assigned[index] += chunk
            self._pending_bytes -= chunk

    def _take(self, nbytes: int) -> List[Tuple[int, int]]:
        """Pop ``nbytes`` worth of DSN intervals off the send queue."""
        out: List[Tuple[int, int]] = []
        remaining = nbytes
        while remaining > 0:
            start, end = self._send_queue.popleft()
            length = end - start
            if length <= remaining:
                out.append((start, end))
                remaining -= length
            else:
                out.append((start, start + remaining))
                self._send_queue.appendleft((start + remaining, end))
                remaining = 0
        return out

    # ------------------------------------------------------------------
    @property
    def bytes_acked(self) -> int:
        return sum(s.snd_una for s in self.subflows)

    def subflow_share(self, index: int) -> float:
        total = sum(self._assigned.values())
        return self._assigned[index] / total if total else 0.0


class MptcpReceiver:
    """Connection-level DSN reassembly over per-subflow listeners.

    Each TCP subflow delivers exactly-once and in order at the subflow
    level; this class maps those deliveries back to connection DSN space
    using the sender's assignment log (the stand-in for DSN headers) and
    splits the aggregate into unique versus duplicate bytes.  Attach the
    sender with :meth:`attach_sender` to enable DSN accounting; without
    it the receiver degrades to raw byte counting (``bytes_received``),
    the original behaviour.
    """

    def __init__(self, host: Host, ports: List[int],
                 sender: Optional[MptcpSender] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.bytes_received = 0
        self.bytes_delivered_unique = 0
        self.duplicate_bytes = 0
        self.delivery_log: List[Tuple[float, int]] = []
        self._sender: Optional[MptcpSender] = None
        self._delivered = _IntervalSet()
        self._consumed: List[int] = []       # per-subflow delivered bytes
        self._log_pos: List[Tuple[int, int]] = []  # (entry idx, offset) cursor
        self.listeners = [
            TcpListener(host, port,
                        on_accept=functools.partial(self._on_accept, i))
            for i, port in enumerate(ports)
        ]
        if sender is not None:
            self.attach_sender(sender)

    def attach_sender(self, sender: MptcpSender) -> None:
        """Wire the sender whose ``dsn_log`` describes subflow payloads."""
        if len(sender.subflows) != len(self.listeners):
            raise ValueError("sender subflow count != receiver port count")
        self._sender = sender
        self._consumed = [0] * len(self.listeners)
        self._log_pos = [(0, 0)] * len(self.listeners)

    def _on_accept(self, index: int, conn: TcpConnection) -> None:
        conn.on_data = functools.partial(self._on_data, index)

    def _on_data(self, index: int, nbytes: int) -> None:
        self.bytes_received += nbytes
        self.delivery_log.append((self.sim.now, nbytes))
        if self._sender is None:
            return
        for start, end in self._dsn_intervals(index, nbytes):
            fresh = self._delivered.add(start, end)
            self.bytes_delivered_unique += fresh
            self.duplicate_bytes += (end - start) - fresh
        self._consumed[index] += nbytes

    def _dsn_intervals(self, index: int, nbytes: int) -> List[Tuple[int, int]]:
        """Advance subflow ``index``'s log cursor by ``nbytes``."""
        log = self._sender.dsn_log[index]
        entry, offset = self._log_pos[index]
        out: List[Tuple[int, int]] = []
        remaining = nbytes
        while remaining > 0:
            start, end = log[entry]
            avail = (end - start) - offset
            step = min(avail, remaining)
            out.append((start + offset, start + offset + step))
            remaining -= step
            offset += step
            if offset == end - start:
                entry, offset = entry + 1, 0
        self._log_pos[index] = (entry, offset)
        return out

    # ------------------------------------------------------------------
    @property
    def bytes_contiguous(self) -> int:
        """In-order app-deliverable prefix: contiguous DSN bytes from 0."""
        return self._delivered.contiguous_from_zero()

    def throughput_bps(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        total = sum(n for t, n in self.delivery_log if t0 < t <= t1)
        return total * 8 / (t1 - t0)
