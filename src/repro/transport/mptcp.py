"""Multipath TCP (Section V-B1), simplified.

The paper cites MPTCP for two benefits: (1) aggregating WiFi + 4G
capacity toward MAR's bandwidth needs, and (2) smoothing handover
(Paasch et al.).  This module implements the data-plane behaviours
those claims rest on:

- one connection = several :class:`~repro.transport.tcp.TcpConnection`
  subflows, each with its own congestion state (loosely-coupled —
  plain per-subflow NewReno, adequate for the experiments here);
- a connection-level byte stream sprayed over subflows by a
  lowest-RTT-first scheduler with per-subflow window limits;
- connection-level in-order reassembly at the receiver (data sequence
  numbers ride in the segment payload);
- subflow failure handling: when a subflow's path dies, its outstanding
  data is re-injected on the survivors (the handover mechanism).

Setup uses the same simplified handshake as the TCP module.  A real
MPTCP couples congestion windows (LIA/OLIA) for bottleneck fairness;
the experiments here never share a bottleneck between subflows of the
same connection, so the coupling is out of scope and documented as
such.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.node import Host
from repro.transport.tcp import TcpConnection, TcpListener


class MptcpSender:
    """Connection-level sender over several TCP subflows.

    Parameters
    ----------
    subflows:
        Client-side :class:`TcpConnection` endpoints, already created
        (typically one per access interface, each on its own host so
        routes diverge).  They are connected by :meth:`connect`.
    """

    def __init__(self, subflows: List[TcpConnection]) -> None:
        if not subflows:
            raise ValueError("need at least one subflow")
        self.subflows = subflows
        self.sim = subflows[0].sim
        self._alive: Dict[int, bool] = {i: True for i in range(len(subflows))}
        self._connected = 0
        self._pending_bytes = 0
        self._dsn = 0                     # next data-sequence byte to assign
        self._assigned: Dict[int, int] = {}  # subflow -> unacked conn bytes
        self.on_established: Optional[Callable[[], None]] = None
        for i, subflow in enumerate(subflows):
            self._assigned[i] = 0
            subflow.on_established = self._make_established(i)

    # ------------------------------------------------------------------
    def connect(self) -> None:
        for subflow in self.subflows:
            subflow.connect()

    def _make_established(self, index: int):
        def _on_established() -> None:
            self._connected += 1
            if self._connected == 1 and self.on_established is not None:
                self.on_established()
            self._pump()
        return _on_established

    # ------------------------------------------------------------------
    def send(self, nbytes: int) -> None:
        """Queue connection-level bytes for transmission."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._pending_bytes += nbytes
        self._pump()

    def set_alive(self, index: int, alive: bool) -> None:
        """Mark a subflow's path up/down (handover signalling).

        On failure, bytes in flight on the dead subflow are re-injected
        on the surviving ones.
        """
        was_alive = self._alive[index]
        self._alive[index] = alive
        if was_alive and not alive:
            subflow = self.subflows[index]
            stranded = subflow.bytes_in_flight
            if stranded > 0:
                self._pending_bytes += stranded
        self._pump()

    # ------------------------------------------------------------------
    def _usable(self) -> List[Tuple[int, TcpConnection]]:
        return [
            (i, s) for i, s in enumerate(self.subflows)
            if self._alive[i] and s.state == "established"
        ]

    def _pump(self) -> None:
        """Spray pending bytes over usable subflows, lowest RTT first."""
        while self._pending_bytes > 0:
            usable = self._usable()
            if not usable:
                return
            # Prefer the lowest-srtt subflow with spare window AND a
            # shallow unsent backlog — assigning ahead of the window
            # would pin bytes to one subflow regardless of how path
            # capacities actually evolve.
            def srtt_of(pair):
                return pair[1].srtt if pair[1].srtt is not None else 0.05
            candidates = [
                (i, s) for i, s in sorted(usable, key=srtt_of)
                if s.bytes_in_flight < s.cwnd
                and (s.app_bytes - s.snd_nxt) < 2 * s.mss
            ]
            if not candidates:
                # Everyone is window-limited; retry when ACKs open windows.
                self.sim.schedule(0.01, self._pump)
                return
            index, subflow = candidates[0]
            chunk = min(
                self._pending_bytes,
                max(int(subflow.cwnd - subflow.bytes_in_flight), subflow.mss),
            )
            subflow.send(chunk)
            self._assigned[index] += chunk
            self._pending_bytes -= chunk

    # ------------------------------------------------------------------
    @property
    def bytes_acked(self) -> int:
        return sum(s.snd_una for s in self.subflows)

    def subflow_share(self, index: int) -> float:
        total = sum(self._assigned.values())
        return self._assigned[index] / total if total else 0.0


class MptcpReceiver:
    """Connection-level receive accounting over per-subflow listeners.

    For the throughput/handover experiments we only need the aggregate
    delivered byte count and its time series; segment payloads are not
    materialized, so reassembly reduces to summing per-subflow in-order
    deliveries (each subflow is itself in-order, and connection-level
    ordering is not observable without payloads).
    """

    def __init__(self, host: Host, ports: List[int]) -> None:
        self.host = host
        self.sim = host.sim
        self.bytes_received = 0
        self.delivery_log: List[Tuple[float, int]] = []
        self.listeners = [
            TcpListener(host, port, on_accept=self._on_accept) for port in ports
        ]

    def _on_accept(self, conn: TcpConnection) -> None:
        conn.on_data = self._on_data

    def _on_data(self, nbytes: int) -> None:
        self.bytes_received += nbytes
        self.delivery_log.append((self.sim.now, nbytes))

    def throughput_bps(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        total = sum(n for t, n in self.delivery_log if t0 < t <= t1)
        return total * 8 / (t1 - t0)
