"""Common socket plumbing shared by every transport."""

from __future__ import annotations


from repro.simnet.node import Host
from repro.simnet.packet import Packet


class SocketBase:
    """A protocol endpoint bound to one (host, port).

    Subclasses implement :meth:`on_packet`.  The base class handles
    binding/unbinding and outbound packet construction.
    """

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.sim = host.sim
        self.closed = False
        host.bind(port, self)

    def close(self) -> None:
        if not self.closed:
            self.host.unbind(self.port)
            self.closed = True

    # ------------------------------------------------------------------
    def _packet(
        self,
        dst: str,
        dst_port: int,
        size: int,
        kind: str = "data",
        flow: str = "",
        **payload,
    ) -> Packet:
        return Packet(
            src=self.host.name,
            dst=dst,
            size=size,
            src_port=self.port,
            dst_port=dst_port,
            kind=kind,
            flow=flow,
            payload=payload,
            created_at=self.sim.now,
        )

    def _transmit(self, packet: Packet) -> bool:
        return self.host.send(packet)

    def on_packet(self, packet: Packet) -> None:
        raise NotImplementedError
