"""Transport protocols over the simnet substrate.

- :class:`~repro.transport.udp.UdpSocket` — plain datagram service.
- :class:`~repro.transport.tcp.TcpConnection` — NewReno TCP with slow
  start, congestion avoidance, fast retransmit/recovery, RTO and
  delayed ACKs; the baseline the paper's Figures 3 and 4 compare
  against.
- :class:`~repro.transport.dccp.DccpSocket` — unreliable datagrams with
  TCP-friendly rate control, the closest existing protocol the paper
  surveys (Section V-B3).
- :class:`~repro.transport.rtp.RtpStream` — RTP-like timestamped media
  framing with a playout jitter buffer (Section V-A2).
- :class:`~repro.transport.mptcp.MptcpSender` — multipath TCP with
  subflow scheduling and handover reinjection (Section V-B1).
- :class:`~repro.transport.quic.QuicConnection` — QUIC-like streams
  over UDP: 0/1-RTT setup, no cross-stream head-of-line blocking
  (Section V-B2).
- :class:`~repro.transport.rsvp.ReservationTable` — RSVP-style per-flow
  guaranteed rates with admission control (Section V-A1).
- :class:`~repro.transport.mpegts.TsMux` — MPEG-TS-style multiplexing
  with interleaved FEC (Section V-A3).
"""

from repro.transport.base import SocketBase
from repro.transport.udp import UdpSocket
from repro.transport.tcp import TcpConnection, TcpListener
from repro.transport.dccp import DccpSocket
from repro.transport.rtp import RtpStream, RtpReceiver
from repro.transport.mptcp import MptcpReceiver, MptcpSender
from repro.transport.quic import QuicConnection, QuicStream
from repro.transport.rsvp import AdmissionError, ReservationTable, ReservedQueue
from repro.transport.mpegts import TsDemux, TsMux, TsPacket

__all__ = [
    "SocketBase",
    "UdpSocket",
    "TcpConnection",
    "TcpListener",
    "DccpSocket",
    "RtpStream",
    "RtpReceiver",
    "MptcpSender",
    "MptcpReceiver",
    "QuicConnection",
    "QuicStream",
    "ReservationTable",
    "ReservedQueue",
    "AdmissionError",
    "TsMux",
    "TsDemux",
    "TsPacket",
]
