"""DCCP-like transport: unreliable datagrams with TCP-friendly rate control.

Section V-B3 of the paper surveys DCCP ("congestion control without
reliable in-order delivery; new data is always preferred to former
data").  This module implements that service model with a TFRC-style
(RFC 5348) sender: the receiver reports loss-event rate and receive
rate once per RTT, and the sender caps its rate at the TCP throughput
equation.  It is one of the baselines MARTP is compared against in the
ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.simnet.node import Host
from repro.simnet.packet import IP_UDP_HEADER, Packet
from repro.transport.base import SocketBase

FEEDBACK_SIZE = 64


def tcp_friendly_rate(segment_size: int, rtt: float, loss_event_rate: float) -> float:
    """TCP throughput equation of RFC 5348 (bytes/second).

    ``X = s / (R*sqrt(2bp/3) + t_RTO*(3*sqrt(3bp/8))*p*(1+32p^2))`` with
    ``b = 1`` and ``t_RTO = 4R``.
    """
    if rtt <= 0:
        return float("inf")
    p = max(loss_event_rate, 1e-8)
    t_rto = 4 * rtt
    denom = rtt * math.sqrt(2 * p / 3) + t_rto * (3 * math.sqrt(3 * p / 8)) * p * (1 + 32 * p * p)
    return segment_size / denom


class DccpSocket(SocketBase):
    """An endpoint of a DCCP-like flow.

    The sending side calls :meth:`start` with an application callback
    ``next_datagram() -> Optional[int]`` returning the size of the next
    datagram to send (or None to skip this slot); the socket clocks
    transmissions out at the TFRC-allowed rate.  The receiving side
    just needs to exist (it auto-generates feedback).
    """

    def __init__(
        self,
        host: Host,
        port: int,
        dst: str = "",
        dst_port: int = 0,
        segment_size: int = 1200,
        initial_rate_bps: float = 500_000.0,
        on_receive: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        super().__init__(host, port)
        self.dst = dst
        self.dst_port = dst_port
        self.segment_size = segment_size
        self.on_receive = on_receive
        self.allowed_rate_bps = initial_rate_bps
        self.rtt = 0.1
        self._next_datagram: Optional[Callable[[], Optional[int]]] = None
        self._seq = 0
        self._running = False
        # receiver state
        self._rcv_max_seq = -1
        self._rcv_count = 0
        self._rcv_bytes = 0
        self._loss_events = 0
        self._last_loss_seq = -1
        self._feedback_timer_armed = False
        self._window_start = 0.0
        # stats
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.rate_trace: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def start(self, next_datagram: Callable[[], Optional[int]]) -> None:
        """Begin rate-clocked transmission."""
        if not self.dst:
            raise RuntimeError("sender needs a destination")
        self._next_datagram = next_datagram
        if not self._running:
            self._running = True
            self._send_tick()

    def stop(self) -> None:
        self._running = False

    def _send_tick(self) -> None:
        if not self._running or self.closed:
            return
        size = self._next_datagram() if self._next_datagram else None
        sent_size = self.segment_size
        if size is not None:
            sent_size = size
            packet = self._packet(
                self.dst,
                self.dst_port,
                size + IP_UDP_HEADER,
                kind="dccp-data",
                flow=f"dccp:{self.host.name}:{self.port}",
                seq=self._seq,
                sent_at=self.sim.now,
            )
            self._seq += 1
            self.datagrams_sent += 1
            self._transmit(packet)
        interval = (sent_size * 8) / max(self.allowed_rate_bps, 1000.0)
        self.sim.schedule(interval, self._send_tick)

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        if packet.kind == "dccp-data":
            self._on_data(packet)
        elif packet.kind == "dccp-feedback":
            self._on_feedback(packet)

    def _on_data(self, packet: Packet) -> None:
        self.datagrams_received += 1
        seq = packet.payload["seq"]
        if seq > self._rcv_max_seq + 1 and seq - 1 > self._last_loss_seq:
            # A new gap, at most one loss event per window of data.
            self._loss_events += 1
            self._last_loss_seq = seq
        self._rcv_max_seq = max(self._rcv_max_seq, seq)
        self._rcv_count += 1
        self._rcv_bytes += packet.size
        if self.on_receive is not None:
            self.on_receive(packet)
        if not self._feedback_timer_armed:
            self._feedback_timer_armed = True
            self._window_start = self.sim.now
            self.sim.schedule(max(self.rtt, 0.02), self._send_feedback, packet.src,
                              packet.src_port)

    def _send_feedback(self, peer: str, peer_port: int) -> None:
        self._feedback_timer_armed = False
        elapsed = max(self.sim.now - self._window_start, 1e-6)
        expected = self._rcv_max_seq + 1
        loss_rate = self._loss_events / max(expected, 1)
        recv_rate = self._rcv_bytes * 8 / elapsed
        packet = self._packet(
            peer,
            peer_port,
            FEEDBACK_SIZE,
            kind="dccp-feedback",
            loss_event_rate=loss_rate,
            recv_rate_bps=recv_rate,
            echo_ts=self.sim.now,
        )
        self._transmit(packet)
        self._rcv_bytes = 0
        self._window_start = self.sim.now
        self._loss_events = max(0, self._loss_events - 1)  # age out old events

    def _on_feedback(self, packet: Packet) -> None:
        loss = packet.payload["loss_event_rate"]
        recv_rate = packet.payload["recv_rate_bps"]
        # RTT from the feedback round trip (coarse — no per-packet echo).
        sample = max(self.sim.now - packet.created_at, 1e-4) * 2
        self.rtt = 0.9 * self.rtt + 0.1 * sample
        if loss > 0:
            x_calc = tcp_friendly_rate(self.segment_size, self.rtt, loss) * 8
            self.allowed_rate_bps = max(min(x_calc, 2 * recv_rate), 8 * self.segment_size)
        else:
            # No loss: at most double per feedback interval (slow-start-like).
            self.allowed_rate_bps = max(self.allowed_rate_bps, min(
                2 * recv_rate, self.allowed_rate_bps * 2))
        self.rate_trace.append((self.sim.now, self.allowed_rate_bps))
