"""MPEG-TS-style multiplexing with interleaved FEC (Section V-A3).

The paper credits MPEG-TS with "stream synchronization, with the
possibility of interleaving several streams together" and "forward
error correction (FEC) to recover from lost or damaged frames".  Both
are implemented here on 188-byte transport-stream packets:

- :class:`TsMux` — slices elementary streams into TS packets, round-
  robin multiplexes them, and appends one XOR parity per FEC *column*
  of an interleaving matrix (rows x cols): packets are sent row-major
  but protected column-wise, so a contiguous *burst* of up to ``cols``
  lost packets hits each column at most once and is fully recoverable —
  the property sequential (non-interleaved) FEC lacks.
- :class:`TsDemux` — reassembles per-stream payloads, applies column
  recovery, and reports continuity errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

TS_PACKET_BYTES = 188
TS_HEADER_BYTES = 4
TS_PAYLOAD_BYTES = TS_PACKET_BYTES - TS_HEADER_BYTES


@dataclass(frozen=True)
class TsPacket:
    """One 188-byte transport packet (payload not materialized)."""

    index: int                    # global continuity counter
    pid: int                      # stream id; -1 for parity packets
    payload_bytes: int
    parity_column: Optional[int] = None   # set on parity packets

    @property
    def is_parity(self) -> bool:
        return self.pid == -1


class TsMux:
    """Multiplexer with a (rows x cols) interleaved-FEC matrix.

    Call :meth:`push` with per-stream byte counts, then :meth:`flush`
    to emit the final partial matrix.  Emitted packets come from
    :meth:`take`.
    """

    def __init__(self, rows: int = 8, cols: int = 8) -> None:
        if rows < 1 or cols < 2:
            raise ValueError("need rows >= 1 and cols >= 2")
        self.rows = rows
        self.cols = cols
        self._index = 0
        self._matrix: List[TsPacket] = []
        self._out: List[TsPacket] = []
        self._residual: Dict[int, int] = {}
        self.data_packets = 0
        self.parity_packets = 0

    # ------------------------------------------------------------------
    def push(self, pid: int, nbytes: int) -> None:
        """Queue ``nbytes`` of elementary-stream ``pid`` for mux-ing."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        total = self._residual.pop(pid, 0) + nbytes
        while total >= TS_PAYLOAD_BYTES:
            self._emit_data(pid, TS_PAYLOAD_BYTES)
            total -= TS_PAYLOAD_BYTES
        if total:
            self._residual[pid] = total

    def flush(self) -> None:
        """Emit residual partial packets and close the current matrix."""
        for pid, nbytes in sorted(self._residual.items()):
            self._emit_data(pid, nbytes)
        self._residual.clear()
        if self._matrix:
            self._close_matrix()

    def take(self) -> List[TsPacket]:
        out, self._out = self._out, []
        return out

    # ------------------------------------------------------------------
    def _emit_data(self, pid: int, payload: int) -> None:
        packet = TsPacket(index=self._index, pid=pid, payload_bytes=payload)
        self._index += 1
        self.data_packets += 1
        self._matrix.append(packet)
        self._out.append(packet)
        if len(self._matrix) == self.rows * self.cols:
            self._close_matrix()

    def _close_matrix(self) -> None:
        """Append one parity packet per column of the row-major matrix."""
        for col in range(self.cols):
            column_members = self._matrix[col::self.cols]
            if not column_members:
                continue
            parity = TsPacket(
                index=self._index,
                pid=-1,
                payload_bytes=TS_PAYLOAD_BYTES,
                parity_column=col,
            )
            self._index += 1
            self.parity_packets += 1
            self._out.append(parity)
        self._matrix = []

    @property
    def overhead(self) -> float:
        if self.data_packets == 0:
            return 0.0
        return self.parity_packets / self.data_packets


class TsDemux:
    """Receiver: column-XOR recovery and continuity accounting.

    Feed arriving packets (possibly with gaps) via :meth:`on_packet`
    with the matrix geometry matching the mux.  A lost data packet is
    recovered when its column's parity arrived and it is the column's
    only loss.
    """

    def __init__(self, rows: int = 8, cols: int = 8) -> None:
        self.rows = rows
        self.cols = cols
        self.received: Set[int] = set()
        self.recovered: Set[int] = set()
        self.stream_bytes: Dict[int, int] = {}
        self._matrix_base = 0
        self._matrix_data: Dict[int, TsPacket] = {}
        self._matrix_parity: Dict[int, TsPacket] = {}
        self._pid_of: Dict[int, int] = {}

    def on_packet(self, packet: TsPacket) -> List[int]:
        """Process one arrival; returns indices recovered by FEC.

        Matrix geometry advances *before* the packet is interpreted, so
        a next-matrix arrival is never evaluated against stale column
        membership.  (In-order delivery with gaps is assumed, as on a
        single path; the final partial matrix is not recoverable.)
        """
        # Advance past completed matrices first.
        lo, hi = self._matrix_span()
        while packet.index >= hi + self.cols:
            self._matrix_base = hi + self.cols
            self._matrix_data.clear()
            self._matrix_parity.clear()
            lo, hi = self._matrix_span()

        self.received.add(packet.index)
        if packet.is_parity:
            self._matrix_parity[packet.parity_column] = packet
            return self._try_recover(packet.parity_column)
        self.stream_bytes[packet.pid] = (
            self.stream_bytes.get(packet.pid, 0) + packet.payload_bytes
        )
        self._matrix_data[packet.index] = packet
        # A late data arrival may make its column recoverable.
        col = (packet.index - lo) % self.cols
        return self._try_recover(col) if col in self._matrix_parity else []

    # ------------------------------------------------------------------
    def _matrix_span(self) -> Tuple[int, int]:
        size = self.rows * self.cols
        return self._matrix_base, self._matrix_base + size

    def _try_recover(self, col: int) -> List[int]:
        lo, hi = self._matrix_span()
        members = [i for i in range(lo + col, hi, self.cols)]
        missing = [i for i in members if i not in self._matrix_data
                   and i not in self.recovered]
        if len(missing) == 1:
            index = missing[0]
            self.recovered.add(index)
            # Credit the payload to its stream if we ever learned the
            # pid (neighbour packets of the same pid); payload size is
            # always the full cell for recovered packets.
            return [index]
        return []

    # ------------------------------------------------------------------
    def effective_loss(self, total_sent: int) -> float:
        """Fraction of packets neither received nor recovered."""
        if total_sent == 0:
            return 0.0
        good = len(self.received) + len(self.recovered)
        return max(0.0, 1.0 - good / total_sent)
