"""TCP NewReno over the simulator.

This is the baseline protocol for the paper's asymmetric-link experiment
(Figure 3 — uploads starving a download through ACK compression on an
oversized uplink buffer) and the congestion-window trace that Figure 4
contrasts with MARTP's graceful degradation.

The implementation covers the sender/receiver mechanics that those
dynamics depend on:

- byte-sequence cumulative ACKs with delayed ACKing,
- slow start / congestion avoidance / NewReno fast recovery,
- RTT estimation (Jacobson/Karel, Karn's rule) and exponential RTO
  backoff,
- a one-MSS-per-RTT additive increase in congestion avoidance.

Connection setup is a simplified two-way handshake (SYN/SYN-ACK); flow
control uses a large static receive window by default since none of the
experiments exercise zero-window behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.engine import Event
from repro.simnet.node import Host
from repro.simnet.packet import IP_TCP_HEADER, Packet
from repro.transport.base import SocketBase

MSS = 1460
ACK_SIZE = IP_TCP_HEADER

# States
CLOSED = "closed"
SYN_SENT = "syn-sent"
ESTABLISHED = "established"

# Congestion phases
SLOW_START = "slow-start"
CONG_AVOID = "congestion-avoidance"
FAST_RECOVERY = "fast-recovery"


class TcpConnection(SocketBase):
    """One endpoint of a TCP connection.

    Create the client side with ``TcpConnection(host, port, dst,
    dst_port)`` and call :meth:`connect`; the passive side is spawned by
    a :class:`TcpListener`.  Data is modelled as byte counts: the
    application calls :meth:`send` with a number of bytes (or sets
    ``bulk=True`` for an unbounded transfer) and the peer's
    ``on_data(nbytes)`` callback fires as bytes are delivered in order.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        dst: str,
        dst_port: int,
        mss: int = MSS,
        rwnd: int = 10_000_000,
        min_rto: float = 0.2,
        delayed_ack: bool = True,
        on_data: Optional[Callable[[int], None]] = None,
    ) -> None:
        super().__init__(host, port)
        self.dst = dst
        self.dst_port = dst_port
        self.mss = mss
        self.rwnd = rwnd
        self.min_rto = min_rto
        self.delayed_ack = delayed_ack
        self.on_data = on_data
        self.state = CLOSED
        self.on_established: Optional[Callable[[], None]] = None
        self.on_complete: Optional[Callable[[], None]] = None

        # --- sender state ---
        self.snd_una = 0
        self.snd_nxt = 0
        self.app_bytes = 0          # bytes the app has queued, total
        self.bulk = False
        self.cwnd = 10 * mss        # RFC 6928 initial window
        self.ssthresh = 1 << 30
        self.phase = SLOW_START
        self.dup_acks = 0
        self.recover = 0
        self._send_times: Dict[int, Tuple[float, bool]] = {}  # seq -> (t, retransmitted)
        self._rto_event: Optional[Event] = None
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._backoff = 1

        # --- receiver state ---
        self.rcv_nxt = 0
        self._ooo: Dict[int, int] = {}  # seq -> length
        self._ack_pending = 0
        self._ack_event: Optional[Event] = None

        # --- traces / stats ---
        self.cwnd_trace: List[Tuple[float, float]] = []
        self.bytes_delivered = 0
        self.retransmits = 0
        self.timeouts = 0
        self.flow = f"tcp:{host.name}:{port}->{dst}:{dst_port}"

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> None:
        if self.state != CLOSED:
            raise RuntimeError("already connecting/connected")
        self.state = SYN_SENT
        self._send_ctrl("syn")
        self._arm_rto()

    def _establish(self) -> None:
        self.state = ESTABLISHED
        self._record_cwnd()
        if self.on_established is not None:
            self.on_established()
        self._try_send()

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` application bytes for transmission."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.app_bytes += nbytes
        self._try_send()

    def send_forever(self) -> None:
        """Switch to an unbounded (bulk) transfer."""
        self.bulk = True
        self._try_send()

    @property
    def bytes_in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def transfer_complete(self) -> bool:
        return not self.bulk and self.snd_una >= self.app_bytes > 0

    # ------------------------------------------------------------------
    # Sending machinery
    # ------------------------------------------------------------------
    def _available_bytes(self) -> int:
        limit = self.app_bytes if not self.bulk else (1 << 62)
        return max(0, limit - self.snd_nxt)

    def _window(self) -> int:
        return int(min(self.cwnd, self.rwnd))

    def _try_send(self) -> None:
        if self.state != ESTABLISHED:
            return
        while self.bytes_in_flight < self._window() and self._available_bytes() > 0:
            seg = min(self.mss, self._available_bytes(),
                      self._window() - self.bytes_in_flight)
            if seg <= 0:
                break
            self._send_segment(self.snd_nxt, seg, retransmit=False)
            self.snd_nxt += seg
        self._arm_rto()

    def _send_segment(self, seq: int, length: int, retransmit: bool) -> None:
        packet = self._packet(
            self.dst,
            self.dst_port,
            length + IP_TCP_HEADER,
            kind="tcp-data",
            flow=self.flow,
            seq=seq,
            len=length,
        )
        self._send_times[seq] = (self.sim.now, retransmit or seq in self._send_times)
        if retransmit:
            self.retransmits += 1
        self._transmit(packet)

    def _send_ctrl(self, kind: str) -> None:
        packet = self._packet(self.dst, self.dst_port, ACK_SIZE, kind=kind, flow=self.flow)
        self._transmit(packet)

    # ------------------------------------------------------------------
    # RTO handling
    # ------------------------------------------------------------------
    def _arm_rto(self, reset: bool = False) -> None:
        """Ensure the retransmission timer is armed.

        ``reset=True`` restarts the timer (new cumulative ACK arrived —
        RFC 6298 rule 5.3).  With ``reset=False`` an already-armed timer
        is left alone: duplicate ACKs and new transmissions must NOT
        push the timeout out, or a lost fast-retransmission deadlocks
        behind an endless dupack stream.
        """
        armed = self.state == SYN_SENT or self.bytes_in_flight > 0
        if self._rto_event is not None:
            if not reset:
                return
            if armed:
                # Re-arm in place: no cancelled entry left in the heap.
                self._rto_event = self.sim.reschedule(
                    self._rto_event, self.rto * self._backoff)
            else:
                self._rto_event.cancel()
                self._rto_event = None
        elif armed:
            self._rto_event = self.sim.schedule(self.rto * self._backoff, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.state == SYN_SENT:
            self._send_ctrl("syn")
            self._backoff = min(self._backoff * 2, 64)
            self._arm_rto()
            return
        if self.bytes_in_flight <= 0:
            return
        # Timeout: collapse to one segment, restart from snd_una.
        self.timeouts += 1
        self.ssthresh = max(self.bytes_in_flight // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.phase = SLOW_START
        self.dup_acks = 0
        self.snd_nxt = self.snd_una
        self._record_cwnd()
        self._backoff = min(self._backoff * 2, 64)
        self._try_send()

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(self.min_rto, self.srtt + 4 * self.rttvar)
        self._backoff = 1

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        kind = packet.kind
        if kind == "syn":
            # Passive open (listener spawns us before first packet).
            self.state = ESTABLISHED
            self._send_ctrl("syn-ack")
        elif kind == "syn-ack":
            if self.state == SYN_SENT:
                if self._rto_event is not None:
                    self._rto_event.cancel()
                    self._rto_event = None
                self._backoff = 1
                self._establish()
        elif kind == "tcp-data":
            self._on_data_segment(packet)
        elif kind == "tcp-ack":
            self._on_ack(packet)

    # --- receiver side ---
    def _on_data_segment(self, packet: Packet) -> None:
        if self.state != ESTABLISHED:
            self.state = ESTABLISHED  # implicit accept on passive side
        seq = packet.payload["seq"]
        length = packet.payload["len"]
        in_order = seq == self.rcv_nxt
        if seq >= self.rcv_nxt:
            self._ooo[seq] = max(self._ooo.get(seq, 0), length)
            self._drain_in_order()
        if in_order and self.delayed_ack:
            self._ack_pending += 1
            if self._ack_pending >= 2:
                self._emit_ack()
            elif self._ack_event is None:
                self._ack_event = self.sim.schedule(0.04, self._emit_ack)
        else:
            # Out-of-order (or delayed-ack off): ACK immediately so the
            # sender sees dupacks quickly.
            self._emit_ack()

    def _drain_in_order(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for seq in sorted(self._ooo):
                length = self._ooo[seq]
                if seq <= self.rcv_nxt < seq + length or seq == self.rcv_nxt:
                    advance = seq + length - self.rcv_nxt
                    if advance > 0:
                        self.rcv_nxt = seq + length
                        self.bytes_delivered += advance
                        if self.on_data is not None:
                            self.on_data(advance)
                    del self._ooo[seq]
                    progressed = True
                    break
                if seq + length <= self.rcv_nxt:
                    del self._ooo[seq]
                    progressed = True
                    break

    def _emit_ack(self) -> None:
        if self._ack_event is not None:
            self._ack_event.cancel()
            self._ack_event = None
        self._ack_pending = 0
        packet = self._packet(
            self.dst, self.dst_port, ACK_SIZE, kind="tcp-ack", flow=self.flow, ack=self.rcv_nxt
        )
        self._transmit(packet)

    # --- sender side ---
    def _on_ack(self, packet: Packet) -> None:
        ack = packet.payload["ack"]
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.bytes_in_flight > 0:
            self._on_dup_ack()
        self._try_send()
        if self.transfer_complete and self.on_complete is not None:
            callback, self.on_complete = self.on_complete, None
            callback()

    def _on_new_ack(self, ack: int) -> None:
        acked = ack - self.snd_una
        # RTT sample per Karn: only for never-retransmitted segments.
        sent = self._send_times.pop(self.snd_una, None)
        if sent is not None and not sent[1]:
            self._update_rtt(self.sim.now - sent[0])
        for seq in [s for s in self._send_times if s < ack]:
            del self._send_times[seq]
        self.snd_una = ack
        if self.snd_nxt < ack:
            self.snd_nxt = ack

        if self.phase == FAST_RECOVERY:
            if ack >= self.recover:
                # Full ACK: leave fast recovery.
                self.cwnd = self.ssthresh
                self.phase = CONG_AVOID
                self.dup_acks = 0
            else:
                # Partial ACK (NewReno): retransmit next hole, deflate.
                self._send_segment(self.snd_una, min(self.mss, self.snd_nxt - self.snd_una),
                                   retransmit=True)
                self.cwnd = max(self.mss, self.cwnd - acked + self.mss)
        else:
            self.dup_acks = 0
            if self.phase == SLOW_START:
                self.cwnd += min(acked, self.mss)
                if self.cwnd >= self.ssthresh:
                    self.phase = CONG_AVOID
            else:
                self.cwnd += self.mss * self.mss / self.cwnd
        self._record_cwnd()
        self._arm_rto(reset=True)

    def _on_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.phase == FAST_RECOVERY:
            self.cwnd += self.mss
            self._record_cwnd()
            return
        if self.dup_acks == 3:
            self.ssthresh = max(self.bytes_in_flight // 2, 2 * self.mss)
            self.recover = self.snd_nxt
            self.cwnd = self.ssthresh + 3 * self.mss
            self.phase = FAST_RECOVERY
            self._send_segment(self.snd_una, min(self.mss, self.snd_nxt - self.snd_una),
                               retransmit=True)
            self._record_cwnd()

    def _record_cwnd(self) -> None:
        self.cwnd_trace.append((self.sim.now, self.cwnd))


class TcpListener(SocketBase):
    """Accepts incoming connections: spawns a passive TcpConnection per peer.

    ``on_accept(conn)`` is invoked with the new server-side endpoint so
    the application can attach ``on_data`` / start responding.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        on_accept: Optional[Callable[[TcpConnection], None]] = None,
        next_port: int = 40000,
    ) -> None:
        super().__init__(host, port)
        self.on_accept = on_accept
        self._next_port = next_port
        self._conns: Dict[Tuple[str, int], TcpConnection] = {}

    def on_packet(self, packet: Packet) -> None:
        key = (packet.src, packet.src_port)
        conn = self._conns.get(key)
        if conn is None:
            if packet.kind != "syn":
                return  # stray packet for a dead connection
            conn = TcpConnection(self.host, self._alloc_port(), packet.src, packet.src_port)
            conn.state = ESTABLISHED
            self._conns[key] = conn
            if self.on_accept is not None:
                self.on_accept(conn)
            # Answer the SYN from the listener port so the client's
            # syn-ack matcher sees the expected source.
            reply = self._packet(packet.src, packet.src_port, ACK_SIZE, kind="syn-ack")
            self._transmit(reply)
        elif packet.kind == "syn":
            reply = self._packet(packet.src, packet.src_port, ACK_SIZE, kind="syn-ack")
            self._transmit(reply)
        else:
            conn.on_packet(packet)

    def _alloc_port(self) -> int:
        while self.host.is_bound(self._next_port):
            self._next_port += 1
        port = self._next_port
        self._next_port += 1
        return port

    def connection_for(self, peer: str, peer_port: int) -> Optional[TcpConnection]:
        return self._conns.get((peer, peer_port))
