"""Hierarchical city → cell → cohort shards for ``repro.fleet``.

A city campaign maps onto the existing fleet machinery without any new
executor: the *city* is the campaign, each *cell* is a grid point, and
the tracked *cohort* members are the remaining grid axis.  Every shard
is the usual pure function ``fn(seed, params) -> Aggregate``, so cost
planning (:func:`repro.fleet.workers.plan_batches`), caching, retry,
quarantine and the byte-identical serial fallback all apply unchanged.

One shard of ``city_coverage`` does three things:

1. recompute its cell's fluid background timeline — the cell seed is
   ``shard_seed(city_seed, f"scale.cell{cell}")``, a function of the
   *city*, not the shard, so every cohort member of a cell sees the
   identical background (and the recomputation is O(fluid steps),
   i.e. cheap);
2. member 0 only: contribute the cell's mergeable fluid aggregate
   (10^3-ish background users distilled to O(1) state) and run the
   cell's promotion episodes as event-level sessions
   (:func:`repro.scale.coupling.promote_user`);
3. every member: run one tracked foreground session under the cell's
   background pressure (:func:`repro.scale.coupling.run_pressured_session`),
   seeded — exactly like ``cell_offload`` — from the shard's own seed.

Cell specs derive from ``random.Random(shard_seed(city_seed, tag))``,
so the whole city is a pure function of ``(budget, city_seed)`` and
any subset of shards can be re-run (or cache-hit) independently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.fleet.aggregate import Aggregate
from repro.fleet.campaign import (
    Campaign,
    get_scenario,
    register_scenario,
    shard_seed,
)

from repro.scale.coupling import (
    PromotionPolicy,
    plan_promotions,
    promote_user,
    run_pressured_session,
)
from repro.scale.population import CellSpec, profile_by_name, run_cell

#: Mean uplink demand of one *background* MAR user (feature uploads +
#: sensor streams, not full video offload), bits/s.
BACKGROUND_DEMAND_BPS = 2e5

#: Cell uplink capacity as a multiple of the profile's per-user mean —
#: the aggregate air-interface budget a scheduler splits across users.
CELL_CAPACITY_FACTOR = 4.0

#: Access technologies a metro deployment mixes, striped over the cell
#: index (by profile *name* so campaign specs stay JSON-friendly).
CELL_PROFILE_MIX = ("LTE", "LTE", "802.11ac(public)", "5G(KPI)")

#: Per-cell offered-load factor range (ρ target at equilibrium): from
#: quiet suburban cells to overloaded downtown ones.
CELL_LOAD_RANGE = (0.2, 1.4)


@dataclass(frozen=True)
class CityBudget:
    """How big a city campaign is at one ``--budget`` tier."""

    name: str
    n_cells: int
    cohort: int              # tracked foreground members per cell
    fluid_duration: float    # seconds of background timeline per cell
    session_duration: float  # seconds of each foreground session
    mean_holding: float      # background session lifetime τ
    promo_frames: int        # frames per promoted event-level session
    max_promotions: int      # promotion episodes run per cell
    dt: float = 0.5

    @property
    def fluid_steps(self) -> float:
        return self.fluid_duration / self.dt


#: ``smoke`` is a seconds-fast sanity tier; ``small`` is the CI tier
#: (≳10^5 distinct background users, < 5 min wall); ``metro`` is the
#: full §IV study (≳10^6 users).
CITY_BUDGETS: Dict[str, CityBudget] = {
    "smoke": CityBudget("smoke", n_cells=8, cohort=1, fluid_duration=120.0,
                        session_duration=0.5, mean_holding=40.0,
                        promo_frames=10, max_promotions=1),
    "small": CityBudget("small", n_cells=128, cohort=1, fluid_duration=300.0,
                        session_duration=1.0, mean_holding=50.0,
                        promo_frames=20, max_promotions=2),
    "metro": CityBudget("metro", n_cells=512, cohort=2, fluid_duration=600.0,
                        session_duration=1.0, mean_holding=60.0,
                        promo_frames=30, max_promotions=3),
}


# ----------------------------------------------------------------------
# Deterministic city construction
# ----------------------------------------------------------------------
def city_cell_spec(city_seed: int, cell: int, budget: CityBudget) -> CellSpec:
    """The cell's static spec — a pure function of (city_seed, cell).

    The arrival rate is parameterized by an equilibrium load factor:
    with ``λ = load · capacity_users / τ`` the fluid fixed point sits
    at ``ρ ≈ load``, so the drawn factor *is* the cell's nominal
    utilization.
    """
    rng = random.Random(shard_seed(city_seed, f"scale.city.cell{cell}"))
    profile_name = CELL_PROFILE_MIX[cell % len(CELL_PROFILE_MIX)]
    profile = profile_by_name(profile_name)
    load = rng.uniform(*CELL_LOAD_RANGE)
    capacity = profile.up_mean * CELL_CAPACITY_FACTOR
    capacity_users = capacity / BACKGROUND_DEMAND_BPS
    return CellSpec(
        cell_id=cell,
        profile=profile_name,
        initial_users=load * capacity_users,
        arrival_rate=load * capacity_users / budget.mean_holding,
        mean_holding=budget.mean_holding,
        demand_up_bps=BACKGROUND_DEMAND_BPS,
        capacity_up_bps=capacity,
        diurnal_phase=rng.uniform(0.0, 180.0),
        dt=budget.dt,
    )


def _city_params(params: Dict[str, object]) -> Tuple[CityBudget, int, int, int]:
    budget = CITY_BUDGETS[str(params.get("budget", "small"))]
    return (budget, int(params.get("city_seed", 0)),
            int(params.get("cell", 0)), int(params.get("member", 0)))


#: Measured relative costs (1-core container): one fluid step ≈ 20 µs
#: next to ~25 ms/simulated-second of event-level session — so in
#: session-duration units a step costs ~1e-3 and a promoted frame-loop
#: session ~0.2.
_FLUID_STEP_COST = 1e-3
_PROMOTION_COST = 0.2


def _city_cost(p: Dict[str, object]) -> float:
    """Honest shard cost: fluid recompute + one session, plus member
    0's fluid aggregation and promotion allowance."""
    budget, _cs, _cell, member = _city_params(p)
    cost = budget.session_duration + budget.fluid_steps * _FLUID_STEP_COST
    if member == 0:
        cost += (budget.fluid_steps * _FLUID_STEP_COST
                 + budget.max_promotions * _PROMOTION_COST)
    return cost


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------
@register_scenario(
    "city_coverage", version=1,
    latency_key="frame_latency",
    moment_keys=("scale.utilization", "scale.mar_ready_fraction", "mos"),
    cost_hint=_city_cost,
)
def run_city_coverage(seed: int, params: Dict[str, object]) -> Aggregate:
    """One (cell, member) shard of a hybrid-fidelity city study."""
    budget, city_seed, cell, member = _city_params(params)
    spec = city_cell_spec(city_seed, cell, budget)
    process = run_cell(spec, shard_seed(city_seed, f"scale.cell{cell}"),
                       budget.fluid_duration)
    timeline = process.timeline
    profile = profile_by_name(spec.profile)

    agg = Aggregate()
    if member == 0:
        agg.merge(process.aggregate())
        episodes = plan_promotions(timeline.samples, PromotionPolicy())
        agg.count("scale.contended_episodes", len(episodes))
        if len(episodes) > budget.max_promotions:
            agg.count("scale.promotions_truncated",
                      len(episodes) - budget.max_promotions)
        for k, episode in enumerate(episodes[: budget.max_promotions]):
            _pseed, promoted = promote_user(
                process.sim, cell, k, episode.peak_rho, profile,
                n_frames=budget.promo_frames)
            agg.merge(promoted)

    # The tracked foreground member: one event-level session pressured
    # by this cell's background over a member-staggered window.
    w0 = (member * 37.0) % max(budget.fluid_duration
                               - budget.session_duration, budget.dt)
    samples = [(t - w0, rho)
               for t, rho in timeline.window(w0, w0 + budget.session_duration)]
    fg_params = {"rtt": profile.rtt, "up_bps": profile.up_mean,
                 "loss": profile.loss, "duration": budget.session_duration}
    agg.merge(run_pressured_session(seed, fg_params, samples))
    return agg


@register_scenario(
    "cell_contention", version=1,
    latency_key="frame_latency",
    moment_keys=("scale.utilization", "mos", "delivery_ratio"),
    cost_hint=lambda p: (float(p.get("duration", 1.0))
                         + (float(p.get("fluid_duration", 120.0)) / 0.5)
                         * _FLUID_STEP_COST + _PROMOTION_COST),
)
def run_cell_contention(seed: int, params: Dict[str, object]) -> Aggregate:
    """One cell swept across offered-load factors (§IV contention).

    Each shard runs its own fluid replicate (seeded from the shard
    seed, so fleet ``seeds=N`` gives N independent background draws),
    then drops a foreground session into the *worst* window of the
    timeline — the peak-utilization interval — plus the cell's
    promotion episodes.
    """
    load = float(params.get("load", 0.8))
    profile_name = str(params.get("profile", "LTE"))
    fluid_duration = float(params.get("fluid_duration", 120.0))
    session_duration = float(params.get("duration", 1.0))
    mean_holding = float(params.get("mean_holding", 40.0))

    profile = profile_by_name(profile_name)
    capacity = profile.up_mean * CELL_CAPACITY_FACTOR
    capacity_users = capacity / BACKGROUND_DEMAND_BPS
    spec = CellSpec(
        cell_id=0,
        profile=profile_name,
        initial_users=load * capacity_users,
        arrival_rate=load * capacity_users / mean_holding,
        mean_holding=mean_holding,
        demand_up_bps=BACKGROUND_DEMAND_BPS,
        capacity_up_bps=capacity,
    )
    process = run_cell(spec, shard_seed(seed, "scale.contention"),
                       fluid_duration)
    timeline = process.timeline

    agg = process.aggregate()
    episodes = plan_promotions(timeline.samples, PromotionPolicy())
    agg.count("scale.contended_episodes", len(episodes))
    for k, episode in enumerate(episodes[:1]):
        _pseed, promoted = promote_user(process.sim, 0, k, episode.peak_rho,
                                        profile, n_frames=20)
        agg.merge(promoted)

    t_peak = max(timeline.samples, key=lambda s: (s[2], -s[0]))[0]
    w0 = min(max(t_peak - session_duration / 2, 0.0),
             max(fluid_duration - session_duration, 0.0))
    samples = [(t - w0, rho)
               for t, rho in timeline.window(w0, w0 + session_duration)]
    fg_params = {"rtt": profile.rtt, "up_bps": profile.up_mean,
                 "loss": profile.loss, "duration": session_duration}
    agg.merge(run_pressured_session(seed, fg_params, samples))
    return agg


# ----------------------------------------------------------------------
# Campaign builders
# ----------------------------------------------------------------------
def city_coverage_campaign(budget: str = "small", city_seed: int = 7,
                           base_seed: int = 101,
                           name: str = "") -> Campaign:
    """The metro-scale E4 coverage study at a named budget tier."""
    b = CITY_BUDGETS[budget]
    return Campaign(
        name=name or f"city_coverage-{budget}",
        scenario="city_coverage",
        seeds=1,
        base_seed=base_seed,
        grid={"cell": list(range(b.n_cells)),
              "member": list(range(b.cohort))},
        params={"budget": budget, "city_seed": city_seed},
    )


def cell_contention_campaign(seeds: int = 8, base_seed: int = 29) -> Campaign:
    """One cell swept across equilibrium load factors, N replicates."""
    return Campaign(
        name="cell_contention",
        scenario="cell_contention",
        seeds=seeds,
        base_seed=base_seed,
        grid={"load": [0.3, 0.6, 0.9, 1.2]},
        params={"fluid_duration": 120.0, "duration": 1.0},
    )


def demo_scale_campaigns() -> Dict[str, Campaign]:
    """Named city campaigns for the CLI catalogs."""
    return {
        "city_coverage": city_coverage_campaign("small",
                                                name="city_coverage"),
        "cell_contention": cell_contention_campaign(),
    }


def city_users(result_aggregate: Aggregate) -> int:
    """Distinct background users a finished city campaign simulated."""
    return int(result_aggregate.counts.get("scale.users", 0))


def campaign_telemetry_meta(campaign: Campaign) -> Dict[str, object]:
    """Deterministic scale-layer context for a campaign's telemetry doc.

    Everything here is derived from the campaign spec alone (budget
    tier, cell/cohort counts, summed cost hints) — no clocks, no run
    state — so the telemetry header can explain *what* scale a run was
    at without touching the determinism boundary.  Campaigns outside
    the scale layer get the generic shard/cost summary only.
    """
    scenario = get_scenario(campaign.scenario)
    shards = campaign.shards()
    meta: Dict[str, object] = {
        "layer": "scale" if campaign.scenario in (
            "city_coverage", "cell_contention") else "fleet",
        "shards": len(shards),
        "cost_total": round(sum(
            scenario.shard_cost(s.param_dict()) for s in shards), 6),
    }
    if campaign.scenario == "city_coverage":
        budget, city_seed, _, _ = _city_params(shards[0].param_dict())
        tier = str(campaign.params.get("budget", "small"))
        meta.update({
            "budget": tier,
            "city_seed": city_seed,
            "n_cells": budget.n_cells,
            "cohort": budget.cohort,
            "fluid_steps": budget.fluid_steps,
        })
    elif campaign.scenario == "cell_contention":
        meta.update({
            "loads": [s.param_dict()["load"] for s in shards
                      if s.seed == shards[0].seed],
            "seeds": campaign.seeds,
        })
    return meta


__all__ = [
    "BACKGROUND_DEMAND_BPS",
    "CELL_CAPACITY_FACTOR",
    "CELL_LOAD_RANGE",
    "CELL_PROFILE_MIX",
    "CITY_BUDGETS",
    "CityBudget",
    "campaign_telemetry_meta",
    "cell_contention_campaign",
    "city_cell_spec",
    "city_coverage_campaign",
    "city_users",
    "demo_scale_campaigns",
    "run_cell_contention",
    "run_city_coverage",
]
