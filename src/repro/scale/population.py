"""Fluid/mean-field background population model for city-scale MAR.

Event-level simulation of every user in a metropolitan deployment is
hopeless — a metro area has 10^5–10^6 concurrent MAR users and the
event engine tops out near 10^6 events/s.  The paper's §IV scaling
argument (per-cell contention, edge placement at metro scale) does not
need per-packet fidelity for the *background* population, though: it
needs each cell's offered load as a function of time.  This module
models exactly that, in the mean-field style of multi-user offloading
load models (Look-Ahead Task Offloading, arXiv:2305.19558): per-cell
arrival/departure fluid dynamics whose offered uplink load, normalized
by the cell's capacity, yields the utilization ρ(t) that
:mod:`repro.scale.coupling` turns into link pressure on event-level
foreground sessions.

The dynamics per cell are a stochastically-modulated M/M/∞ fluid::

    dn/dt = λ(t)·e^{x(t)} − n/τ

where ``λ(t)`` carries a deterministic diurnal modulation, ``x(t)`` is
a discrete OU (AR(1)) log-perturbation drawn from the *host
simulator's* ``child_rng`` — so a cell's load process is a pure
function of ``(seed, cell tag)`` and independent of every other cell's
draws — and ``τ`` is the mean session lifetime.  Offered load is
``n·demand`` against the cell's uplink capacity; utilization above 1
is shed (admission pressure) and accounted as blocked user-seconds.

Per-user quantities reuse the *same* measured access distributions the
event-level simulator builds links from (:mod:`repro.wireless.profiles`):
a cell references an :class:`~repro.wireless.profiles.AccessProfile`
by name, per-user throughput under load comes from
:meth:`AccessProfile.per_user_share`, and the MAR-readiness
classification applies the §III-B thresholds to the loaded profile.

Everything a cell produces is distilled into O(1)-sized mergeable
aggregates (:class:`repro.fleet.aggregate.Aggregate` via an
:class:`repro.obs.registry.MetricsRegistry` feed), so a million users
across hundreds of cells lift into the existing Welford/histogram
fleet primitives and merge order-independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.wireless.profiles import (
    MAR_MAX_RTT,
    MAR_MIN_UPLINK_BPS,
    AccessProfile,
    all_profiles,
)

#: AR(1) relaxation of the log-load perturbation per fluid step: the
#: shock process has memory ~1/OU_BETA steps, long enough that cells
#: show sustained busy periods rather than white noise.
OU_BETA = 0.08

#: Utilization above which a fluid sample counts as *contended* —
#: aligned with the default promotion threshold in repro.scale.coupling.
CONTENTION_RHO = 0.85

#: Histogram range for per-cell utilization: >1 is a real (overload)
#: regime, so the range extends past saturation.  Fixed so per-cell
#: histograms from any shard are merge-compatible.
UTILIZATION_HI = 2.0
UTILIZATION_BINS = 100


def profile_by_name(name: str) -> AccessProfile:
    """Look up a built-in access profile by its ``name`` field."""
    for profile in all_profiles():
        if profile.name == name:
            return profile
    raise KeyError(f"unknown access profile {name!r}; "
                   f"known: {[p.name for p in all_profiles()]}")


@dataclass(frozen=True)
class CellSpec:
    """Static description of one cell's background population.

    Rates in users/s and bits/s, times in seconds.  ``demand_up_bps``
    is the mean uplink demand of one *active* MAR user (feature uploads
    + sensor streams; full video offload is the profile's ``up_mean``
    and only the foreground tier models it per-packet).
    """

    cell_id: int
    profile: str                     # AccessProfile.name
    initial_users: float             # n(0)
    arrival_rate: float              # λ0, new sessions per second
    mean_holding: float              # τ, mean session lifetime
    demand_up_bps: float             # per active user
    capacity_up_bps: float           # cell uplink capacity
    diurnal_amplitude: float = 0.3   # λ(t) = λ0(1 + a·sin(...))
    diurnal_period: float = 180.0
    diurnal_phase: float = 0.0
    burstiness: float = 0.15         # OU shock scale per step
    dt: float = 0.5                  # fluid step

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be > 0")
        if self.mean_holding <= 0:
            raise ValueError("mean_holding must be > 0")
        if self.capacity_up_bps <= 0:
            raise ValueError("capacity_up_bps must be > 0")

    @property
    def capacity_users(self) -> float:
        """How many mean-demand users saturate the uplink."""
        return self.capacity_up_bps / max(self.demand_up_bps, 1e-9)


@dataclass
class CellTimeline:
    """The fluid trajectory of one cell plus its integral accounting."""

    spec: CellSpec
    #: (t, active users, utilization ρ) per fluid step, in time order.
    samples: List[Tuple[float, float, float]]
    arrivals: float = 0.0            # ∫λ_eff dt — distinct new users
    user_seconds: float = 0.0        # ∫n dt
    blocked_user_seconds: float = 0.0  # ∫max(n − capacity_users, 0) dt

    @property
    def distinct_users(self) -> int:
        """Users this cell touched: the initial population + arrivals."""
        return int(round(self.spec.initial_users + self.arrivals))

    @property
    def service_fraction(self) -> float:
        """Fraction of user-seconds actually served (not shed)."""
        if self.user_seconds <= 0:
            return 1.0
        return 1.0 - min(self.blocked_user_seconds / self.user_seconds, 1.0)

    def utilization_at(self, t: float) -> float:
        """Piecewise-constant ρ at time ``t`` (last sample at or before)."""
        rho = 0.0
        for ts, _n, r in self.samples:
            if ts > t:
                break
            rho = r
        return rho

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        """(t, ρ) samples governing [t0, t1): the sample in force at
        ``t0`` plus every sample boundary inside the window."""
        out: List[Tuple[float, float]] = [(t0, self.utilization_at(t0))]
        for ts, _n, r in self.samples:
            if t0 < ts < t1:
                out.append((ts, r))
        return out

    def mean_utilization(self, t0: float, t1: float) -> float:
        """Time-weighted mean ρ over [t0, t1)."""
        if t1 <= t0:
            return self.utilization_at(t0)
        pts = self.window(t0, t1)
        total = 0.0
        for i, (ts, rho) in enumerate(pts):
            t_next = pts[i + 1][0] if i + 1 < len(pts) else t1
            total += rho * (t_next - ts)
        return total / (t1 - t0)

    def mar_ready_fraction(self) -> float:
        """Fraction of samples where a §III-B-compliant session fits.

        Applies the MAR uplink and latency requirements to the cell's
        profile *under its instantaneous load* — the same
        ``under_load`` hook the foreground coupling uses.
        """
        if not self.samples:
            return 0.0
        profile = profile_by_name(self.spec.profile)
        ready = 0
        for _t, _n, rho in self.samples:
            loaded = profile.under_load(rho)
            if (loaded.up_mean >= MAR_MIN_UPLINK_BPS
                    and loaded.rtt <= MAR_MAX_RTT):
                ready += 1
        return ready / len(self.samples)


class CellProcess:
    """The fluid load process of one cell, stepped on a host simulator.

    Attach to a :class:`Simulator` and ``sim.run(until=horizon)``; the
    process schedules itself every ``spec.dt``, reads time from
    ``sim.now``, and draws its load shocks from
    ``sim.child_rng(f"scale.cell.{cell_id}")`` — the determinism
    contract for sim-domain code (ROADMAP), which also makes a cell's
    trajectory independent of how many other cells share the simulator.
    """

    def __init__(self, sim: Simulator, spec: CellSpec) -> None:
        self.sim = sim
        self.spec = spec
        self._rng = sim.child_rng(f"scale.cell.{spec.cell_id}")
        self._n = float(spec.initial_users)
        self._x = 0.0                # OU log-load perturbation
        self.timeline = CellTimeline(spec=spec, samples=[])
        sim.schedule(0.0, self._step)

    @property
    def active_users(self) -> float:
        return self._n

    def _step(self) -> None:
        spec = self.spec
        t = self.sim.now
        lam = spec.arrival_rate * (
            1.0 + spec.diurnal_amplitude
            * math.sin(2.0 * math.pi * (t + spec.diurnal_phase)
                       / spec.diurnal_period))
        self._x = (1.0 - OU_BETA) * self._x + self._rng.gauss(0.0, spec.burstiness)
        lam_eff = max(lam, 0.0) * math.exp(self._x)
        self._n += spec.dt * (lam_eff - self._n / spec.mean_holding)
        if self._n < 0.0:
            self._n = 0.0
        rho = (self._n * spec.demand_up_bps) / spec.capacity_up_bps

        tl = self.timeline
        tl.samples.append((t, self._n, rho))
        tl.arrivals += lam_eff * spec.dt
        tl.user_seconds += self._n * spec.dt
        excess = self._n - spec.capacity_users
        if excess > 0.0:
            tl.blocked_user_seconds += excess * spec.dt
        self.sim.schedule(spec.dt, self._step)

    # ------------------------------------------------------------------
    # Aggregation: the obs metrics-registry feed + fleet lift
    # ------------------------------------------------------------------
    def registry(self):
        """Feed this cell's fluid trajectory into a metrics registry.

        Uses the observability layer's typed primitives so per-cell
        metrics merge across shards exactly like protocol/link counters
        do — and lift into fleet aggregates through the existing
        ``aggregate_from_registry`` mapping under ``obs.scale.*``.
        """
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        tl = self.timeline
        reg.counter("scale.cells").inc()
        reg.counter("scale.users").inc(tl.distinct_users)
        reg.counter("scale.fluid_steps").inc(len(tl.samples))
        users = reg.gauge("scale.active_users")
        util = reg.histogram("scale.utilization", 0.0, UTILIZATION_HI,
                             UTILIZATION_BINS)
        contended = 0
        overloaded = 0
        for _t, n, rho in tl.samples:
            users.set(n)
            util.observe(rho)
            if rho > CONTENTION_RHO:
                contended += 1
            if rho > 1.0:
                overloaded += 1
        reg.counter("scale.contended_samples").inc(contended)
        reg.counter("scale.overloaded_samples").inc(overloaded)
        return reg

    def aggregate(self):
        """This cell's mergeable shard contribution.

        Counts/histograms merge exactly; moments merge via the Chan et
        al. parallel formula — order-independent up to float rounding
        (pinned by a hypothesis property in tests/test_scale_population.py).
        """
        from repro.fleet.aggregate import Aggregate, aggregate_from_registry

        profile = profile_by_name(self.spec.profile)
        tl = self.timeline
        agg = Aggregate()
        agg.count("scale.cells")
        agg.count("scale.users", tl.distinct_users)
        rho_moment = agg.moment("scale.utilization")
        users_moment = agg.moment("scale.active_users")
        share_moment = agg.moment("scale.per_user_up_bps")
        for _t, n, rho in tl.samples:
            rho_moment.add(rho)
            users_moment.add(n)
            share_moment.add(profile.up_mean * profile.per_user_share(rho))
        agg.moment("scale.service_fraction").add(tl.service_fraction)
        agg.moment("scale.mar_ready_fraction").add(tl.mar_ready_fraction())
        agg.merge(aggregate_from_registry(self.registry()))
        return agg


def run_cell(spec: CellSpec, seed: int, duration: float,
             sim: Optional[Simulator] = None) -> CellProcess:
    """Run one cell's fluid process for ``duration`` simulated seconds.

    With ``sim`` given, attaches to an existing simulator (many cells
    can share one); otherwise builds a fresh ``Simulator(seed=seed)``.
    """
    if sim is None:
        sim = Simulator(seed=seed)
    process = CellProcess(sim, spec)
    sim.run(until=sim.now + duration)
    return process


__all__ = [
    "CONTENTION_RHO",
    "CellProcess",
    "CellSpec",
    "CellTimeline",
    "OU_BETA",
    "UTILIZATION_BINS",
    "UTILIZATION_HI",
    "profile_by_name",
    "run_cell",
]


# Re-exported so callers can build per-profile demand maps without a
# second import site.
PROFILE_NAMES: Dict[str, AccessProfile] = {p.name: p for p in all_profiles()}
