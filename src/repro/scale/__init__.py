"""Hybrid-fidelity city-scale population layer (ROADMAP item 1).

Fluid/mean-field background cells (:mod:`repro.scale.population`)
couple into the event engine as link pressure with deterministic
promotion/demotion (:mod:`repro.scale.coupling`), and fan out over
``repro.fleet`` as city → cell → cohort shards
(:mod:`repro.scale.shards`).  See docs/SCALE.md.
"""

from repro.scale.coupling import (
    BackgroundPressure,
    PromotionEpisode,
    PromotionPolicy,
    plan_promotions,
    promote_user,
    run_pressured_session,
)
from repro.scale.population import (
    CellProcess,
    CellSpec,
    CellTimeline,
    profile_by_name,
    run_cell,
)
from repro.scale.shards import (
    CITY_BUDGETS,
    CityBudget,
    cell_contention_campaign,
    city_cell_spec,
    city_coverage_campaign,
    city_users,
    demo_scale_campaigns,
)

__all__ = [
    "BackgroundPressure",
    "CITY_BUDGETS",
    "CellProcess",
    "CellSpec",
    "CellTimeline",
    "CityBudget",
    "PromotionEpisode",
    "PromotionPolicy",
    "cell_contention_campaign",
    "city_cell_spec",
    "city_coverage_campaign",
    "city_users",
    "demo_scale_campaigns",
    "plan_promotions",
    "profile_by_name",
    "promote_user",
    "run_cell",
    "run_pressured_session",
]
