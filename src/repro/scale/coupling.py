"""Coupling between the fluid background tier and the event engine.

Three mechanisms connect :mod:`repro.scale.population` to the existing
event-level machinery, all deterministic pure functions of
``(scenario, seed)``:

**Pressure** — a foreground :class:`~repro.core.session.OffloadSession`
runs with a :class:`BackgroundPressure` driver attached: at every fluid
sample boundary inside the session window, the access links' rate and
loss are re-derived from the cell's utilization via the shared
:func:`repro.wireless.profiles.load_factors` hook.  The background
population never exchanges packets with the foreground — it presses on
the foreground through link parameters only, which is what makes 10^5
background users cost O(fluid steps), not O(packets).

**Promotion / demotion** — when a cell's utilization crosses
:class:`PromotionPolicy` thresholds (with hysteresis and a minimum
dwell, so the tier boundary doesn't flap), :func:`plan_promotions`
emits deterministic episodes.  For each episode a background user is
*promoted*: instantiated as a full event-level offload session whose
seed comes from the fluid simulator's ``child_rng(tag)`` — the user's
event-level randomness is a pure function of the fluid state that
spawned it.  Demotion is the episode ending: the session's statistics
fold back into the cell's mergeable aggregate and the user rejoins the
fluid mass.

**Zero-background identity** — :func:`run_pressured_session` with an
all-zero utilization timeline attaches *nothing*: no events are
scheduled, no link parameter is written, and the run delegates to the
exact build/collect path of the ``cell_offload`` fleet scenario.  The
foreground tier at zero background is therefore byte-identical to the
uncoupled event-level scenario (hard acceptance gate, pinned by
``tests/test_scale_coupling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.wireless.profiles import AccessProfile, load_factors

from repro.scale.population import CONTENTION_RHO

#: (session-relative time, utilization) — piecewise-constant pressure.
PressureSample = Tuple[float, float]


# ----------------------------------------------------------------------
# Background pressure on a foreground event-level session
# ----------------------------------------------------------------------
class BackgroundPressure:
    """Drive a cell's utilization timeline onto a scenario's access links.

    Built against a :class:`~repro.core.session.Scenario` from
    ``ScenarioBuilder.single_path`` (one duplex access link: ``links[0]``
    down, ``links[1]`` up).  Each sample ``(t, ρ)`` schedules one event
    at session-relative time ``t`` that rewrites both directions' rate
    and loss from the *unloaded base values* captured at attach time —
    factors are absolute per sample, never compounded, so the pressure
    applied is independent of how many samples preceded it.

    Samples with ρ=0 restore the base parameters exactly (the factors
    are bit-exact identity); an *entirely* zero timeline should skip
    construction altogether (see :func:`run_pressured_session`) so the
    event stream stays byte-identical to the uncoupled scenario.
    """

    def __init__(self, scenario, samples: Sequence[PressureSample]) -> None:
        if len(scenario.net.links) < 2:
            raise ValueError("scenario has no duplex access link to press on")
        self.sim = scenario.sim
        self.down = scenario.net.links[0]
        self.up = scenario.net.links[1]
        self._base_down_rate = self.down.rate_bps
        self._base_up_rate = self.up.rate_bps
        self._base_down_loss = self.down.loss
        self._base_up_loss = self.up.loss
        #: (time, ρ) actually applied, in firing order (for tests/obs).
        self.applied: List[PressureSample] = []
        for t, rho in samples:
            self.sim.schedule_at(max(float(t), self.sim.now),
                                 self._apply, float(rho))

    def _apply(self, rho: float) -> None:
        f = load_factors(rho)
        self.down.rate_bps = self._base_down_rate * f.share
        self.up.rate_bps = self._base_up_rate * f.share
        self.down.loss = min(self._base_down_loss + f.extra_loss, 1.0)
        self.up.loss = min(self._base_up_loss + f.extra_loss, 1.0)
        self.applied.append((self.sim.now, rho))


def has_pressure(samples: Sequence[PressureSample]) -> bool:
    """True when any sample actually degrades service (ρ > 0)."""
    return any(rho > 0.0 for _t, rho in samples)


def run_pressured_session(seed: int, params: Dict[str, object],
                          samples: Sequence[PressureSample] = ()):
    """Run one foreground ``cell_offload`` session under background load.

    ``params`` is the ``cell_offload`` parameter dict (rtt / up_bps /
    loss / duration); ``samples`` is the session-relative utilization
    timeline.  With no samples — or samples that are all ρ=0 — nothing
    is attached and this is *the same computation* as
    ``fleet.scenarios.run_cell_offload(seed, params)``, byte for byte.
    """
    from repro.fleet.scenarios import (
        build_offload_session,
        collect_offload_aggregate,
    )

    duration = float(params.get("duration", 2.0))
    scenario, session = build_offload_session(seed, params)
    if has_pressure(samples):
        BackgroundPressure(scenario, samples)
    report = session.run(duration)
    return collect_offload_aggregate(scenario, session, report)


# ----------------------------------------------------------------------
# Promotion / demotion between fidelity tiers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PromotionPolicy:
    """When a background user crosses into the foreground tier.

    Hysteresis (``exit_rho`` strictly below ``enter_rho``) plus a
    minimum dwell keep the tier boundary from flapping on fluid noise.
    """

    enter_rho: float = CONTENTION_RHO
    exit_rho: float = 0.60
    min_dwell: float = 5.0

    def __post_init__(self) -> None:
        if not self.exit_rho < self.enter_rho:
            raise ValueError("exit_rho must be strictly below enter_rho")
        if self.min_dwell < 0:
            raise ValueError("min_dwell must be >= 0")


@dataclass(frozen=True)
class PromotionEpisode:
    """One contention interval: a user lives event-level in [start, end)."""

    start: float
    end: float
    peak_rho: float


def plan_promotions(samples: Sequence[Tuple[float, float, float]],
                    policy: PromotionPolicy = PromotionPolicy(),
                    ) -> List[PromotionEpisode]:
    """Deterministic promotion episodes from a cell's fluid samples.

    ``samples`` are the timeline's ``(t, n, ρ)`` tuples in time order.
    An episode opens when ρ reaches ``enter_rho``, and closes at the
    first sample where ρ has fallen to ``exit_rho`` *and* the episode
    has lasted ``min_dwell``; an episode still open at the last sample
    closes there (end of study = demotion).  Pure function of its
    inputs — no RNG, no clock.
    """
    episodes: List[PromotionEpisode] = []
    start = peak = None
    for t, _n, rho in samples:
        if start is None:
            if rho >= policy.enter_rho:
                start, peak = t, rho
        else:
            peak = max(peak, rho)
            if rho <= policy.exit_rho and t - start >= policy.min_dwell:
                episodes.append(PromotionEpisode(start=start, end=t,
                                                 peak_rho=peak))
                start = peak = None
    if start is not None and samples:
        episodes.append(PromotionEpisode(start=start, end=samples[-1][0],
                                         peak_rho=peak))
    return episodes


def promote_user(fluid_sim, cell_id: int, index: int, rho: float,
                 profile: AccessProfile, *, n_frames: int = 30,
                 app_name: str = "orientation"):
    """Instantiate one promoted background user as an event-level session.

    The user's entire event-level randomness derives from the *fluid*
    simulator via ``child_rng(f"scale.promote.{cell_id}.{index}")`` —
    a promoted user is a pure function of the fluid state (cell, which
    contention episode) that spawned it, independent of any other
    promotion.  The session runs the frame-loop offload executor
    (:meth:`repro.mar.offload.OffloadExecutor.for_cell`) against the
    cell's profile *under its contention load* ``rho``; its statistics
    fold back into a mergeable aggregate under ``scale.promoted.*``
    (demotion).  Returns ``(seed, aggregate)``.
    """
    from repro.fleet.aggregate import Aggregate
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.offload import FeatureOffload, OffloadExecutor
    from repro.simnet.engine import Simulator

    seed = fluid_sim.child_rng(
        f"scale.promote.{cell_id}.{index}").getrandbits(63)
    sim = Simulator(seed=seed)
    executor = OffloadExecutor.for_cell(
        sim, profile, rho, cell_id=cell_id,
        app=APP_ARCHETYPES[app_name], strategy=FeatureOffload())
    result = executor.run(n_frames=n_frames)

    agg = Aggregate()
    agg.count("scale.promoted_sessions")
    agg.count("scale.promoted_frames", result.frames_completed)
    agg.moment("scale.promoted.frame_latency").extend(result.frame_latencies)
    agg.moment("scale.promoted.deadline_hit_rate").add(
        result.deadline_hit_rate)
    return seed, agg


__all__ = [
    "BackgroundPressure",
    "PressureSample",
    "PromotionEpisode",
    "PromotionPolicy",
    "has_pressure",
    "plan_promotions",
    "promote_user",
    "run_pressured_session",
]
