"""Execution-delay equations of Section III-B.

The paper constrains an application ``a`` three ways:

1. pure local execution::

       P_local(Rm, f(a), p(a)) < δa                         (Eq. 1)

2. local execution with an external database::

       P_local+externalDB(Rm, f(a), p(a), d(a), o(a),
                          b_mc, l_mc, x) < δa

   where ``x`` is the fraction of virtual objects cached locally;

3. computation offloading::

       P_offloading(Rm, Rc, f(a), p(a), d(a), o(a),
                    b_mc, l_mc, x, y) < δa

   where ``x`` splits p(a) between device and cloud and ``y`` says
   whether data and compute live on the same surrogate (a second
   server hop otherwise).

These are implemented as plain functions over :class:`~repro.mar.
devices.Device` (Rm, Rc) and :class:`~repro.mar.application.
MarApplication` (f, p, d, o, δa) plus an :class:`ExecutionBudget`
describing the network (b_mc as up/down bandwidth, l_mc as one-way
latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mar.application import MarApplication
from repro.mar.devices import Device


@dataclass(frozen=True)
class ExecutionBudget:
    """The network term of the equations: n_mc = (b_mc, l_mc).

    ``bandwidth_up_bps`` / ``bandwidth_down_bps`` — b_mc per direction;
    ``latency`` — one-way delay l_mc in seconds;
    ``server_interlink_latency`` — extra one-way delay between the
    compute surrogate and the data surrogate when they differ (the
    ``y`` parameter's cost).
    """

    bandwidth_up_bps: float
    bandwidth_down_bps: float
    latency: float
    server_interlink_latency: float = 0.010

    @property
    def rtt(self) -> float:
        return 2 * self.latency


def local_delay(device: Device, app: MarApplication) -> float:
    """P_local: per-frame execution time when everything runs on-device."""
    return device.execution_time(app.megacycles_per_frame)


def feasible_locally(device: Device, app: MarApplication) -> bool:
    """Eq. 1: can the device sustain in-time execution by itself?"""
    return local_delay(device, app) < app.deadline


def local_with_db_delay(
    device: Device,
    app: MarApplication,
    budget: ExecutionBudget,
    cache_hit_ratio: float,
) -> float:
    """P_local+externalDB: local compute plus expected object-fetch time.

    ``cache_hit_ratio`` is the x parameter: the fraction of o(a)
    requests served from local storage.  Misses pay one network round
    trip plus the object's transfer time, amortized per frame by the
    request rate d(a)/f(a).
    """
    if not 0.0 <= cache_hit_ratio <= 1.0:
        raise ValueError("cache_hit_ratio must be in [0, 1]")
    compute = local_delay(device, app)
    requests_per_frame = app.db_requests_per_s / app.fps
    miss_rate = 1.0 - cache_hit_ratio
    fetch_time = budget.rtt + app.object_bytes * 8 / budget.bandwidth_down_bps
    return compute + requests_per_frame * miss_rate * fetch_time


def offloading_delay(
    device: Device,
    cloud: Device,
    app: MarApplication,
    budget: ExecutionBudget,
    local_fraction: float = 0.0,
    data_colocated: bool = True,
    cache_hit_ratio: float = 1.0,
    upload_bytes: Optional[int] = None,
    use_features: bool = False,
) -> float:
    """P_offloading: per-frame latency with the pipeline split.

    ``local_fraction`` is the x parameter: the fraction of p(a)
    executed on the device (the rest runs on the cloud surrogate).
    ``data_colocated`` is the y parameter: when False, the compute
    surrogate fetches objects from a second server, paying the
    interlink latency per database request.

    ``upload_bytes`` overrides the uplink payload (defaults to the
    feature payload when ``use_features`` or the device computes the
    extraction stage locally, else the full compressed frame).
    """
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError("local_fraction must be in [0, 1]")
    local_part = device.execution_time(app.megacycles_per_frame * local_fraction)
    remote_part = cloud.execution_time(app.megacycles_per_frame * (1 - local_fraction))

    if upload_bytes is None:
        extraction_local = use_features or local_fraction > 0.0
        upload_bytes = app.feature_upload_bytes if extraction_local else app.frame_upload_bytes
    upload = upload_bytes * 8 / budget.bandwidth_up_bps
    download = app.result_bytes * 8 / budget.bandwidth_down_bps
    network = budget.rtt + upload + download

    data_penalty = 0.0
    if not data_colocated:
        requests_per_frame = app.db_requests_per_s / app.fps
        miss_rate = 1.0 - cache_hit_ratio
        data_penalty = requests_per_frame * miss_rate * (
            2 * budget.server_interlink_latency
            + app.object_bytes * 8 / budget.bandwidth_down_bps
        )
    return local_part + remote_part + network + data_penalty


def offloading_wins(
    device: Device,
    cloud: Device,
    app: MarApplication,
    budget: ExecutionBudget,
    **kwargs,
) -> bool:
    """Does offloading beat pure local execution for this configuration?"""
    return offloading_delay(device, cloud, app, budget, **kwargs) < local_delay(device, app)


def max_latency_for_deadline(
    device: Device,
    cloud: Device,
    app: MarApplication,
    bandwidth_up_bps: float,
    bandwidth_down_bps: float,
    **kwargs,
) -> float:
    """Largest one-way l_mc keeping P_offloading under δa (may be ≤ 0)."""
    zero = ExecutionBudget(bandwidth_up_bps, bandwidth_down_bps, latency=0.0)
    fixed = offloading_delay(device, cloud, app, zero, **kwargs)
    return (app.deadline - fixed) / 2.0
