"""MAR application and offloading models (Section III of the paper).

- :mod:`~repro.mar.devices` — the device ecosystem of Table I.
- :mod:`~repro.mar.application` — the MAR application model: frame rate
  f(a), per-frame processing p(a), database access rate d(a), virtual
  object size o(a), and deadline δa.
- :mod:`~repro.mar.video` — bandwidth estimates of Section III-B (raw
  retina rate, uncompressed 4K, compressed ladder) and a GOP-structured
  video source.
- :mod:`~repro.mar.sensors` — companion sensor streams.
- :mod:`~repro.mar.compute` — the execution-delay equations P_local,
  P_local+externalDB and P_offloading.
- :mod:`~repro.mar.offload` — offloading strategies (local, full
  offload, CloudRidAR feature split, Glimpse tracking split) and a
  simnet-driven executor measuring real per-frame latency.
- :mod:`~repro.mar.cache` — virtual-object cache/prefetch (the x
  parameter).
- :mod:`~repro.mar.energy` — battery-life model per strategy.
"""

from repro.mar.devices import Device, CLOUD, DESKTOP, LAPTOP, SMART_GLASSES, SMARTPHONE, TABLET, all_devices
from repro.mar.application import MarApplication, APP_ARCHETYPES
from repro.mar.video import (
    VideoSource,
    compressed_bitrate,
    raw_retina_rate_bps,
    camera_fov_rate_bps,
    uncompressed_bitrate,
)
from repro.mar.sensors import SensorStream, STANDARD_SENSOR_SUITE, suite_bitrate_bps
from repro.mar.compute import (
    ExecutionBudget,
    local_delay,
    local_with_db_delay,
    offloading_delay,
    feasible_locally,
    offloading_wins,
)
from repro.mar.offload import (
    OffloadStrategy,
    FramePlan,
    LocalOnly,
    FullOffload,
    FeatureOffload,
    TrackingOffload,
    OffloadExecutor,
    ResilientOffloadExecutor,
    SessionResult,
)
from repro.mar.cache import ObjectCache
from repro.mar.energy import EnergyModel, battery_life_hours
from repro.mar.decision import DecisionEngine, StrategyForecast
from repro.mar.adaptive import AdaptiveExecutor, AdaptiveTrackingOffload
from repro.mar.dataplan import DataPlan, TYPICAL_PLANS, cheapest_plan, monthly_cost_of_usage, session_metered_bytes
from repro.mar.prefetch import GridWorld, MarkovPredictor, PrefetchingCache

__all__ = [
    "Device",
    "SMART_GLASSES",
    "SMARTPHONE",
    "TABLET",
    "LAPTOP",
    "DESKTOP",
    "CLOUD",
    "all_devices",
    "MarApplication",
    "APP_ARCHETYPES",
    "VideoSource",
    "raw_retina_rate_bps",
    "camera_fov_rate_bps",
    "uncompressed_bitrate",
    "compressed_bitrate",
    "SensorStream",
    "STANDARD_SENSOR_SUITE",
    "suite_bitrate_bps",
    "ExecutionBudget",
    "local_delay",
    "local_with_db_delay",
    "offloading_delay",
    "feasible_locally",
    "offloading_wins",
    "OffloadStrategy",
    "FramePlan",
    "LocalOnly",
    "FullOffload",
    "FeatureOffload",
    "TrackingOffload",
    "OffloadExecutor",
    "ResilientOffloadExecutor",
    "SessionResult",
    "ObjectCache",
    "EnergyModel",
    "battery_life_hours",
    "DecisionEngine",
    "StrategyForecast",
    "AdaptiveExecutor",
    "AdaptiveTrackingOffload",
    "DataPlan",
    "TYPICAL_PLANS",
    "cheapest_plan",
    "monthly_cost_of_usage",
    "session_metered_bytes",
    "GridWorld",
    "MarkovPredictor",
    "PrefetchingCache",
]
