"""Companion sensor streams (Section III-A "Input").

MAR applications fuse camera video with IMU, GPS, magnetometer and
audio data — individually tiny but latency-sensitive flows that MARTP
classifies "full best effort / medium priority 1" (delayable, never
discarded... until degradation demands it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


@dataclass(frozen=True)
class SensorStream:
    """One periodic sensor flow."""

    name: str
    rate_hz: float
    sample_bytes: int

    @property
    def bitrate_bps(self) -> float:
        return self.rate_hz * self.sample_bytes * 8

    def samples(self, duration: float) -> Iterator[Tuple[float, int]]:
        """(timestamp, size) pairs for ``duration`` seconds."""
        n = int(duration * self.rate_hz)
        period = 1.0 / self.rate_hz
        for i in range(n):
            yield i * period, self.sample_bytes


#: A typical smartphone/wearable sensor suite.
STANDARD_SENSOR_SUITE: Dict[str, SensorStream] = {
    "imu": SensorStream("imu", rate_hz=100.0, sample_bytes=36),        # acc+gyro+mag
    "gps": SensorStream("gps", rate_hz=1.0, sample_bytes=64),
    "orientation": SensorStream("orientation", rate_hz=60.0, sample_bytes=16),
    "ambient": SensorStream("ambient", rate_hz=0.5, sample_bytes=12),  # light/temp
    "audio_meta": SensorStream("audio_meta", rate_hz=10.0, sample_bytes=48),
}


def suite_bitrate_bps(suite: Dict[str, SensorStream] = STANDARD_SENSOR_SUITE) -> float:
    """Aggregate sensor bitrate — the 'adjustable variable' of Fig. 4."""
    return sum(s.bitrate_bps for s in suite.values())
