"""Energy model: compute vs radio trade-off of offloading.

Offloading saves CPU energy but spends radio energy; whether the trade
pays off depends on the radio technology (LTE transmission is far more
expensive per byte than WiFi) and on how much data the strategy ships —
one reason the paper's multipath policies (Section VI-D) prefer WiFi.

Constants are order-of-magnitude figures from the mobile-systems
literature (Huang et al. MobiSys'12 class measurements), sufficient for
the *relative* comparisons the benchmarks make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.mar.devices import Device

#: Joules per megacycle of CPU work on a mobile-class core.
JOULES_PER_MEGACYCLE = 0.0008

#: Radio energy per transmitted/received byte, by technology.
RADIO_JOULES_PER_BYTE: Dict[str, float] = {
    "wifi": 0.05e-6 * 8,    # ~0.4 µJ/byte
    "lte": 0.25e-6 * 8,     # ~2 µJ/byte
    "hspa": 0.35e-6 * 8,
    "d2d": 0.03e-6 * 8,
}

#: Fixed radio tail energy per transmission burst (state promotions).
RADIO_TAIL_JOULES: Dict[str, float] = {
    "wifi": 0.02,
    "lte": 0.12,
    "hspa": 0.15,
    "d2d": 0.01,
}

#: Device baseline draw (screen, sensors, OS) in watts.
BASELINE_WATTS = 0.9


@dataclass
class EnergyModel:
    """Accumulates energy for one device over a session."""

    radio: str = "wifi"
    compute_joules: float = 0.0
    radio_joules: float = 0.0
    bursts: int = 0

    def on_compute(self, megacycles: float) -> None:
        self.compute_joules += megacycles * JOULES_PER_MEGACYCLE

    def on_transfer(self, tx_bytes: int, rx_bytes: int = 0, new_burst: bool = False) -> None:
        per_byte = RADIO_JOULES_PER_BYTE[self.radio]
        self.radio_joules += (tx_bytes + rx_bytes) * per_byte
        if new_burst:
            self.radio_joules += RADIO_TAIL_JOULES[self.radio]
            self.bursts += 1

    def total(self, duration: float) -> float:
        """Total joules including baseline draw over ``duration`` seconds."""
        return self.compute_joules + self.radio_joules + BASELINE_WATTS * duration


def battery_life_hours(
    device: Device,
    avg_megacycles_per_s: float,
    avg_tx_bytes_per_s: float,
    avg_rx_bytes_per_s: float,
    radio: str = "wifi",
    bursts_per_s: float = 0.5,
) -> Optional[float]:
    """Projected battery life under a steady workload; None for mains power."""
    if device.battery_joules is None:
        return None
    watts = (
        BASELINE_WATTS
        + avg_megacycles_per_s * JOULES_PER_MEGACYCLE
        + (avg_tx_bytes_per_s + avg_rx_bytes_per_s) * RADIO_JOULES_PER_BYTE[radio]
        + bursts_per_s * RADIO_TAIL_JOULES[radio]
    )
    return device.battery_joules / watts / 3600.0
