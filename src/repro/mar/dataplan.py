"""Mobile data-plan economics (Section V-C).

"Most mobile networks continue to be expensive to the user.  We can
expect the user to be reluctant to transmit large amounts of data for
the sake of a seamless MAR experience."  This module prices that
reluctance: a :class:`DataPlan` with a monthly quota and overage rate
turns a session's metered bytes into money, and
:func:`monthly_cost_of_usage` projects what daily MAR habits cost under
each multipath policy — the economic force behind the paper's three
Section VI-D behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class DataPlan:
    """A consumer mobile data plan.

    ``quota_bytes`` per month at ``monthly_fee``; beyond it each byte
    costs ``overage_per_gb / 1e9`` (or the line is throttled when
    ``throttles`` — modelled as zero marginal cost but a quality flag).
    """

    name: str
    monthly_fee: float
    quota_bytes: float
    overage_per_gb: float = 0.0
    throttles: bool = False

    def cost_of(self, metered_bytes: float) -> float:
        """Total monthly cost if ``metered_bytes`` are consumed."""
        if metered_bytes <= self.quota_bytes or self.throttles:
            return self.monthly_fee
        excess = metered_bytes - self.quota_bytes
        return self.monthly_fee + excess / 1e9 * self.overage_per_gb

    def marginal_cost_per_gb(self, metered_bytes: float) -> float:
        """Price of the *next* gigabyte at the given usage level."""
        if self.throttles:
            return 0.0
        if metered_bytes < self.quota_bytes:
            return 0.0
        return self.overage_per_gb

    def quota_fraction(self, metered_bytes: float) -> float:
        return metered_bytes / self.quota_bytes if self.quota_bytes else float("inf")


#: Representative 2017-era plans (order-of-magnitude realistic).
TYPICAL_PLANS: Dict[str, DataPlan] = {
    "small": DataPlan("small", monthly_fee=15.0, quota_bytes=2e9,
                      overage_per_gb=10.0),
    "medium": DataPlan("medium", monthly_fee=30.0, quota_bytes=10e9,
                       overage_per_gb=8.0),
    "large": DataPlan("large", monthly_fee=50.0, quota_bytes=50e9,
                      overage_per_gb=5.0),
    "throttled": DataPlan("throttled", monthly_fee=25.0, quota_bytes=5e9,
                          throttles=True),
}


def session_metered_bytes(uplink_bps: float, downlink_bps: float,
                          duration_s: float, metered_fraction: float) -> float:
    """Bytes billed against the plan for one session."""
    if not 0.0 <= metered_fraction <= 1.0:
        raise ValueError("metered_fraction must be in [0, 1]")
    total = (uplink_bps + downlink_bps) / 8 * duration_s
    return total * metered_fraction


def monthly_cost_of_usage(plan: DataPlan, metered_bytes_per_day: float,
                          days: int = 30) -> float:
    """Project one month of daily MAR usage onto a plan."""
    return plan.cost_of(metered_bytes_per_day * days)


def cheapest_plan(metered_bytes_per_month: float,
                  plans: Optional[Dict[str, DataPlan]] = None) -> DataPlan:
    """The plan minimizing cost at a usage level (throttled plans are
    excluded above their quota — MAR is unusable when throttled)."""
    plans = plans if plans is not None else TYPICAL_PLANS
    viable = [
        p for p in plans.values()
        if not (p.throttles and metered_bytes_per_month > p.quota_bytes)
    ]
    if not viable:
        raise ValueError("no viable plan at this usage level")
    return min(viable, key=lambda p: p.cost_of(metered_bytes_per_month))
