"""Offloading strategies and the simnet-driven session executor.

Strategies decide, frame by frame, how work splits between device and
surrogate (the x parameter made concrete):

- :class:`LocalOnly` — everything on-device (the Eq. 1 baseline);
- :class:`FullOffload` — encode + ship the whole frame, server runs the
  vision pipeline;
- :class:`FeatureOffload` — CloudRidAR's split [13]: feature extraction
  on-device, only features cross the network;
- :class:`TrackingOffload` — Glimpse's split [25]: cheap local tracking
  every frame, full offload only for trigger frames.

:class:`OffloadExecutor` runs a strategy over a real simulated network
path (UDP fragments, reassembly, server-side compute delay) and
produces the per-frame latency distribution — the measurement behind
Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mar.application import MarApplication
from repro.mar.devices import CLOUD, Device
from repro.mar.energy import EnergyModel
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.transport.udp import UdpSocket

#: Fragment payload size for frame/feature uploads.
FRAGMENT_BYTES = 1200

#: Fraction of p(a) that is feature extraction (detect + describe) —
#: calibrated from the ArPipeline stage breakdown.
EXTRACTION_FRACTION = 0.45

#: Fraction of p(a) a tracking-only frame costs (Glimpse's cheap path).
TRACKING_FRACTION = 0.10

#: Fixed cost of encoding one frame for upload, as a fraction of p(a).
ENCODE_FRACTION = 0.08


@dataclass(frozen=True)
class FramePlan:
    """How one frame executes: compute split and network payloads."""

    local_megacycles: float
    upload_bytes: int
    remote_megacycles: float
    download_bytes: int

    @property
    def needs_network(self) -> bool:
        return self.upload_bytes > 0


class OffloadStrategy:
    """Base class: produce a :class:`FramePlan` per frame index."""

    name = "base"

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        raise NotImplementedError

    def mean_uplink_bps(self, app: MarApplication, horizon: int = 300) -> float:
        """Average offered uplink rate over a frame horizon."""
        total = sum(self.plan_frame(app, i).upload_bytes for i in range(horizon))
        return total * 8 * app.fps / horizon


class LocalOnly(OffloadStrategy):
    """Everything on the device; the network is never touched."""

    name = "local"

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return FramePlan(
            local_megacycles=app.megacycles_per_frame,
            upload_bytes=0,
            remote_megacycles=0.0,
            download_bytes=0,
        )


class FullOffload(OffloadStrategy):
    """Ship every frame; the server does all vision work."""

    name = "full-offload"

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * ENCODE_FRACTION,
            upload_bytes=app.frame_upload_bytes,
            remote_megacycles=app.megacycles_per_frame,
            download_bytes=app.result_bytes,
        )


class FeatureOffload(OffloadStrategy):
    """CloudRidAR: extract features locally, offload matching/alignment."""

    name = "feature-offload"

    def __init__(self, extraction_fraction: float = EXTRACTION_FRACTION) -> None:
        self.extraction_fraction = extraction_fraction

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * self.extraction_fraction,
            upload_bytes=app.feature_upload_bytes,
            remote_megacycles=app.megacycles_per_frame * (1 - self.extraction_fraction),
            download_bytes=app.result_bytes,
        )


class TrackingOffload(OffloadStrategy):
    """Glimpse: local tracking, full offload on trigger frames only."""

    name = "tracking-offload"

    def __init__(self, trigger_interval: int = 10) -> None:
        if trigger_interval < 1:
            raise ValueError("trigger_interval must be >= 1")
        self.trigger_interval = trigger_interval

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        if index % self.trigger_interval == 0:
            return FramePlan(
                local_megacycles=app.megacycles_per_frame * ENCODE_FRACTION,
                upload_bytes=app.frame_upload_bytes,
                remote_megacycles=app.megacycles_per_frame,
                download_bytes=app.result_bytes,
            )
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * TRACKING_FRACTION,
            upload_bytes=0,
            remote_megacycles=0.0,
            download_bytes=0,
        )


# ----------------------------------------------------------------------
# Session execution over simnet
# ----------------------------------------------------------------------
@dataclass
class SessionResult:
    """Per-frame measurements of one offloading session."""

    frame_latencies: List[float] = field(default_factory=list)
    offloaded_latencies: List[float] = field(default_factory=list)
    link_rtts: List[float] = field(default_factory=list)
    deadline: float = 0.0
    frames_sent: int = 0
    frames_completed: int = 0
    energy: Optional[EnergyModel] = None

    @property
    def mean_latency(self) -> float:
        lat = self.frame_latencies
        return sum(lat) / len(lat) if lat else float("inf")

    @property
    def mean_offloaded_latency(self) -> float:
        lat = self.offloaded_latencies
        return sum(lat) / len(lat) if lat else float("inf")

    @property
    def mean_link_rtt(self) -> float:
        return sum(self.link_rtts) / len(self.link_rtts) if self.link_rtts else float("inf")

    def percentile(self, q: float) -> float:
        data = sorted(self.frame_latencies)
        if not data:
            return float("inf")
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def deadline_hit_rate(self) -> float:
        if not self.frame_latencies:
            return 0.0
        return sum(1 for l in self.frame_latencies if l <= self.deadline) / len(
            self.frame_latencies
        )

    @property
    def loss_rate(self) -> float:
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_completed / self.frames_sent


class _ServerSide:
    """Reassembles uploads, applies compute delay, returns results."""

    def __init__(self, net: Network, host: str, port: int, server_device: Device) -> None:
        self.net = net
        self.sim = net.sim
        self.device = server_device
        self.socket = UdpSocket(net[host], port, on_receive=self._on_packet)
        self._partial: Dict[int, Dict[str, int]] = {}

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "ping":
            self.socket.sendto(packet.src, packet.src_port, 64, kind="pong",
                               echo=packet.payload["t"])
            return
        if packet.kind != "frame-fragment":
            return
        frame_id = packet.payload["frame"]
        state = self._partial.setdefault(
            frame_id,
            {"got": 0, "need": packet.payload["n_fragments"]},
        )
        state["got"] += 1
        if state["got"] < state["need"]:
            return
        del self._partial[frame_id]
        compute = self.device.execution_time(packet.payload["remote_megacycles"])
        self.sim.schedule(
            compute,
            self._respond,
            packet.src,
            packet.src_port,
            frame_id,
            packet.payload["download_bytes"],
        )

    def _respond(self, dst: str, dst_port: int, frame_id: int, download_bytes: int) -> None:
        n_fragments = max(1, -(-download_bytes // FRAGMENT_BYTES))
        remaining = download_bytes
        for i in range(n_fragments):
            size = min(FRAGMENT_BYTES, remaining) if remaining > 0 else 1
            remaining -= size
            self.socket.sendto(
                dst, dst_port, size,
                kind="result-fragment",
                frame=frame_id,
                n_fragments=n_fragments,
            )


class OffloadExecutor:
    """Runs an offloading session: client on one host, server on another.

    The client generates frames at f(a); each frame runs its local
    compute, ships its upload as UDP fragments, and the frame completes
    when all result fragments return (or immediately after local
    compute for frames that never touch the network).  Ping probes
    measure the bare link RTT alongside (Table II's "Link RTT" row).
    """

    def __init__(
        self,
        net: Network,
        client: str,
        server: str,
        app: MarApplication,
        strategy: OffloadStrategy,
        device: Device,
        server_device: Device = CLOUD,
        client_port: int = 9000,
        server_port: int = 9001,
        radio: str = "wifi",
        ping_interval: float = 1.0,
        frame_timeout: float = 2.0,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.app = app
        self.strategy = strategy
        self.device = device
        self.server_name = server
        self.server_port = server_port
        self.ping_interval = ping_interval
        self.frame_timeout = frame_timeout
        self.result = SessionResult(deadline=app.deadline, energy=EnergyModel(radio=radio))
        self.socket = UdpSocket(net[client], client_port, on_receive=self._on_packet)
        self.server = _ServerSide(net, server, server_port, server_device)
        self._pending: Dict[int, Dict[str, float]] = {}
        self._frame_index = 0

    # ------------------------------------------------------------------
    def start(self, n_frames: int) -> None:
        """Schedule the whole session (run the simulator afterwards)."""
        self.n_frames = n_frames
        for i in range(n_frames):
            self.sim.schedule(i * self.app.frame_budget, self._generate_frame, i)
        self.sim.schedule(0.0, self._ping)

    def _ping(self) -> None:
        self.socket.sendto(self.server_name, self.server_port, 64, kind="ping", t=self.sim.now)
        if self._frame_index < self.n_frames:
            self.sim.schedule(self.ping_interval, self._ping)

    def _generate_frame(self, index: int) -> None:
        self._frame_index = index
        plan = self.strategy.plan_frame(self.app, index)
        self.result.frames_sent += 1
        self.result.energy.on_compute(plan.local_megacycles)
        local_time = self.device.execution_time(plan.local_megacycles)
        if plan.needs_network:
            self.sim.schedule(local_time, self._send_upload, index, plan)
        else:
            self.sim.schedule(local_time, self._complete_frame, index, self.sim.now)

    def _send_upload(self, index: int, plan: FramePlan) -> None:
        generated_at = self.sim.now - self.device.execution_time(plan.local_megacycles)
        self._pending[index] = {"generated": generated_at, "got": 0, "need": 0}
        n_fragments = max(1, -(-plan.upload_bytes // FRAGMENT_BYTES))
        remaining = plan.upload_bytes
        for i in range(n_fragments):
            size = min(FRAGMENT_BYTES, remaining) if remaining > 0 else 1
            remaining -= size
            self.socket.sendto(
                self.server_name,
                self.server_port,
                size,
                kind="frame-fragment",
                flow=f"offload:{self.socket.host.name}",
                frame=index,
                n_fragments=n_fragments,
                remote_megacycles=plan.remote_megacycles,
                download_bytes=plan.download_bytes,
            )
        self.result.energy.on_transfer(plan.upload_bytes, new_burst=True)
        self.sim.schedule(self.frame_timeout, self._expire_frame, index)

    def _expire_frame(self, index: int) -> None:
        self._pending.pop(index, None)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "pong":
            self.result.link_rtts.append(self.sim.now - packet.payload["echo"])
            return
        if packet.kind != "result-fragment":
            return
        index = packet.payload["frame"]
        state = self._pending.get(index)
        if state is None:
            return
        state["got"] += 1
        state["need"] = packet.payload["n_fragments"]
        if state["got"] >= state["need"]:
            generated = state.pop("generated")
            del self._pending[index]
            self.result.energy.on_transfer(0, rx_bytes=packet.size * state["need"])
            self._complete_frame(index, generated, offloaded=True)

    def _complete_frame(self, index: int, generated_at: float, offloaded: bool = False) -> None:
        latency = self.sim.now - generated_at
        self.result.frame_latencies.append(latency)
        if offloaded:
            self.result.offloaded_latencies.append(latency)
        self.result.frames_completed += 1

    # ------------------------------------------------------------------
    def run(self, n_frames: int = 300, settle: float = 2.0) -> SessionResult:
        """Convenience: start, run to completion, return results."""
        self.start(n_frames)
        duration = n_frames * self.app.frame_budget + settle
        self.sim.run(until=self.sim.now + duration)
        return self.result
