"""Offloading strategies and the simnet-driven session executor.

Strategies decide, frame by frame, how work splits between device and
surrogate (the x parameter made concrete):

- :class:`LocalOnly` — everything on-device (the Eq. 1 baseline);
- :class:`FullOffload` — encode + ship the whole frame, server runs the
  vision pipeline;
- :class:`FeatureOffload` — CloudRidAR's split [13]: feature extraction
  on-device, only features cross the network;
- :class:`TrackingOffload` — Glimpse's split [25]: cheap local tracking
  every frame, full offload only for trigger frames.

:class:`OffloadExecutor` runs a strategy over a real simulated network
path (UDP fragments, reassembly, server-side compute delay) and
produces the per-frame latency distribution — the measurement behind
Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    DecorrelatedBackoff,
    HeartbeatMonitor,
    Liveness,
    ResilienceMetrics,
    ServiceMode,
)
from repro.mar.application import MarApplication
from repro.mar.devices import CLOUD, SMARTPHONE, Device
from repro.mar.energy import EnergyModel
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.transport.udp import UdpSocket

#: Fragment payload size for frame/feature uploads.
FRAGMENT_BYTES = 1200

#: Fraction of p(a) that is feature extraction (detect + describe) —
#: calibrated from the ArPipeline stage breakdown.
EXTRACTION_FRACTION = 0.45

#: Fraction of p(a) a tracking-only frame costs (Glimpse's cheap path).
TRACKING_FRACTION = 0.10

#: Fixed cost of encoding one frame for upload, as a fraction of p(a).
ENCODE_FRACTION = 0.08


@dataclass(frozen=True)
class FramePlan:
    """How one frame executes: compute split and network payloads."""

    local_megacycles: float
    upload_bytes: int
    remote_megacycles: float
    download_bytes: int

    @property
    def needs_network(self) -> bool:
        return self.upload_bytes > 0


class OffloadStrategy:
    """Base class: produce a :class:`FramePlan` per frame index."""

    name = "base"

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        raise NotImplementedError

    def mean_uplink_bps(self, app: MarApplication, horizon: int = 300) -> float:
        """Average offered uplink rate over a frame horizon."""
        total = sum(self.plan_frame(app, i).upload_bytes for i in range(horizon))
        return total * 8 * app.fps / horizon


class LocalOnly(OffloadStrategy):
    """Everything on the device; the network is never touched."""

    name = "local"

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return FramePlan(
            local_megacycles=app.megacycles_per_frame,
            upload_bytes=0,
            remote_megacycles=0.0,
            download_bytes=0,
        )


class FullOffload(OffloadStrategy):
    """Ship every frame; the server does all vision work."""

    name = "full-offload"

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * ENCODE_FRACTION,
            upload_bytes=app.frame_upload_bytes,
            remote_megacycles=app.megacycles_per_frame,
            download_bytes=app.result_bytes,
        )


class FeatureOffload(OffloadStrategy):
    """CloudRidAR: extract features locally, offload matching/alignment."""

    name = "feature-offload"

    def __init__(self, extraction_fraction: float = EXTRACTION_FRACTION) -> None:
        self.extraction_fraction = extraction_fraction

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * self.extraction_fraction,
            upload_bytes=app.feature_upload_bytes,
            remote_megacycles=app.megacycles_per_frame * (1 - self.extraction_fraction),
            download_bytes=app.result_bytes,
        )


class TrackingOffload(OffloadStrategy):
    """Glimpse: local tracking, full offload on trigger frames only."""

    name = "tracking-offload"

    def __init__(self, trigger_interval: int = 10) -> None:
        if trigger_interval < 1:
            raise ValueError("trigger_interval must be >= 1")
        self.trigger_interval = trigger_interval

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        if index % self.trigger_interval == 0:
            return FramePlan(
                local_megacycles=app.megacycles_per_frame * ENCODE_FRACTION,
                upload_bytes=app.frame_upload_bytes,
                remote_megacycles=app.megacycles_per_frame,
                download_bytes=app.result_bytes,
            )
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * TRACKING_FRACTION,
            upload_bytes=0,
            remote_megacycles=0.0,
            download_bytes=0,
        )


# ----------------------------------------------------------------------
# Session execution over simnet
# ----------------------------------------------------------------------
@dataclass
class SessionResult:
    """Per-frame measurements of one offloading session."""

    frame_latencies: List[float] = field(default_factory=list)
    offloaded_latencies: List[float] = field(default_factory=list)
    degraded_latencies: List[float] = field(default_factory=list)
    link_rtts: List[float] = field(default_factory=list)
    deadline: float = 0.0
    frames_sent: int = 0
    frames_completed: int = 0
    energy: Optional[EnergyModel] = None

    @property
    def mean_latency(self) -> float:
        lat = self.frame_latencies
        return sum(lat) / len(lat) if lat else float("inf")

    @property
    def mean_offloaded_latency(self) -> float:
        lat = self.offloaded_latencies
        return sum(lat) / len(lat) if lat else float("inf")

    @property
    def mean_link_rtt(self) -> float:
        return sum(self.link_rtts) / len(self.link_rtts) if self.link_rtts else float("inf")

    def percentile(self, q: float) -> float:
        data = sorted(self.frame_latencies)
        if not data:
            return float("inf")
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def deadline_hit_rate(self) -> float:
        if not self.frame_latencies:
            return 0.0
        return sum(1 for l in self.frame_latencies if l <= self.deadline) / len(
            self.frame_latencies
        )

    @property
    def loss_rate(self) -> float:
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_completed / self.frames_sent


class _ServerSide:
    """Reassembles uploads, applies compute delay, returns results."""

    def __init__(self, net: Network, host: str, port: int, server_device: Device) -> None:
        self.net = net
        self.sim = net.sim
        self.device = server_device
        self.socket = UdpSocket(net[host], port, on_receive=self._on_packet)
        self._partial: Dict[int, Dict[str, int]] = {}
        #: Optional observability hooks (see repro.obs.instrument).
        self.obs = None

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "ping":
            self.socket.sendto(packet.src, packet.src_port, 64, kind="pong",
                               echo=packet.payload["t"])
            return
        if packet.kind != "frame-fragment":
            return
        frame_id = packet.payload["frame"]
        state = self._partial.setdefault(
            frame_id,
            {"got": 0, "need": packet.payload["n_fragments"]},
        )
        state["got"] += 1
        if state["got"] < state["need"]:
            return
        del self._partial[frame_id]
        if self.obs is not None:
            self.obs.on_upload_complete(frame_id,
                                        packet.payload["remote_megacycles"])
        compute = self.device.execution_time(packet.payload["remote_megacycles"])
        self.sim.schedule(
            compute,
            self._respond,
            packet.src,
            packet.src_port,
            frame_id,
            packet.payload["download_bytes"],
        )

    def _respond(self, dst: str, dst_port: int, frame_id: int, download_bytes: int) -> None:
        if self.obs is not None:
            self.obs.on_download_start(frame_id, download_bytes)
        n_fragments = max(1, -(-download_bytes // FRAGMENT_BYTES))
        remaining = download_bytes
        for i in range(n_fragments):
            size = min(FRAGMENT_BYTES, remaining) if remaining > 0 else 1
            remaining -= size
            self.socket.sendto(
                dst, dst_port, size,
                kind="result-fragment",
                frame=frame_id,
                n_fragments=n_fragments,
            )


class OffloadExecutor:
    """Runs an offloading session: client on one host, server on another.

    The client generates frames at f(a); each frame runs its local
    compute, ships its upload as UDP fragments, and the frame completes
    when all result fragments return (or immediately after local
    compute for frames that never touch the network).  Ping probes
    measure the bare link RTT alongside (Table II's "Link RTT" row).
    """

    def __init__(
        self,
        net: Network,
        client: str,
        server: str,
        app: MarApplication,
        strategy: OffloadStrategy,
        device: Device,
        server_device: Device = CLOUD,
        client_port: int = 9000,
        server_port: int = 9001,
        radio: str = "wifi",
        ping_interval: float = 1.0,
        frame_timeout: float = 2.0,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.app = app
        self.strategy = strategy
        self.device = device
        self.server_name = server
        self.server_port = server_port
        self.ping_interval = ping_interval
        self.frame_timeout = frame_timeout
        self.result = SessionResult(deadline=app.deadline, energy=EnergyModel(radio=radio))
        self.socket = UdpSocket(net[client], client_port, on_receive=self._on_packet)
        self.server = _ServerSide(net, server, server_port, server_device)
        self._pending: Dict[int, Dict[str, float]] = {}
        self._frame_index = 0
        #: Optional observability hooks (attach_frame_observer sets it;
        #: every call site is None-guarded, so tracing off costs one
        #: attribute test and allocates nothing).
        self.obs = None

    # ------------------------------------------------------------------
    @classmethod
    def for_cell(
        cls,
        sim,
        profile,
        utilization: float,
        *,
        cell_id: int = 0,
        app: MarApplication,
        strategy: OffloadStrategy,
        device: Device = SMARTPHONE,
        server_device: Device = CLOUD,
        **kwargs,
    ) -> "OffloadExecutor":
        """Promotion entry point for the hybrid-fidelity layer.

        Build an executor for one user promoted out of a cell's fluid
        background population (:mod:`repro.scale.coupling`): the access
        link is the cell's measured profile *under its current
        background utilization* (``profile.under_load``), and the
        serving edge sits behind the cell's deterministic backhaul tier
        (:func:`repro.edge.assignment.serving_edge_rtt`).  ``profile``
        is a :class:`repro.wireless.profiles.AccessProfile`; ``sim`` is
        a fresh simulator seeded from the promoted user's fluid state.
        """
        from repro.edge.assignment import serving_edge_rtt
        from repro.simnet.queues import DropTailQueue

        loaded = profile.under_load(utilization)
        net = Network(sim)
        net.add_host("client")
        net.add_host("edge")
        backhaul = serving_edge_rtt(cell_id)
        net.add_duplex(
            "edge",
            "client",
            rate_down_bps=loaded.down_mean,
            rate_up_bps=loaded.up_mean,
            delay=(loaded.rtt + backhaul) / 2,
            jitter=loaded.rtt_jitter / 2,
            loss=loaded.loss,
            queue_up=DropTailQueue(1000),
        )
        net.build_routes()
        return cls(net, "client", "edge", app, strategy, device,
                   server_device=server_device, **kwargs)

    # ------------------------------------------------------------------
    def start(self, n_frames: int) -> None:
        """Schedule the whole session (run the simulator afterwards)."""
        self.n_frames = n_frames
        for i in range(n_frames):
            self.sim.schedule(i * self.app.frame_budget, self._generate_frame, i)
        self.sim.schedule(0.0, self._ping)

    def _ping(self) -> None:
        self.socket.sendto(self.server_name, self.server_port, 64, kind="ping", t=self.sim.now)
        if self._frame_index < self.n_frames:
            self.sim.schedule(self.ping_interval, self._ping)

    def _generate_frame(self, index: int) -> None:
        self._frame_index = index
        plan = self.strategy.plan_frame(self.app, index)
        if self.obs is not None:
            self.obs.on_frame_start(index, plan)
        self.result.frames_sent += 1
        self.result.energy.on_compute(plan.local_megacycles)
        local_time = self.device.execution_time(plan.local_megacycles)
        if plan.needs_network:
            self.sim.schedule(local_time, self._send_upload, index, plan)
        else:
            self.sim.schedule(local_time, self._complete_frame, index, self.sim.now)

    def _send_upload(self, index: int, plan: FramePlan) -> None:
        if self.obs is not None:
            self.obs.on_upload_start(index, plan)
        generated_at = self.sim.now - self.device.execution_time(plan.local_megacycles)
        self._pending[index] = {"generated": generated_at, "got": 0, "need": 0}
        n_fragments = max(1, -(-plan.upload_bytes // FRAGMENT_BYTES))
        remaining = plan.upload_bytes
        for i in range(n_fragments):
            size = min(FRAGMENT_BYTES, remaining) if remaining > 0 else 1
            remaining -= size
            self.socket.sendto(
                self.server_name,
                self.server_port,
                size,
                kind="frame-fragment",
                flow=f"offload:{self.socket.host.name}",
                frame=index,
                n_fragments=n_fragments,
                remote_megacycles=plan.remote_megacycles,
                download_bytes=plan.download_bytes,
            )
        self.result.energy.on_transfer(plan.upload_bytes, new_burst=True)
        self.sim.schedule(self.frame_timeout, self._expire_frame, index)

    def _expire_frame(self, index: int) -> None:
        if self._pending.pop(index, None) is not None and self.obs is not None:
            self.obs.on_frame_expired(index)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "pong":
            self.result.link_rtts.append(self.sim.now - packet.payload["echo"])
            return
        if packet.kind != "result-fragment":
            return
        index = packet.payload["frame"]
        state = self._pending.get(index)
        if state is None:
            return
        state["got"] += 1
        state["need"] = packet.payload["n_fragments"]
        if state["got"] >= state["need"]:
            generated = state.pop("generated")
            del self._pending[index]
            self.result.energy.on_transfer(0, rx_bytes=packet.size * state["need"])
            self._complete_frame(index, generated, offloaded=True)

    def _complete_frame(self, index: int, generated_at: float, offloaded: bool = False) -> None:
        latency = self.sim.now - generated_at
        self.result.frame_latencies.append(latency)
        if offloaded:
            self.result.offloaded_latencies.append(latency)
        self.result.frames_completed += 1
        if self.obs is not None:
            self.obs.on_frame_complete(index,
                                       "offloaded" if offloaded else "local")

    # ------------------------------------------------------------------
    def run(self, n_frames: int = 300, settle: float = 2.0) -> SessionResult:
        """Convenience: start, run to completion, return results."""
        self.start(n_frames)
        duration = n_frames * self.app.frame_budget + settle
        self.sim.run(until=self.sim.now + duration)
        return self.result


# ----------------------------------------------------------------------
# Resilient execution: heartbeats, retries, failover, circuit breaking
# ----------------------------------------------------------------------
class ResilientOffloadExecutor(OffloadExecutor):
    """An :class:`OffloadExecutor` that survives dead servers and paths.

    On top of the base frame pipeline it adds the Section VI-B
    resilience layer:

    - a :class:`~repro.core.resilience.HeartbeatMonitor` per server
      (primary + failover candidates) with RTT-adaptive timeouts —
      liveness is *detected*, never assumed;
    - per-frame retry with exponential backoff and decorrelated jitter;
      a frame whose retries exhaust is re-executed locally instead of
      dropped (graceful degradation, not a stalled pipeline);
    - failover: when the active server is declared failed, traffic
      moves to the best surviving candidate (heartbeat state first,
      preference order second);
    - a :class:`~repro.core.resilience.CircuitBreaker` around the
      offload service: when no candidate survives (or retries keep
      exhausting) it trips and the executor runs frames in
      :class:`LocalOnly` degraded mode, half-opening periodically to
      probe recovery.  Heartbeat pongs arriving while tripped also
      close the breaker — whichever probe succeeds first wins.

    The resulting state machine (healthy → suspect → failed-over →
    degraded-local → probing → healthy) is recorded in
    :class:`~repro.core.resilience.ResilienceMetrics` and summarized by
    :meth:`resilience_report`.
    """

    def __init__(
        self,
        net: Network,
        client: str,
        servers: Sequence[str],
        app: MarApplication,
        strategy: OffloadStrategy,
        device: Device,
        server_device: Device = CLOUD,
        client_port: int = 9000,
        server_port: int = 9001,
        radio: str = "wifi",
        heartbeat_interval: float = 0.25,
        miss_threshold: int = 3,
        frame_timeout: float = 2.0,
        max_frame_retries: int = 2,
        retry_backoff_base: float = 0.05,
        retry_backoff_cap: float = 1.0,
        breaker_failures: int = 3,
        breaker_cooldown: float = 1.0,
    ) -> None:
        if not servers:
            raise ValueError("need at least one server")
        super().__init__(
            net, client, servers[0], app, strategy, device, server_device,
            client_port, server_port, radio,
            ping_interval=heartbeat_interval, frame_timeout=frame_timeout,
        )
        self.servers = list(servers)
        self.active_server = servers[0]
        self.miss_threshold = miss_threshold
        self.max_frame_retries = max_frame_retries
        self._backups = {
            name: _ServerSide(net, name, server_port, server_device)
            for name in self.servers[1:]
        }
        self._rng = net.sim.child_rng(f"resilience:{client}")
        self._retry_base = retry_backoff_base
        self._retry_cap = retry_backoff_cap
        self.monitors: Dict[str, HeartbeatMonitor] = {
            name: HeartbeatMonitor(
                net.sim, name, self._send_heartbeat,
                interval=heartbeat_interval, miss_threshold=miss_threshold,
                on_state_change=self._on_liveness,
            )
            for name in self.servers
        }
        self.breaker = CircuitBreaker(
            clock=lambda: self.sim.now,
            failure_threshold=breaker_failures,
            cooldown=breaker_cooldown,
        )
        self.metrics = ResilienceMetrics()
        self.mode = ServiceMode.HEALTHY
        self._attempts: Dict[int, Dict] = {}
        #: (completion time, frame index, "offloaded"|"local"|"degraded")
        self.frame_log: List[tuple] = []

    # ------------------------------------------------------------------
    # Liveness plumbing
    # ------------------------------------------------------------------
    def _send_heartbeat(self, target: str, token: float) -> None:
        self.socket.sendto(target, self.server_port, 64, kind="ping", t=token)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "pong":
            monitor = self.monitors.get(packet.src)
            if monitor is not None:
                monitor.on_pong(packet.payload["echo"])
            if packet.src == self.active_server:
                self.result.link_rtts.append(self.sim.now - packet.payload["echo"])
            return
        super()._on_packet(packet)

    def _steady_mode(self) -> ServiceMode:
        return (ServiceMode.HEALTHY if self.active_server == self.servers[0]
                else ServiceMode.FAILED_OVER)

    def _set_mode(self, mode: ServiceMode) -> None:
        self.mode = mode
        self.metrics.record_mode(self.sim.now, mode)

    def _on_liveness(self, target: str, old: Liveness, new: Liveness) -> None:
        if new is Liveness.FAILED:
            if target == self.active_server:
                self.metrics.detection_delays.append(
                    self.monitors[target].detection_delays[-1]
                )
                self.metrics.outage_begin(self.sim.now)
                self._fail_over(exclude=target)
        elif new is Liveness.HEALTHY:
            if self.breaker.state is not BreakerState.CLOSED:
                # A probe pong while tripped: the world is back.
                self.breaker.record_success()
                self.active_server = target
                self._set_mode(self._steady_mode())
            elif target == self.active_server and self.mode is ServiceMode.SUSPECT:
                self._set_mode(self._steady_mode())
        elif new is Liveness.SUSPECT:
            if target == self.active_server and self.mode in (
                ServiceMode.HEALTHY, ServiceMode.FAILED_OVER
            ):
                self._set_mode(ServiceMode.SUSPECT)

    def _fail_over(self, exclude: str) -> None:
        rank = {Liveness.HEALTHY: 0, Liveness.SUSPECT: 1}
        candidates = [
            s for s in self.servers
            if s != exclude and self.monitors[s].state is not Liveness.FAILED
        ]
        candidates.sort(key=lambda s: (rank[self.monitors[s].state],
                                       self.servers.index(s)))
        if candidates:
            self.active_server = candidates[0]
            self.metrics.failovers += 1
            self._set_mode(ServiceMode.FAILED_OVER)
        else:
            self.breaker.trip()
            self._set_mode(ServiceMode.DEGRADED_LOCAL)

    # ------------------------------------------------------------------
    # Frame pipeline overrides
    # ------------------------------------------------------------------
    def start(self, n_frames: int) -> None:
        self.n_frames = n_frames
        for i in range(n_frames):
            self.sim.schedule(i * self.app.frame_budget, self._generate_frame, i)
        self._set_mode(self.mode)
        for monitor in self.monitors.values():
            monitor.start()

    def _local_plan(self) -> FramePlan:
        return FramePlan(
            local_megacycles=self.app.megacycles_per_frame,
            upload_bytes=0,
            remote_megacycles=0.0,
            download_bytes=0,
        )

    def _generate_frame(self, index: int) -> None:
        self._frame_index = index
        if not self.breaker.allow_request():
            # Tripped: serve the frame on-device, degraded but alive.
            plan = self._local_plan()
            if self.obs is not None:
                self.obs.on_frame_start(index, plan)
            self.result.frames_sent += 1
            self.result.energy.on_compute(plan.local_megacycles)
            local_time = self.device.execution_time(plan.local_megacycles)
            self.sim.schedule(local_time, self._complete_degraded, index, self.sim.now)
            return
        probe = self.breaker.state is BreakerState.HALF_OPEN
        if probe:
            self._set_mode(ServiceMode.PROBING)
        plan = self.strategy.plan_frame(self.app, index)
        if self.obs is not None:
            self.obs.on_frame_start(index, plan)
        self.result.frames_sent += 1
        self.result.energy.on_compute(plan.local_megacycles)
        local_time = self.device.execution_time(plan.local_megacycles)
        if plan.needs_network:
            self.sim.schedule(local_time, self._send_upload, index, plan, probe)
        else:
            self.sim.schedule(local_time, self._complete_frame, index, self.sim.now)

    def _send_upload(self, index: int, plan: FramePlan, probe: bool = False) -> None:
        if self.obs is not None:
            self.obs.on_upload_start(index, plan)
        generated_at = self.sim.now - self.device.execution_time(plan.local_megacycles)
        self._pending[index] = {"generated": generated_at, "got": 0, "need": 0}
        self._attempts[index] = {
            "plan": plan,
            "count": 0,
            "probe": probe,
            "backoff": DecorrelatedBackoff(self._rng, base=self._retry_base,
                                           cap=self._retry_cap),
        }
        self._transmit_upload(index)

    def _transmit_upload(self, index: int) -> None:
        meta = self._attempts.get(index)
        if meta is None or index not in self._pending:
            return
        plan: FramePlan = meta["plan"]
        n_fragments = max(1, -(-plan.upload_bytes // FRAGMENT_BYTES))
        remaining = plan.upload_bytes
        for _ in range(n_fragments):
            size = min(FRAGMENT_BYTES, remaining) if remaining > 0 else 1
            remaining -= size
            self.socket.sendto(
                self.active_server,
                self.server_port,
                size,
                kind="frame-fragment",
                flow=f"offload:{self.socket.host.name}",
                frame=index,
                n_fragments=n_fragments,
                remote_megacycles=plan.remote_megacycles,
                download_bytes=plan.download_bytes,
            )
        self.result.energy.on_transfer(plan.upload_bytes, new_burst=True)
        self.sim.schedule(self._frame_deadline(), self._check_frame,
                          index, meta["count"])

    def _frame_deadline(self) -> float:
        """RTT-adaptive per-attempt timeout, bounded by ``frame_timeout``."""
        rtt = self.monitors[self.active_server].rtt
        return min(self.frame_timeout, max(0.05, 3 * rtt.timeout()))

    def _check_frame(self, index: int, attempt: int) -> None:
        if index not in self._pending:
            return
        meta = self._attempts.get(index)
        if meta is None or meta["count"] != attempt:
            return                               # a newer attempt is in flight
        # State read only — the retry path must not consume the breaker's
        # half-open probe slot (allow_request mutates on cooldown expiry).
        tripped = self.breaker.state is BreakerState.OPEN
        if meta["count"] < self.max_frame_retries and not tripped:
            meta["count"] += 1
            self.sim.schedule(meta["backoff"].next(), self._transmit_upload, index)
            return
        # Retries exhausted: degrade this frame to local execution.
        state = self._pending.pop(index)
        self._attempts.pop(index, None)
        self.breaker.record_failure()
        if self.breaker.state is BreakerState.OPEN:
            self.metrics.outage_begin(self.sim.now)
            self._set_mode(ServiceMode.DEGRADED_LOCAL)
        megacycles = self.app.megacycles_per_frame
        self.result.energy.on_compute(megacycles)
        self.sim.schedule(
            self.device.execution_time(megacycles),
            self._complete_degraded, index, state["generated"],
        )

    def _complete_degraded(self, index: int, generated_at: float) -> None:
        latency = self.sim.now - generated_at
        self.result.frame_latencies.append(latency)
        self.result.degraded_latencies.append(latency)
        self.result.frames_completed += 1
        self.metrics.frames_degraded += 1
        self.frame_log.append((self.sim.now, index, "degraded"))
        if self.obs is not None:
            self.obs.on_frame_complete(index, "degraded")

    def _complete_frame(self, index: int, generated_at: float, offloaded: bool = False) -> None:
        meta = self._attempts.pop(index, None)
        super()._complete_frame(index, generated_at, offloaded)
        self.frame_log.append((self.sim.now, index, "offloaded" if offloaded else "local"))
        if not offloaded:
            self.metrics.frames_local_by_design += 1
            return
        self.metrics.frames_offloaded += 1
        self.metrics.outage_end(self.sim.now)
        if meta is not None and meta["probe"]:
            self.breaker.record_success()
        if self.breaker.state is BreakerState.CLOSED and self.mode in (
            ServiceMode.PROBING, ServiceMode.DEGRADED_LOCAL
        ):
            self._set_mode(self._steady_mode())

    def _expire_frame(self, index: int) -> None:
        # Superseded by the retry/fallback machinery of _check_frame.
        pass

    # ------------------------------------------------------------------
    def run(self, n_frames: int = 300, settle: float = 2.0) -> SessionResult:
        result = super().run(n_frames, settle)
        for monitor in self.monitors.values():
            monitor.stop()
        self.metrics.close(self.sim.now)
        self.metrics.frames_dropped = result.frames_sent - result.frames_completed
        return result

    def resilience_report(self):
        """Aggregate the session's resilience metrics (after ``run``)."""
        self.metrics.breaker_trips = self.breaker.trips
        return self.metrics.report(duration=self.sim.now)
