"""The MAR application model of Section III.

An application ``a`` is characterized by (paper notation in brackets):

- ``fps`` — frame generation rate [f(a)];
- ``megacycles_per_frame`` — per-frame processing requirement [p(a)];
- ``db_requests_per_s`` — external database access rate [d(a)];
- ``object_bytes`` — virtual-object size fetched per request [o(a)];
- ``deadline`` — in-time execution constraint [δa].

Plus the I/O sizes the network actually carries: compressed frame
upload bytes, extracted-feature bytes, and result/metadata bytes.

:data:`APP_ARCHETYPES` instantiates the four usage classes of Figure 1
(orientation, virtual memorial, gaming, art) with resource envelopes
consistent with the paper's discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class MarApplication:
    """One MAR application's resource profile."""

    name: str
    description: str
    fps: float                      # f(a)
    megacycles_per_frame: float     # p(a)
    db_requests_per_s: float        # d(a)
    object_bytes: int               # o(a)
    deadline: float                 # δa (seconds, per frame, end-to-end)
    frame_upload_bytes: int         # compressed camera frame on the uplink
    feature_upload_bytes: int       # extracted-feature alternative payload
    result_bytes: int               # downlink result/meta-data per frame
    sensor_rate_bps: float = 20_000.0
    resolution: Tuple[int, int] = (640, 480)
    interactive: bool = True

    @property
    def frame_budget(self) -> float:
        """Inter-frame time 1/f(a) — the paper's minimum-rate reading of δa."""
        return 1.0 / self.fps

    @property
    def uplink_bps(self) -> float:
        """Offered uplink load under full-frame offloading."""
        return self.frame_upload_bytes * 8 * self.fps + self.sensor_rate_bps

    @property
    def feature_uplink_bps(self) -> float:
        """Offered uplink load under feature offloading (CloudRidAR)."""
        return self.feature_upload_bytes * 8 * self.fps + self.sensor_rate_bps

    @property
    def downlink_bps(self) -> float:
        return self.result_bytes * 8 * self.fps

    def required_local_rate(self) -> float:
        """Min device cycles/s for in-time local execution (from Eq. 1)."""
        return self.megacycles_per_frame * 1e6 / self.deadline


#: The four usage classes of Figure 1.
APP_ARCHETYPES: Dict[str, MarApplication] = {
    "orientation": MarApplication(
        name="orientation",
        description="POI overlay while walking (Yelp Monocle-like): light "
        "vision, heavy database access, relaxed deadline",
        fps=15.0,
        megacycles_per_frame=120.0,
        db_requests_per_s=2.0,
        object_bytes=24_000,
        deadline=0.100,
        frame_upload_bytes=18_000,
        feature_upload_bytes=4_000,
        result_bytes=2_000,
        resolution=(640, 480),
    ),
    "memorial": MarApplication(
        name="memorial",
        description="geo-anchored virtual memorial (Frontera de los "
        "Muertos-like): static 3-D content, moderate alignment accuracy",
        fps=20.0,
        megacycles_per_frame=220.0,
        db_requests_per_s=0.5,
        object_bytes=250_000,
        deadline=0.075,
        frame_upload_bytes=25_000,
        feature_upload_bytes=6_000,
        result_bytes=4_000,
        resolution=(960, 540),
    ),
    "gaming": MarApplication(
        name="gaming",
        description="interactive AR game (pulzAR-like): tight deadline, "
        "continuous tracking, frequent state sync",
        fps=30.0,
        megacycles_per_frame=400.0,
        db_requests_per_s=5.0,
        object_bytes=60_000,
        deadline=0.050,
        frame_upload_bytes=32_000,
        feature_upload_bytes=8_000,
        result_bytes=6_000,
        resolution=(1280, 720),
    ),
    "art": MarApplication(
        name="art",
        description="AR art display (Yunuene-like): rich visual overlays, "
        "quality over latency",
        fps=24.0,
        megacycles_per_frame=300.0,
        db_requests_per_s=1.0,
        object_bytes=1_000_000,
        deadline=0.100,
        frame_upload_bytes=40_000,
        feature_upload_bytes=7_000,
        result_bytes=12_000,
        resolution=(1280, 720),
    ),
}
