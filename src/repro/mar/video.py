"""Video bandwidth estimates of Section III-B and a GOP video source.

The paper's back-of-envelope chain, reproduced by these functions:

1. the human eye delivers ~6–10 Mb/s to the brain, but only for the
   ~2° foveal circle (:func:`raw_retina_rate_bps`);
2. scaled to a smartphone camera's 60–70° field of view, raw scene data
   is ~9–12 Gb/s (:func:`camera_fov_rate_bps`);
3. uncompressed 4K60 @ 12 bpp is 711 Mb/s
   (:func:`uncompressed_bitrate`);
4. lossy compression brings that to 20–30 Mb/s
   (:func:`compressed_bitrate`), and ~10 Mb/s is the floor for "enough
   information to perform advanced AR operations".

:class:`VideoSource` produces a deterministic reference/inter frame
size sequence with a configurable GOP, used by MARTP benchmarks where
the reference frames form the loss-protected class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Estimated optic-nerve payload for the foveal region (Section III-B).
RETINA_RATE_RANGE_BPS = (6e6, 10e6)

#: Diameter of the accurate foveal circle, degrees of visual field.
FOVEA_DIAMETER_DEG = 2.0


def raw_retina_rate_bps() -> Tuple[float, float]:
    """The 6–10 Mb/s eye-to-brain estimate the paper starts from."""
    return RETINA_RATE_RANGE_BPS


def camera_fov_rate_bps(fov_deg: float = 65.0) -> Tuple[float, float]:
    """Scale the foveal rate to a full camera field of view.

    Information scales with solid angle ≈ (fov/fovea)² for small
    angles; the paper quotes 9–12 Gb/s for a 60–70° camera.
    """
    scale = (fov_deg / FOVEA_DIAMETER_DEG) ** 2
    lo, hi = RETINA_RATE_RANGE_BPS
    return lo * scale, hi * scale


def uncompressed_bitrate(
    width: int = 3840, height: int = 2160, fps: float = 60.0, bits_per_pixel: float = 12.0
) -> float:
    """Raw video bitrate in bits/s.

    The paper quotes "711 Mb/s" for 4K60 at 12 bpp; the exact product
    is 3840*2160*12*60 ≈ 5.97 Gb/s, i.e. ~746 MB/s ≈ 711 **MiB/s** — the
    paper's figure is the *byte* rate mislabelled as Mb/s.  This
    function returns the unambiguous bit rate; EXPERIMENTS.md records
    the unit discrepancy.
    """
    return width * height * bits_per_pixel * fps


def compressed_bitrate(raw_bps: float, ratio: float = 30.0) -> float:
    """Lossy-compressed bitrate at a given compression ratio.

    H.264/H.265 at AR-usable quality achieves ~25–35x on natural video,
    matching the paper's 20–30 Mb/s for 4K.
    """
    if ratio <= 1:
        raise ValueError("compression ratio must exceed 1")
    return raw_bps / ratio


@dataclass
class VideoFrame:
    """One encoded frame."""

    index: int
    is_reference: bool   # I-frame (true) vs P/B interframe
    size_bytes: int
    timestamp: float


class VideoSource:
    """Deterministic GOP-structured encoded-video source.

    Every ``gop`` frames an I-frame (reference) of ``ref_bytes`` is
    produced; the remaining frames are interframes of ``inter_bytes``.
    These map directly onto MARTP's traffic classes: reference frames
    are "best effort with loss recovery / highest priority", interframes
    "full best effort / lowest priority" (Section VI-B's worked
    example).
    """

    def __init__(
        self,
        fps: float = 30.0,
        gop: int = 15,
        ref_bytes: int = 24_000,
        inter_bytes: int = 6_000,
    ) -> None:
        if gop < 1:
            raise ValueError("gop must be >= 1")
        self.fps = fps
        self.gop = gop
        self.ref_bytes = ref_bytes
        self.inter_bytes = inter_bytes

    @property
    def bitrate_bps(self) -> float:
        per_gop = self.ref_bytes + (self.gop - 1) * self.inter_bytes
        return per_gop * 8 * self.fps / self.gop

    def frame(self, index: int) -> VideoFrame:
        is_ref = index % self.gop == 0
        return VideoFrame(
            index=index,
            is_reference=is_ref,
            size_bytes=self.ref_bytes if is_ref else self.inter_bytes,
            timestamp=index / self.fps,
        )

    def frames(self, duration: float) -> Iterator[VideoFrame]:
        """All frames with timestamp < duration."""
        n = int(duration * self.fps)
        for i in range(n):
            yield self.frame(i)

    def scale_quality(self, factor: float) -> "VideoSource":
        """A degraded copy: frame sizes scaled by ``factor`` (graceful
        degradation's 'lower the video quality' knob)."""
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        return VideoSource(
            fps=self.fps,
            gop=self.gop,
            ref_bytes=max(1, int(self.ref_bytes * factor)),
            inter_bytes=max(1, int(self.inter_bytes * factor)),
        )
