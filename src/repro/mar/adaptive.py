"""Adaptive offloading: vision-driven triggers and live strategy switching.

Two pieces the static strategies in :mod:`repro.mar.offload` lack:

- :class:`AdaptiveTrackingOffload` — Glimpse's *real* trigger rule.
  The fixed-interval :class:`~repro.mar.offload.TrackingOffload`
  offloads every Nth frame; Glimpse offloads **when tracking degrades**.
  This strategy owns an actual :class:`~repro.vision.pipeline.
  ArPipeline`, tracks each incoming camera frame, and plans a full
  offload only when the tracked-point loss fraction crosses the
  trigger threshold (or no keyframe exists yet).  Slow scenes cost
  almost nothing; fast scenes offload as often as needed.

- :class:`AdaptiveExecutor` — wraps :class:`~repro.mar.offload.
  OffloadExecutor`'s session loop with a :class:`~repro.mar.decision.
  DecisionEngine`: measured ping RTTs feed the engine, and the active
  strategy can change between frames (e.g. WiFi → LTE degradation
  flips full offload to feature offload mid-session).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mar.application import MarApplication
from repro.mar.decision import DecisionEngine
from repro.mar.devices import Device
from repro.mar.offload import (
    ENCODE_FRACTION,
    TRACKING_FRACTION,
    FramePlan,
    OffloadExecutor,
    OffloadStrategy,
)
from repro.vision.pipeline import ArPipeline


class AdaptiveTrackingOffload(OffloadStrategy):
    """Glimpse with its real trigger: offload when tracking degrades.

    Frames are supplied via :meth:`observe_frame` (the camera feed);
    :meth:`plan_frame` then reflects the *latest* observation.  When
    used without frames (pure network simulations), it behaves like a
    conservative fixed-interval tracker via ``fallback_interval``.
    """

    name = "adaptive-tracking"

    def __init__(
        self,
        pipeline: Optional[ArPipeline] = None,
        max_lost: float = 0.4,
        fallback_interval: int = 15,
    ) -> None:
        self.pipeline = pipeline
        self.max_lost = max_lost
        self.fallback_interval = fallback_interval
        self.triggers = 0
        self.tracked = 0
        self._next_is_trigger = True   # first frame always offloads
        self.trigger_log: List[int] = []
        self._frame_index = 0

    # ------------------------------------------------------------------
    def observe_frame(self, frame: "np.ndarray") -> bool:
        """Feed the next camera frame; returns True when it must offload.

        The decision uses the actual tracker: if no keyframe exists or
        too many tracked points were lost, the frame is a trigger (and
        on trigger the pipeline performs the full recognition locally
        in this observation step so the keyframe updates — in a real
        deployment the server would return the keyframe features).
        """
        index = self._frame_index
        self._frame_index += 1
        if self.pipeline is None:
            raise RuntimeError("observe_frame needs a pipeline")
        if not self.pipeline.tracker.has_keyframe:
            trigger = True
        else:
            result, _ = self.pipeline.track_frame(frame)
            trigger = self.pipeline.tracker.should_trigger(result, self.max_lost)
        if trigger:
            # Recognition refreshes the keyframe (server-side work whose
            # outcome we materialize locally for the next observation).
            self.pipeline.process_frame(frame)
            self.triggers += 1
            self.trigger_log.append(index)
        else:
            self.tracked += 1
        self._next_is_trigger = trigger
        return trigger

    # ------------------------------------------------------------------
    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        if self.pipeline is not None:
            trigger = self._next_is_trigger
        else:
            trigger = index % self.fallback_interval == 0
        if trigger:
            return FramePlan(
                local_megacycles=app.megacycles_per_frame * ENCODE_FRACTION,
                upload_bytes=app.frame_upload_bytes,
                remote_megacycles=app.megacycles_per_frame,
                download_bytes=app.result_bytes,
            )
        return FramePlan(
            local_megacycles=app.megacycles_per_frame * TRACKING_FRACTION,
            upload_bytes=0,
            remote_megacycles=0.0,
            download_bytes=0,
        )

    @property
    def trigger_rate(self) -> float:
        total = self.triggers + self.tracked
        return self.triggers / total if total else 0.0


class _SwitchingStrategy(OffloadStrategy):
    """Strategy proxy that always delegates to the engine's current pick."""

    name = "decision-engine"

    def __init__(self, engine: DecisionEngine) -> None:
        self.engine = engine

    def plan_frame(self, app: MarApplication, index: int) -> FramePlan:
        return self.engine.current.plan_frame(app, index)


class AdaptiveExecutor(OffloadExecutor):
    """An offloading session whose strategy follows a DecisionEngine.

    Ping RTT samples feed the engine's network estimate; the engine is
    re-consulted every ``decide_interval`` seconds, so a mid-session
    network change (the caller mutating link parameters) flips the
    strategy without restarting the session.
    """

    def __init__(self, net, client, server, app, device: Device,
                 engine: Optional[DecisionEngine] = None,
                 decide_interval: float = 1.0, uplink_hint_bps: float = 20e6,
                 **kwargs) -> None:
        self.engine = engine if engine is not None else DecisionEngine(device, app)
        self.decide_interval = decide_interval
        if self.engine.uplink_estimate_bps is None:
            self.engine.observe_uplink(uplink_hint_bps)
        super().__init__(net, client, server, app,
                         _SwitchingStrategy(self.engine), device, **kwargs)
        self.strategy_timeline: List[Tuple[float, str]] = []
        self.sim.schedule(0.0, self._decide_loop)

    def _decide_loop(self) -> None:
        self.engine.decide(now=self.sim.now)
        self.strategy_timeline.append((self.sim.now, self.engine.current.name))
        if self._frame_index < getattr(self, "n_frames", 0) or self.sim.now <= 0.0:
            self.sim.schedule(self.decide_interval, self._decide_loop)

    def _on_packet(self, packet) -> None:
        if packet.kind == "pong":
            self.engine.observe_rtt(self.sim.now - packet.payload["echo"])
        super()._on_packet(packet)

    def strategies_used(self) -> List[str]:
        seen: List[str] = []
        for _, name in self.strategy_timeline:
            if not seen or seen[-1] != name:
                seen.append(name)
        return seen
