"""Location-based prefetching for the virtual-object cache (§III-B).

"Caching and prefetching mechanisms can reduce the network overhead of
P_local+externalDB."  MAR content is geo-anchored, so the natural
predictor is spatial: learn cell-to-cell transitions from the user's
movement history and prefetch the objects of the most likely next
cells before the user arrives.

- :class:`GridWorld` — maps positions to cells and cells to their
  virtual-object catalogs (deterministic synthetic content).
- :class:`MarkovPredictor` — first-order cell-transition model.
- :class:`PrefetchingCache` — wraps :class:`~repro.mar.cache.
  ObjectCache`; on each movement tick it requests the current cell's
  objects (demand misses count) after prefetching the predicted next
  cells' objects.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mar.cache import ObjectCache
from repro.wireless.mobility import Waypoint

Cell = Tuple[int, int]


class GridWorld:
    """Geo-anchored content: each grid cell owns a set of objects."""

    def __init__(self, cell_size: float = 150.0, objects_per_cell: int = 6,
                 object_bytes: int = 120_000, seed: int = 0) -> None:
        self.cell_size = cell_size
        self.objects_per_cell = objects_per_cell
        self.object_bytes = object_bytes
        self.seed = seed

    def cell_of(self, point: Waypoint) -> Cell:
        return (int(point.x // self.cell_size), int(point.y // self.cell_size))

    def objects_in(self, cell: Cell) -> List[Tuple[str, int]]:
        """(key, size) catalog of one cell; deterministic per seed."""
        rng = random.Random(f"{self.seed}:{cell[0]}:{cell[1]}")
        count = max(1, self.objects_per_cell + rng.randint(-2, 2))
        return [
            (f"obj:{cell[0]}:{cell[1]}:{i}",
             int(self.object_bytes * rng.uniform(0.5, 1.5)))
            for i in range(count)
        ]

    def neighbours(self, cell: Cell) -> List[Cell]:
        x, y = cell
        return [(x + dx, y + dy)
                for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                if (dx, dy) != (0, 0)]


class MarkovPredictor:
    """First-order cell-transition predictor."""

    def __init__(self) -> None:
        self._transitions: Dict[Cell, Counter] = defaultdict(Counter)
        self._last: Optional[Cell] = None

    def observe(self, cell: Cell) -> None:
        if self._last is not None and cell != self._last:
            self._transitions[self._last][cell] += 1
        self._last = cell

    def train(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.observe(cell)
        self._last = None

    def predict(self, cell: Cell, k: int = 2) -> List[Cell]:
        """The k most likely next cells (may be empty for unseen cells)."""
        seen = self._transitions.get(cell)
        if not seen:
            return []
        return [c for c, _ in seen.most_common(k)]


class PrefetchingCache:
    """Object cache driven by movement, with pluggable prediction.

    ``policy`` is one of:

    - ``"none"`` — pure demand caching;
    - ``"neighbours"`` — prefetch all 8 adjacent cells (geometry only);
    - ``"markov"`` — prefetch the predictor's top-k next cells.
    """

    def __init__(
        self,
        world: GridWorld,
        capacity_bytes: int,
        policy: str = "markov",
        predictor: Optional[MarkovPredictor] = None,
        top_k: int = 3,
    ) -> None:
        if policy not in ("none", "neighbours", "markov"):
            raise ValueError(f"unknown policy {policy!r}")
        self.world = world
        self.cache = ObjectCache(capacity_bytes)
        self.policy = policy
        self.predictor = predictor if predictor is not None else MarkovPredictor()
        self.top_k = top_k
        self.prefetched_bytes = 0
        self._current_cell: Optional[Cell] = None

    # ------------------------------------------------------------------
    def on_move(self, point: Waypoint) -> None:
        """Advance to a new position: prefetch, then demand-access.

        Demand accesses happen on cell *entry* — an MAR browser loads a
        cell's anchored objects once when the user arrives, then renders
        from memory while the user stays inside it.
        """
        cell = self.world.cell_of(point)
        if cell == self._current_cell:
            return
        self._current_cell = cell
        if self.policy != "none":
            self._prefetch_for(cell)
        if self.policy == "markov":
            self.predictor.observe(cell)
        for key, size in self.world.objects_in(cell):
            self.cache.request(key, size)

    def _prefetch_for(self, cell: Cell) -> None:
        if self.policy == "neighbours":
            targets = self.world.neighbours(cell)
        else:
            targets = self.predictor.predict(cell, self.top_k)
        items = []
        for target in targets:
            items.extend(self.world.objects_in(target))
        admitted = self.cache.prefetch(items)
        self.prefetched_bytes += sum(
            size for _, size in items[:admitted]
        )

    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        return self.cache.hit_ratio

    def run_trace(self, trajectory: Sequence[Waypoint]) -> float:
        """Replay a mobility trace; returns the demand hit ratio."""
        for point in trajectory:
            self.on_move(point)
        return self.hit_ratio
