"""Virtual-object cache with prefetching (the x parameter).

Section III-B: "the MAR application cannot store all possible images of
the objects to be detected due to limited storage on the device" — so a
device-side LRU cache holds the hot subset, and "caching and
prefetching mechanisms can reduce the network overhead of
P_local+externalDB".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Tuple


class ObjectCache:
    """Byte-budgeted LRU cache of virtual objects.

    ``capacity_bytes`` is bounded by the device's storage (Table I).
    :meth:`request` returns True on a hit; misses auto-insert (fetch
    assumed to have happened).  :meth:`prefetch` warms the cache, e.g.
    from a location-based predictor.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def request(self, key: str, size_bytes: int) -> bool:
        """Access an object; returns hit/miss and updates recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(key, size_bytes)
        return False

    def prefetch(self, items: Iterable[Tuple[str, int]]) -> int:
        """Warm the cache; returns how many objects were admitted."""
        admitted = 0
        for key, size in items:
            if key not in self._entries and size <= self.capacity_bytes:
                self._insert(key, size)
                admitted += 1
        return admitted

    def _insert(self, key: str, size_bytes: int) -> None:
        if size_bytes > self.capacity_bytes:
            return  # object can never fit; don't thrash the cache
        while self._used + size_bytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
        self._entries[key] = size_bytes
        self._used += size_bytes

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
