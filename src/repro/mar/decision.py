"""Runtime offloading decisions: pick a strategy from live conditions.

The paper's Section III equations tell you, for *known* network
conditions, whether offloading beats local execution.  A deployed MAR
application doesn't know those conditions — it estimates them from
probes and must also weigh battery.  :class:`DecisionEngine` closes
that loop:

- it keeps EWMA estimates of RTT and uplink bandwidth from probe
  samples the application feeds it;
- every re-evaluation, it predicts each candidate strategy's per-frame
  latency with :func:`repro.mar.compute.offloading_delay` (and
  P_local for the local strategy) and its energy draw from the energy
  model;
- it scores candidates lexicographically: deadline feasibility first,
  then energy when the battery is low, then latency;
- hysteresis: a challenger must beat the incumbent's score by
  ``switch_margin`` to cause a switch, so estimate noise does not flap
  strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mar.application import MarApplication
from repro.mar.compute import ExecutionBudget, local_delay, offloading_delay
from repro.mar.devices import CLOUD, Device
from repro.mar.energy import JOULES_PER_MEGACYCLE, RADIO_JOULES_PER_BYTE
from repro.mar.offload import (
    FeatureOffload,
    FullOffload,
    LocalOnly,
    OffloadStrategy,
    TrackingOffload,
)


@dataclass
class StrategyForecast:
    """Predicted per-frame behaviour of one strategy under current
    estimates."""

    strategy: OffloadStrategy
    latency: float
    energy_joules: float
    meets_deadline: bool

    def score(self, battery_low: bool) -> Tuple[int, float]:
        """Lower is better: (deadline missed?, energy-or-latency)."""
        primary = 0 if self.meets_deadline else 1
        secondary = self.energy_joules if battery_low else self.latency
        return (primary, secondary)


class DecisionEngine:
    """Adaptive strategy selection with hysteresis."""

    def __init__(
        self,
        device: Device,
        app: MarApplication,
        cloud: Device = CLOUD,
        radio: str = "wifi",
        battery_low_threshold: float = 0.2,
        switch_margin: float = 0.15,
        ewma_alpha: float = 0.2,
    ) -> None:
        self.device = device
        self.app = app
        self.cloud = cloud
        self.radio = radio
        self.battery_low_threshold = battery_low_threshold
        self.switch_margin = switch_margin
        self.ewma_alpha = ewma_alpha
        self.rtt_estimate: Optional[float] = None
        self.uplink_estimate_bps: Optional[float] = None
        self.battery_fraction = 1.0
        self.current: OffloadStrategy = LocalOnly()
        self.switches = 0
        self.history: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def observe_rtt(self, rtt: float) -> None:
        if rtt <= 0:
            return
        if self.rtt_estimate is None:
            self.rtt_estimate = rtt
        else:
            self.rtt_estimate += self.ewma_alpha * (rtt - self.rtt_estimate)

    def observe_uplink(self, bps: float) -> None:
        if bps <= 0:
            return
        if self.uplink_estimate_bps is None:
            self.uplink_estimate_bps = bps
        else:
            self.uplink_estimate_bps += self.ewma_alpha * (bps - self.uplink_estimate_bps)

    def observe_battery(self, fraction: float) -> None:
        self.battery_fraction = max(0.0, min(1.0, fraction))

    @property
    def network_known(self) -> bool:
        return self.rtt_estimate is not None and self.uplink_estimate_bps is not None

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def _candidates(self) -> List[OffloadStrategy]:
        return [LocalOnly(), FullOffload(), FeatureOffload(), TrackingOffload()]

    def forecast(self, strategy: OffloadStrategy) -> StrategyForecast:
        """Predict latency and energy for one strategy right now."""
        app = self.app
        plan = strategy.plan_frame(app, 1)          # a steady-state frame
        trigger = strategy.plan_frame(app, 0)       # a trigger/first frame
        if self.network_known:
            budget = ExecutionBudget(
                bandwidth_up_bps=self.uplink_estimate_bps,
                bandwidth_down_bps=self.uplink_estimate_bps * 3,
                latency=self.rtt_estimate / 2,
            )
        else:
            budget = None

        if isinstance(strategy, LocalOnly) or budget is None:
            latency = local_delay(self.device, app)
            if budget is None and not isinstance(strategy, LocalOnly):
                latency = float("inf")   # can't offload blind
        elif isinstance(strategy, TrackingOffload):
            # Mixed: mostly cheap tracked frames, periodic full frames.
            # The *mean* is the latency figure, but feasibility must use
            # the worst frame — a trigger frame that blows δa still
            # freezes the overlay, however rare.
            tracked = self.device.execution_time(plan.local_megacycles)
            offloaded = offloading_delay(
                self.device, self.cloud, app, budget,
                upload_bytes=trigger.upload_bytes,
                local_fraction=trigger.local_megacycles / app.megacycles_per_frame,
            )
            interval = strategy.trigger_interval
            latency = (offloaded + (interval - 1) * tracked) / interval
            worst = max(offloaded, tracked)
            energy = (
                plan.local_megacycles * JOULES_PER_MEGACYCLE
                + (plan.upload_bytes + plan.download_bytes)
                * RADIO_JOULES_PER_BYTE[self.radio]
            )
            return StrategyForecast(
                strategy=strategy,
                latency=latency,
                energy_joules=energy,
                meets_deadline=worst < app.deadline,
            )
        else:
            latency = offloading_delay(
                self.device, self.cloud, app, budget,
                upload_bytes=plan.upload_bytes,
                local_fraction=plan.local_megacycles / app.megacycles_per_frame,
            )

        per_byte = RADIO_JOULES_PER_BYTE[self.radio]
        energy = (
            plan.local_megacycles * JOULES_PER_MEGACYCLE
            + (plan.upload_bytes + plan.download_bytes) * per_byte
        )
        return StrategyForecast(
            strategy=strategy,
            latency=latency,
            energy_joules=energy,
            meets_deadline=latency < app.deadline,
        )

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def decide(self, now: float = 0.0) -> OffloadStrategy:
        """Re-evaluate; returns the (possibly unchanged) strategy."""
        battery_low = self.battery_fraction < self.battery_low_threshold
        forecasts = {type(s).__name__: self.forecast(s) for s in self._candidates()}
        best_name = min(forecasts, key=lambda n: forecasts[n].score(battery_low))
        best = forecasts[best_name]
        incumbent = forecasts.get(type(self.current).__name__)

        should_switch = incumbent is None
        if not should_switch:
            b_score = best.score(battery_low)
            i_score = incumbent.score(battery_low)
            if b_score[0] < i_score[0]:
                should_switch = True        # feasibility always wins
            elif b_score[0] == i_score[0] and i_score[1] > 0:
                improvement = (i_score[1] - b_score[1]) / i_score[1]
                should_switch = improvement > self.switch_margin
        if should_switch and type(best.strategy) is not type(self.current):
            self.current = best.strategy
            self.switches += 1
            self.history.append((now, best.strategy.name))
        return self.current
