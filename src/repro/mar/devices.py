"""The MAR device ecosystem of Table I.

Each :class:`Device` carries the qualitative attributes the paper
tabulates (computing power, storage, battery life, network access,
portability) plus the quantitative parameters the execution-cost
equations need: an effective compute rate in cycles/second (single
sustained CV-workload core-equivalent) and radio power draws for the
energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

GHZ = 1e9


@dataclass(frozen=True)
class Device:
    """One platform of the MAR ecosystem (Table I).

    ``compute_cycles_per_s`` is the sustained rate available to a
    vision workload (thermal limits and shared cores folded in) —
    *not* the nominal clock.  ``storage_gb`` is (min, max);
    ``battery_hours`` is (min, max) active use, None meaning mains
    power.
    """

    name: str
    computing_power: str            # qualitative, as in Table I
    compute_cycles_per_s: float
    storage_gb: Tuple[float, float]
    battery_hours: Optional[Tuple[float, float]]
    network_access: Tuple[str, ...]
    portability: str
    #: typical camera resolution for MAR capture (w, h); None = headless
    camera: Optional[Tuple[int, int]] = None
    #: battery capacity in joules (derived from typical packs)
    battery_joules: Optional[float] = None

    @property
    def mobile(self) -> bool:
        return self.portability in ("high", "medium")

    def execution_time(self, megacycles: float) -> float:
        """Seconds to execute ``megacycles`` of work on this device."""
        return megacycles * 1e6 / self.compute_cycles_per_s

    def storage_bytes_max(self) -> float:
        return self.storage_gb[1] * 1e9


SMART_GLASSES = Device(
    name="smart glasses",
    computing_power="very low",
    compute_cycles_per_s=0.4 * GHZ,
    storage_gb=(4, 16),
    battery_hours=(2, 3),
    network_access=("bluetooth",),
    portability="high",
    camera=(640, 480),
    battery_joules=2.1 * 3600,       # ~2.1 Wh
)

SMARTPHONE = Device(
    name="smartphone",
    computing_power="low",
    compute_cycles_per_s=1.6 * GHZ,
    storage_gb=(16, 128),
    battery_hours=(6, 8),
    network_access=("cellular", "wifi"),
    portability="high",
    camera=(1920, 1080),
    battery_joules=11.0 * 3600,      # ~11 Wh
)

TABLET = Device(
    name="tablet",
    computing_power="medium",
    compute_cycles_per_s=2.4 * GHZ,
    storage_gb=(32, 256),
    battery_hours=(6, 8),
    network_access=("cellular", "wifi"),
    portability="medium",
    camera=(1920, 1080),
    battery_joules=28.0 * 3600,
)

LAPTOP = Device(
    name="laptop PC",
    computing_power="medium-high",
    compute_cycles_per_s=6.0 * GHZ,
    storage_gb=(128, 2000),
    battery_hours=(2, 8),
    network_access=("cellular", "wifi", "ethernet"),
    portability="medium",
    camera=(1280, 720),
    battery_joules=180.0 * 3600,
)

DESKTOP = Device(
    name="desktop PC",
    computing_power="high",
    compute_cycles_per_s=14.0 * GHZ,
    storage_gb=(512, 2000),
    battery_hours=None,
    network_access=("wifi", "ethernet"),
    portability="none",
    camera=None,
)

CLOUD = Device(
    name="cloud computing",
    computing_power="unlimited",
    compute_cycles_per_s=80.0 * GHZ,  # horizontally scalable per session
    storage_gb=(1e6, 1e9),            # effectively unlimited
    battery_hours=None,
    network_access=("ethernet", "fiber"),
    portability="none",
    camera=None,
)


def all_devices() -> List[Device]:
    """All Table I platforms, least to most powerful."""
    return [SMART_GLASSES, SMARTPHONE, TABLET, LAPTOP, DESKTOP, CLOUD]
