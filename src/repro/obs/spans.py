"""Sim-clock span tracing with a per-frame trace convention.

A :class:`Span` is a named interval of simulated time with key/value
attributes and nested children; a :class:`Tracer` hands them out with
deterministic ids and records every span in start order.  There is no
wall clock anywhere — ``start``/``end`` come from ``sim.now``, so the
full trace of a run is a pure function of ``(scenario, seed)`` and two
identical runs export byte-identical artifacts.

:class:`FrameTrace` is the convention that makes one AR frame a single
trace: a root ``frame`` span (whose ``trace_id`` doubles as the Chrome
trace ``tid``, giving each in-flight frame its own track in Perfetto)
with *contiguous* stage children — ``local`` compute, ``uplink``,
``server`` compute, ``downlink``, a zero-length ``render`` marker —
so the children's summed durations telescope exactly to the frame's
end-to-end latency.  :meth:`FrameTrace.breakdown` additionally splits
network stages into serialization / propagation / queueing using the
per-stage link-cost attributes the instrumentation attaches.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.simnet.engine import Simulator

#: Attribute keys the breakdown uses to split a network stage.
SERIALIZATION_ATTR = "serialization_s"
PROPAGATION_ATTR = "propagation_s"


class Span:
    """One named interval of sim time; a node in a frame's span tree."""

    __slots__ = ("name", "cat", "trace_id", "span_id", "parent_id",
                 "start", "end", "attrs", "children")

    def __init__(self, name: str, cat: str, trace_id: int, span_id: int,
                 parent_id: Optional[int], start: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.cat = cat
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.children: List["Span"] = []

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds of sim time covered; 0.0 while unfinished."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(sorted(self.attrs.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration * 1e3:.3f}ms" if self.finished else "open"
        return f"<Span {self.name} t{self.trace_id} {state}>"


class Tracer:
    """Hands out spans stamped with ``sim.now``; records start order.

    The tracer is *opt-in per call site*: instrumented code holds an
    ``Optional[Tracer]`` and guards every hook with ``if tracer is not
    None`` — the disabled path allocates nothing.
    """

    __slots__ = ("sim", "spans", "_next_span_id", "_next_trace_id")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: Every span ever started, in start order (deterministic).
        self.spans: List[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    # ------------------------------------------------------------------
    def new_trace_id(self) -> int:
        tid = self._next_trace_id
        self._next_trace_id += 1
        return tid

    def start_span(self, name: str, cat: str = "frame",
                   parent: Optional[Span] = None,
                   trace_id: Optional[int] = None,
                   attrs_dict: Optional[Dict[str, Any]] = None,
                   **attrs: Any) -> Span:
        """Open a span at ``sim.now``.

        ``attrs_dict`` is the hot-path spelling: the span takes
        ownership of the dict without copying (don't reuse it).  The
        ``**attrs`` form is the convenient one for call sites off the
        per-event path.
        """
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None \
                else self.new_trace_id()
        if attrs_dict is not None:
            if attrs:
                attrs_dict.update(attrs)
        elif attrs:
            attrs_dict = attrs   # fresh **kwargs dict; safe to own
        span = Span(name, cat, trace_id, self._next_span_id,
                    parent.span_id if parent is not None else None,
                    self.sim.now, attrs_dict)
        self._next_span_id += 1
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """End ``span`` at ``sim.now`` (idempotent: first end wins)."""
        if attrs:
            span.attrs.update(attrs)
        if span.end is None:
            span.end = self.sim.now
        return span

    @contextmanager
    def span(self, name: str, cat: str = "frame",
             parent: Optional[Span] = None, **attrs: Any):
        """Context-manager convenience for code that runs inline."""
        s = self.start_span(name, cat, parent, **attrs)
        try:
            yield s
        finally:
            self.finish(s)

    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def frame_roots(self) -> List[Span]:
        """Finished per-frame root spans, in start order."""
        return [s for s in self.spans
                if s.parent_id is None and s.name == "frame" and s.finished]

    def __len__(self) -> int:
        return len(self.spans)


class FrameTrace:
    """One AR frame's trace: a root span with contiguous stage children.

    ``begin(stage)`` ends the current stage (at ``sim.now``) and starts
    the next one at the same instant, so stages tile the frame interval
    without gaps or overlap; ``complete()`` ends the last stage, drops a
    zero-length ``render`` marker, and closes the root.  Because the
    stage boundaries are shared timestamps, the children's durations sum
    *exactly* to the root's duration — the reconciliation the exporter
    tests rely on (and which survives integer-microsecond rounding,
    since rounded boundary differences telescope).
    """

    __slots__ = ("tracer", "root", "current")

    def __init__(self, tracer: Tracer, frame_index: int,
                 trace_id: Optional[int] = None, **attrs: Any) -> None:
        self.tracer = tracer
        self.root = tracer.start_span(
            "frame", cat="frame", trace_id=trace_id, frame=frame_index, **attrs)
        self.current: Optional[Span] = None

    # ------------------------------------------------------------------
    def begin(self, stage: str, cat: str = "frame",
              attrs_dict: Optional[Dict[str, Any]] = None,
              **attrs: Any) -> Span:
        """Close the current stage and open ``stage`` at ``sim.now``.

        ``attrs_dict`` passes attributes without a copy (ownership
        transfers to the span), mirroring
        :meth:`Tracer.start_span`.
        """
        if self.current is not None:
            self.tracer.finish(self.current)
        self.current = self.tracer.start_span(
            stage, cat=cat, parent=self.root, attrs_dict=attrs_dict, **attrs)
        return self.current

    def mark(self, name: str, **attrs: Any) -> Span:
        """A zero-length child marker (e.g. ``render``) at ``sim.now``."""
        span = self.tracer.start_span(name, cat="frame",
                                      parent=self.root, **attrs)
        self.tracer.finish(span)
        return span

    def complete(self, outcome: str = "ok", **attrs: Any) -> Span:
        """End the open stage and the root span at ``sim.now``."""
        if self.current is not None:
            self.tracer.finish(self.current)
            self.current = None
        self.root.set(outcome=outcome, **attrs)
        return self.tracer.finish(self.root)

    @property
    def finished(self) -> bool:
        return self.root.finished

    # ------------------------------------------------------------------
    def breakdown(self) -> Dict[str, Any]:
        """Per-stage durations and the critical-path decomposition."""
        return breakdown(self.root)


def breakdown(root: Span) -> Dict[str, Any]:
    """Decompose a frame root span into stages and critical-path buckets.

    Returns ``{"total", "stages": {name: seconds}, "critical_path":
    {"compute", "serialization", "propagation", "queueing",
    "render"}}``.  A stage carrying the serialization/propagation
    attributes (a network stage) contributes its analytic wire costs to
    those buckets and the remainder — time the bytes spent waiting
    rather than moving — to ``queueing``; every other stage counts as
    compute (``render`` markers are their own bucket).
    """
    stages: Dict[str, float] = {}
    path = {"compute": 0.0, "serialization": 0.0,
            "propagation": 0.0, "queueing": 0.0, "render": 0.0}
    for child in root.children:
        if not child.finished:
            continue
        dur = child.duration
        stages[child.name] = stages.get(child.name, 0.0) + dur
        if SERIALIZATION_ATTR in child.attrs:
            ser = min(dur, float(child.attrs[SERIALIZATION_ATTR]))
            prop = min(dur - ser, float(child.attrs.get(PROPAGATION_ATTR, 0.0)))
            path["serialization"] += ser
            path["propagation"] += prop
            path["queueing"] += max(0.0, dur - ser - prop)
        elif child.name == "render":
            path["render"] += dur
        else:
            path["compute"] += dur
    return {"total": root.duration, "stages": stages,
            "critical_path": path}
