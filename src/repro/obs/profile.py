"""Deterministic engine profiler: per-handler event counts + wall times.

An :class:`EngineProfiler` attaches to a
:class:`~repro.simnet.engine.Simulator` (``sim.profiler = prof``): the
engine's ``_fire`` bumps ``prof.counts[fn]`` for every dispatched
event and — only when a wall clock was injected — attributes the
handler's execution time to ``prof.wall[fn]``.  (The bookkeeping is
inlined in the engine's hot path; this class holds the tallies and
renders them.)  The result is the hotspot table behind ``python -m
repro obs --profile``: which handlers dominate an event budget, the
evidence base for batching homogeneous event storms (ROADMAP item 2).

Determinism boundary
--------------------
The profiler splits its measurements into two strictly segregated
halves:

- **Counts** are sim-domain-deterministic: a pure function of
  ``(scenario, seed)``, exactly as reproducible as ``events_fired``.
  They are what :meth:`EngineProfiler.to_dict` exports, keyed by stable
  ``module.qualname`` handler names.
- **Wall times** exist only when the *caller* injects a clock callable
  (``EngineProfiler(clock=time.perf_counter)``) — this module never
  reads a clock itself, so it passes simlint SIM002 like any other
  sim-domain file, and a profiler built without a clock cannot observe
  host speed at all.  Wall times are excluded from :meth:`to_dict` and
  surface only through :meth:`wall_by_name` / :meth:`hotspots`, which
  harness code (the CLI, benchmarks) renders as telemetry.

To keep a timed profiler cheap enough to leave on (the BENCH_PR10
overhead gate), wall attribution is *sampled*: every ``stride``-th
occurrence of each handler is timed and the accumulated sample is
scaled by ``stride`` at export.  Because the counts are deterministic,
*which* events get timed is deterministic too — only the measured
durations vary run to run.  ``stride=1`` times every dispatch.

Tallies are keyed by the raw handler callables the engine dispatches.
Bound methods compare equal when they share the underlying function
*and* instance, so per-instance rows exist in the raw dicts; the
``*_by_name`` exports merge them under one ``module.qualname`` row —
names are resolved once, at export time, never per event.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EngineProfiler", "handler_name"]


def handler_name(fn: Callable) -> str:
    """Stable display name for a handler function object."""
    module = getattr(fn, "__module__", None) or "?"
    qual = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{qual}"


class EngineProfiler:
    """Opt-in per-event-type counters and handler wall-time attribution.

    Attach with ``sim.profiler = EngineProfiler(...)`` before running.
    One profiler may be attached to several simulators in turn (the
    counts accumulate), but never to two simulators firing concurrently.
    """

    #: default wall-time sampling stride (time 1 in 16 per handler).
    DEFAULT_STRIDE = 16

    __slots__ = ("clock", "stride", "counts", "wall")

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 stride: Optional[int] = None) -> None:
        #: injected wall clock (harness-only); None keeps the profiler
        #: fully deterministic — counts only, no host-speed observable.
        self.clock = clock
        if stride is None:
            stride = self.DEFAULT_STRIDE
        if stride < 1:
            raise ValueError("stride must be >= 1")
        #: wall-time sampling stride: every ``stride``-th occurrence of
        #: a handler is timed; the sample scales back at export.
        self.stride = stride
        #: handler callable -> fired-event count (deterministic)
        self.counts: Dict[Callable, int] = defaultdict(int)
        #: handler callable -> *sampled* wall seconds (telemetry-only,
        #: unscaled — read through :meth:`wall_by_name`).
        self.wall: Dict[Callable, float] = defaultdict(float)

    @property
    def timed(self) -> bool:
        """Whether wall-time attribution is active (a clock was injected)."""
        return self.clock is not None

    @property
    def events(self) -> int:
        """Total events dispatched while attached (deterministic)."""
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Deterministic export (counts only)
    # ------------------------------------------------------------------
    def counts_by_name(self) -> Dict[str, int]:
        """Handler name -> fired count, sorted by name (deterministic)."""
        out: Dict[str, int] = {}
        for key, n in self.counts.items():
            name = handler_name(key)
            out[name] = out.get(name, 0) + n
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """Canonical deterministic export: counts only, never wall times."""
        return {"events": self.events, "handlers": self.counts_by_name()}

    # ------------------------------------------------------------------
    # Telemetry-only export (wall times; empty without a clock)
    # ------------------------------------------------------------------
    def wall_by_name(self) -> Dict[str, float]:
        """Handler name -> estimated wall seconds (telemetry-only).

        The 1-in-``stride`` sample is scaled back up here, so values
        estimate the handler's *total* attributed wall time.
        """
        scale = float(self.stride)
        out: Dict[str, float] = {}
        for key, seconds in self.wall.items():
            name = handler_name(key)
            out[name] = out.get(name, 0.0) + seconds * scale
        return dict(sorted(out.items()))

    def hotspots(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """Top handlers as ``(name, count, wall_seconds)`` rows.

        Sorted by attributed wall time when a clock was injected, by
        count otherwise (wall reads 0.0 then).  Ties break by name so
        the deterministic ordering is stable.
        """
        counts = self.counts_by_name()
        wall = self.wall_by_name()
        rows = [(name, n, wall.get(name, 0.0)) for name, n in counts.items()]
        if self.timed:
            rows.sort(key=lambda r: (-r[2], r[0]))
        else:
            rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[:top]
