"""Typed metrics instruments on a per-``Simulator`` registry.

No process-wide state: a :class:`MetricsRegistry` belongs to one run
(conventionally one per ``Simulator``), so parallel fleet workers never
share instruments and two runs of the same ``(scenario, seed)`` build
identical registries.

Three instrument types, all mergeable:

- :class:`Counter` — monotone integer; merges by addition (exact).
- :class:`Gauge` — a sampled value; keeps the last write for in-run
  inspection and a :class:`~repro.analysis.stats.StreamingMoments`
  accumulator of every write.  Only the moments serialize — "last
  written" is meaningless across merged shards — so merging stays
  order-independent.
- :class:`Histogram` — a fixed-bin
  :class:`~repro.analysis.stats.FixedBinHistogram` (bins merge by
  elementwise addition, exact) plus moments for mean/min/max.

Serialization (:meth:`MetricsRegistry.to_json`) is canonical — sorted
keys, no whitespace — the same discipline as
:meth:`repro.fleet.aggregate.Aggregate.to_json`, and
:func:`repro.fleet.aggregate.aggregate_from_registry` lifts a registry
into a fleet aggregate so campaign shards fold their metrics into the
campaign report byte-identically.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.analysis.stats import FixedBinHistogram, StreamingMoments


class Counter:
    """A monotone integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n
        return self.value

    def to_dict(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A sampled value: last write in-process, moments across merges."""

    __slots__ = ("name", "value", "moments")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.moments = StreamingMoments()

    def set(self, value: float) -> float:
        self.value = float(value)
        self.moments.add(self.value)
        return self.value

    def to_dict(self) -> dict:
        return self.moments.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value:.6g} n={self.moments.count}>"


class Histogram:
    """Fixed-bin distribution plus streaming moments."""

    __slots__ = ("name", "bins", "moments")

    def __init__(self, name: str, lo: float, hi: float, n_bins: int = 100) -> None:
        self.name = name
        self.bins = FixedBinHistogram(lo, hi, n_bins)
        self.moments = StreamingMoments()

    def observe(self, value: float) -> None:
        self.bins.add(value)
        self.moments.add(value)

    def percentile(self, q: float) -> float:
        return self.bins.percentile(q)

    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> float:
        return self.moments.mean

    def to_dict(self) -> dict:
        return {"bins": self.bins.to_dict(), "moments": self.moments.to_dict()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name} n={self.count} "
                f"p50={self.bins.p50:.4g}>")


class MetricsRegistry:
    """Get-or-create home for one run's instruments.

    Names are dotted paths by convention (``link.<name>.bytes_sent``,
    ``queue.<name>.packets``, ``frame.latency``); exports sort by name,
    so insertion order never leaks into artifacts.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instruments (get-or-create) -----------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, lo: float = 0.0, hi: float = 1.0,
                  n_bins: int = 100) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, lo, hi, n_bins)
        return h

    # -- merge ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` in: counters add, gauges/histograms merge.

        Counter and histogram-bin merging is exact integer addition, so
        any merge order yields identical values; gauge/histogram moments
        use the Chan-Golub-LeVeque float merge (order-independent up to
        rounding — compare with
        :func:`repro.fleet.aggregate.approx_equal_moments`).
        """
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            mine = self.gauge(name)
            mine.moments.merge(g.moments)
            mine.value = g.value
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(
                    name, h.bins.lo, h.bins.hi, len(h.bins.bins))
            mine.bins.merge(h.bins)
            mine.moments.merge(h.moments)
        return self

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": {k: c.to_dict()
                         for k, c in sorted(self.counters.items())},
            "gauges": {k: g.to_dict() for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsRegistry":
        reg = cls()
        for name, v in d.get("counters", {}).items():
            reg.counter(name).inc(int(v))
        for name, m in d.get("gauges", {}).items():
            g = reg.gauge(name)
            g.moments = StreamingMoments.from_dict(m)
            g.value = g.moments.maximum if g.moments.count else 0.0
        for name, hv in d.get("histograms", {}).items():
            bins = FixedBinHistogram.from_dict(hv["bins"])
            h = reg.histogram(name, bins.lo, bins.hi, len(bins.bins))
            h.bins = bins
            h.moments = StreamingMoments.from_dict(hv["moments"])
        return reg

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MetricsRegistry) \
            and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MetricsRegistry counters={len(self.counters)} "
                f"gauges={len(self.gauges)} hists={len(self.histograms)}>")


def merge_registries(parts) -> MetricsRegistry:
    """Merge an iterable of (possibly ``None``) registries in order."""
    out = MetricsRegistry()
    for part in parts:
        if part is not None:
            out.merge(part)
    return out
