"""Hooks that wire the tracer and registry into existing subsystems.

Two integration styles, chosen per subsystem by cost:

- **Frame pipeline** (hot, per-event): :class:`FrameObserver` plugs
  into the ``obs`` attachment points of
  :class:`~repro.mar.offload.OffloadExecutor` — every hook site is
  guarded by ``if self.obs is not None``, so the disabled path costs
  one attribute test and allocates nothing.
- **Link / queue / MARTP counters** (cold, end-of-run): the
  ``collect_*`` helpers snapshot already-maintained counters into a
  :class:`~repro.obs.registry.MetricsRegistry` after the run, adding
  zero hot-path work.

:func:`path_costs` computes the analytic wire cost of moving a payload
across the routed path — serialization (bits over each link's rate,
with per-fragment UDP/IP header overhead) and propagation (summed link
delays).  The frame observer stamps these on uplink/downlink stage
spans; whatever measured stage time they don't explain is queueing —
the bufferbloat the paper's Section IV worries about, read straight
off a trace.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.mar.offload import FRAGMENT_BYTES, OffloadExecutor
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    PROPAGATION_ATTR,
    SERIALIZATION_ATTR,
    FrameTrace,
    Tracer,
    breakdown,
)
from repro.simnet.network import Network
from repro.simnet.packet import IP_UDP_HEADER

#: Histogram ranges (fixed, so registries always merge-compatible).
LATENCY_HI = 2.0
LATENCY_BINS = 200


def path_costs(net: Network, src: str, dst: str, nbytes: int,
               fragment_bytes: int = FRAGMENT_BYTES,
               header_bytes: int = IP_UDP_HEADER) -> Tuple[float, float]:
    """Analytic (serialization, propagation) seconds for one payload.

    Mirrors the executor's fragmentation (``fragment_bytes`` chunks, a
    1-byte tail for empty remainders, ``header_bytes`` per fragment)
    and charges serialization on every link of the current route —
    exact for the single-hop access paths of the Table II scenarios, an
    upper bound when a multi-hop path pipelines fragments.
    """
    n_fragments = max(1, -(-nbytes // fragment_bytes))
    wire_bytes = max(nbytes, n_fragments) + n_fragments * header_bytes
    serialization = 0.0
    propagation = 0.0
    for link in net.path_links(src, dst):
        serialization += wire_bytes * 8 / link.rate_bps
        propagation += link.delay
    return serialization, propagation


class FrameObserver:
    """Threads one trace id through the offload frame pipeline.

    Attach with :func:`attach_frame_observer`; the executor (and its
    server side) then report stage boundaries as they happen:

    ``frame start`` → ``local`` compute → ``uplink`` (send → last
    fragment reassembled) → ``server`` compute → ``downlink`` (respond
    → last result fragment) → ``render`` marker → frame end.

    Stage spans are contiguous, so their durations sum exactly to the
    frame's end-to-end latency; network stages carry analytic
    serialization/propagation attributes for the critical-path split.
    """

    __slots__ = ("tracer", "net", "client", "server", "app", "traces",
                 "_path_cache", "_server_attr_cache")

    def __init__(self, tracer: Tracer, net: Network, client: str,
                 server: str, app=None) -> None:
        self.tracer = tracer
        self.net = net
        self.client = client
        self.server = server
        self.app = app
        #: Frame index → its (possibly still open) trace.
        self.traces: Dict[int, FrameTrace] = {}
        # Per-frame hooks must stay a few µs: payload sizes and compute
        # budgets repeat every frame, so the analytic wire costs (a
        # shortest-path walk) and the vision stage split are memoized.
        # Both assume a static topology; call invalidate_cache() after
        # a reroute.
        self._path_cache: Dict[Tuple[str, str, int], Tuple[float, float]] = {}
        self._server_attr_cache: Dict[float, dict] = {}

    def invalidate_cache(self) -> None:
        """Drop memoized path costs (after a topology/route change)."""
        self._path_cache.clear()

    def _path_costs(self, src: str, dst: str, nbytes: int) -> Tuple[float, float]:
        key = (src, dst, nbytes)
        costs = self._path_cache.get(key)
        if costs is None:
            costs = self._path_cache[key] = path_costs(
                self.net, src, dst, nbytes)
        return costs

    # -- client-side hooks ---------------------------------------------
    def on_frame_start(self, index: int, plan) -> None:
        trace = FrameTrace(self.tracer, index)
        self.traces[index] = trace
        trace.begin("local", megacycles=plan.local_megacycles)

    def on_upload_start(self, index: int, plan) -> None:
        trace = self.traces.get(index)
        if trace is None:
            return
        ser, prop = self._path_costs(self.client, self.server,
                                     plan.upload_bytes)
        trace.begin("uplink", attrs_dict={
            "bytes": plan.upload_bytes,
            SERIALIZATION_ATTR: ser,
            PROPAGATION_ATTR: prop,
        })

    def on_frame_complete(self, index: int, outcome: str = "offloaded") -> None:
        trace = self.traces.pop(index, None)
        if trace is None:
            return
        trace.mark("render")
        trace.complete(outcome=outcome)

    def on_frame_expired(self, index: int) -> None:
        trace = self.traces.pop(index, None)
        if trace is None:
            return
        trace.complete(outcome="expired")

    # -- server-side hooks ---------------------------------------------
    def on_upload_complete(self, index: int, remote_megacycles: float) -> None:
        trace = self.traces.get(index)
        if trace is None:
            return
        attrs = self._server_attr_cache.get(remote_megacycles)
        if attrs is None:
            attrs = {"megacycles": remote_megacycles}
            if self.app is not None:
                from repro.vision.pipeline import estimate_stage_costs

                w, h = self.app.resolution
                costs = estimate_stage_costs(w * h).scaled_to(remote_megacycles)
                for stage, mc in costs.as_dict().items():
                    if mc > 0.0:
                        attrs[f"mc_{stage}"] = round(mc, 6)
            self._server_attr_cache[remote_megacycles] = attrs
        trace.begin("server", attrs_dict=dict(attrs))

    def on_download_start(self, index: int, download_bytes: int) -> None:
        trace = self.traces.get(index)
        if trace is None:
            return
        ser, prop = self._path_costs(self.server, self.client,
                                     download_bytes)
        trace.begin("downlink", attrs_dict={
            "bytes": download_bytes,
            SERIALIZATION_ATTR: ser,
            PROPAGATION_ATTR: prop,
        })

    # ------------------------------------------------------------------
    def breakdowns(self):
        """Breakdown dicts of every completed frame, in frame order."""
        return [breakdown(root) for root in self.tracer.frame_roots()]


def attach_frame_observer(executor: OffloadExecutor, tracer: Tracer,
                          app=None) -> FrameObserver:
    """Create a :class:`FrameObserver` and plug it into ``executor``.

    Sets the executor's and its primary server side's ``obs`` hook
    attribute (both default to ``None`` — tracing off).  Returns the
    observer so callers can query ``observer.breakdowns()`` afterwards.
    """
    observer = FrameObserver(
        tracer, executor.net, executor.socket.host.name,
        executor.server_name, app if app is not None else executor.app)
    executor.obs = observer
    executor.server.obs = observer
    return observer


# ----------------------------------------------------------------------
# Cold-path collectors: snapshot existing counters into a registry
# ----------------------------------------------------------------------
def collect_links(registry: MetricsRegistry, net: Network,
                  elapsed: Optional[float] = None) -> None:
    """Snapshot every link's counters (``link.<name>.*``)."""
    for link in net.links:
        prefix = f"link.{link.name}"
        registry.counter(f"{prefix}.bytes_sent").inc(link.bytes_sent)
        registry.counter(f"{prefix}.bytes_delivered").inc(link.bytes_delivered)
        registry.counter(f"{prefix}.bytes_lost").inc(link.bytes_lost)
        registry.counter(f"{prefix}.packets_delivered").inc(link.packets_delivered)
        registry.counter(f"{prefix}.packets_lost").inc(link.packets_lost)
        registry.counter(f"{prefix}.queue_drops").inc(link.queue_drops)
        if elapsed is not None and elapsed > 0:
            registry.gauge(f"{prefix}.utilization").set(link.utilization(elapsed))


def collect_martp(registry: MetricsRegistry, sender, receiver,
                  prefix: str = "martp") -> None:
    """Snapshot a MARTP sender/receiver pair (``martp.*``).

    Reads only public protocol state — per-stream send/shed counters,
    receiver delivery/in-time counters and latency samples, the
    sender's combined budget and congestion-event count — after the
    run; the protocol hot path is untouched.
    """
    registry.gauge(f"{prefix}.budget_bps").set(sender.budget_bps)
    registry.counter(f"{prefix}.congestion_events").inc(
        sender.congestion_events)
    for stream_id in sorted(sender._tx):
        tx = sender.stream_stats(stream_id)
        sprefix = f"{prefix}.stream.{tx.spec.name}"
        registry.counter(f"{sprefix}.sent").inc(tx.sent)
        registry.counter(f"{sprefix}.shed").inc(tx.dropped)
        registry.counter(f"{sprefix}.bytes_sent").inc(tx.bytes_sent)
    for stream_id in sorted(receiver._rx):
        rx = receiver.stream_stats(stream_id)
        sprefix = f"{prefix}.stream.{rx.spec.name}"
        registry.counter(f"{sprefix}.received").inc(rx.received)
        registry.counter(f"{sprefix}.in_time").inc(rx.in_time)
        registry.counter(f"{sprefix}.recovered").inc(rx.recovered)
        hist = registry.histogram(f"{sprefix}.latency", 0.0,
                                  LATENCY_HI, LATENCY_BINS)
        for latency in rx.latencies:
            hist.observe(latency)
