"""Observed scenarios behind ``python -m repro obs``.

Each runner builds a fresh :class:`~repro.simnet.engine.Simulator` from
its seed, attaches the observability layer (tracer + registry + the
relevant collectors), runs the scenario, and returns an :class:`ObsRun`
bundle the CLI turns into artifacts.  Runners are sim-domain: no wall
clock, no global RNG — an :class:`ObsRun` is a pure function of
``(scenario, seed, frames)``.

- ``cell_offload`` — one cell MAR user running the CloudRidAR
  feature-offload loop over the cloud-WiFi access profile (36 ms RTT,
  40 Mb/s up).  The flagship trace: every frame yields a span tree
  with local/uplink/server/downlink/render stages whose durations sum
  exactly to the frame's end-to-end latency.
- ``martp_session`` — a full MARTP streaming session (sender, receiver,
  congestion control, degradation); exercises the qlog unification and
  the protocol/link metrics collectors rather than frame spans.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.qlog import EventLog, instrument_sender
from repro.obs.instrument import (
    LATENCY_BINS,
    LATENCY_HI,
    attach_frame_observer,
    collect_links,
    collect_martp,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer


class ObsRun:
    """Everything one observed scenario run produced."""

    __slots__ = ("scenario", "seed", "tracer", "registry", "event_log",
                 "breakdowns", "summary", "profiler")

    def __init__(self, scenario: str, seed: int, tracer: Tracer,
                 registry: MetricsRegistry, event_log, breakdowns: List[dict],
                 summary: Dict[str, float], profiler=None) -> None:
        self.scenario = scenario
        self.seed = seed
        self.tracer = tracer
        self.registry = registry
        self.event_log = event_log
        self.breakdowns = breakdowns
        self.summary = summary
        #: the :class:`~repro.obs.profile.EngineProfiler` that dispatched
        #: this run's events, when one was requested (``--profile``).
        self.profiler = profiler


def _run_cell_offload(seed: int, frames: int, profiler=None) -> ObsRun:
    """One MAR cell user: feature offload over cloud WiFi, fully traced."""
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.devices import CLOUD, SMARTPHONE
    from repro.mar.offload import FeatureOffload, OffloadExecutor
    from repro.simnet.engine import Simulator
    from repro.simnet.monitor import LinkMonitor, QueueMonitor
    from repro.simnet.network import Network

    app = APP_ARCHETYPES["orientation"]
    duration = frames * app.frame_budget + 2.0

    sim = Simulator(seed=seed)
    sim.profiler = profiler
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    duplex = net.add_duplex("server", "client", 80e6, 40e6, delay=0.018)
    net.build_routes()
    executor = OffloadExecutor(net, "client", "server", app,
                               FeatureOffload(), SMARTPHONE,
                               server_device=CLOUD)

    tracer = Tracer(sim)
    registry = MetricsRegistry()
    observer = attach_frame_observer(executor, tracer)
    # duplex.up carries client→server traffic: the MAR uplink.
    QueueMonitor(sim, duplex.up.queue, interval=0.02,
                 horizon=duration, registry=registry, name="uplink")
    LinkMonitor(sim, duplex.up, interval=0.1,
                horizon=duration, registry=registry)

    result = executor.run(n_frames=frames)

    collect_links(registry, net, elapsed=sim.now)
    registry.counter("frame.sent").inc(result.frames_sent)
    registry.counter("frame.completed").inc(result.frames_completed)
    latency_hist = registry.histogram("frame.latency", 0.0,
                                      LATENCY_HI, LATENCY_BINS)
    for latency in result.frame_latencies:
        latency_hist.observe(latency)
    for rtt in result.link_rtts:
        registry.histogram("link.rtt", 0.0, 0.5, 100).observe(rtt)

    summary = {
        "frames": float(result.frames_completed),
        "mean_latency": result.mean_latency,
        "p95_latency": result.percentile(95.0),
        "deadline_hit_rate": result.deadline_hit_rate,
        "mean_link_rtt": result.mean_link_rtt,
    }
    return ObsRun("cell_offload", seed, tracer, registry, None,
                  observer.breakdowns(), summary, profiler=profiler)


def _run_martp_session(seed: int, frames: int, profiler=None) -> ObsRun:
    """A MARTP streaming session: qlog + protocol/link metrics."""
    from repro.core import OffloadSession, ScenarioBuilder, mos_score

    duration = max(0.5, frames / 30.0)
    scenario = ScenarioBuilder(seed=seed).single_path(rtt=0.036, up_bps=12e6)
    session = OffloadSession(scenario)
    sim = scenario.net.sim
    sim.profiler = profiler
    tracer = Tracer(sim)
    registry = MetricsRegistry()
    event_log = instrument_sender(session.sender, EventLog())

    report = session.run(duration)

    collect_martp(registry, session.sender, session.receiver)
    collect_links(registry, scenario.net, elapsed=sim.now)
    summary = {
        "mos": mos_score(report),
        "video_quality": report.mean_video_quality,
        "critical_intact": float(report.critical_intact),
        "qlog_events": float(len(event_log)),
    }
    return ObsRun("martp_session", seed, tracer, registry, event_log,
                  [], summary, profiler=profiler)


#: Scenario name → runner(seed, frames, profiler=None).
OBS_SCENARIOS: Dict[str, Callable[..., ObsRun]] = {
    "cell_offload": _run_cell_offload,
    "martp_session": _run_martp_session,
}


def run_obs_scenario(name: str, seed: int = 11, frames: int = 60,
                     profiler=None) -> ObsRun:
    """Run one observed scenario; deterministic in ``(name, seed, frames)``.

    ``profiler`` (optional :class:`~repro.obs.profile.EngineProfiler`)
    attaches to the scenario's simulator before it runs: its handler
    counts are as deterministic as the run itself, and wall times exist
    only if the caller injected a clock into the profiler.
    """
    runner = OBS_SCENARIOS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown obs scenario {name!r}; try: {', '.join(OBS_SCENARIOS)}")
    return runner(seed, frames, profiler=profiler)
