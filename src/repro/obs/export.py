"""Exporters: Chrome trace events, qlog JSON lines, report snapshots.

Three consumers, three formats, one deterministic source of truth:

- :func:`chrome_trace_json` — the Chrome trace-event format (JSON
  object with a ``traceEvents`` array of ``"ph": "X"`` complete
  events), loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Each frame's ``trace_id`` becomes the ``tid``,
  so concurrently in-flight frames render as separate named tracks.
- :func:`qlog_lines` — JSON lines in the :mod:`repro.core.qlog` event
  schema (``time``/``category``/``name``/``data``, sorted keys), so
  span completions, MARTP protocol events and a metrics snapshot
  interleave into one chronological stream.
- :func:`snapshot` — a plain dict for :mod:`repro.analysis.report`.

Timestamps in the Chrome export are integer microseconds.  Durations
are differences of *rounded endpoints*, not rounded differences: for
the contiguous stage children of a :class:`~repro.obs.spans.FrameTrace`
the rounding then telescopes, and child durations sum exactly to the
root's — the ±1 µs reconciliation guarantee.

All serialization is canonical (sorted keys, fixed separators): same
``(scenario, seed)`` → byte-identical artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer

_CANON = {"sort_keys": True, "separators": (",", ":")}


def _us(t: float) -> int:
    """Sim seconds → integer microseconds (the Chrome trace unit)."""
    return int(round(t * 1e6))


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def chrome_trace_events(tracer: Tracer, pid: int = 1,
                        process_name: str = "repro") -> List[dict]:
    """Build the ``traceEvents`` list (metadata + complete events)."""
    events: List[dict] = [{
        "args": {"name": process_name}, "cat": "__metadata",
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
    }]
    named_tids = set()
    for span in tracer.spans:
        if span.parent_id is None and span.trace_id not in named_tids:
            named_tids.add(span.trace_id)
            label = f"frame {span.attrs['frame']}" if "frame" in span.attrs \
                else f"trace {span.trace_id}"
            events.append({
                "args": {"name": label}, "cat": "__metadata",
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": span.trace_id, "ts": 0,
            })
    for span in tracer.spans:
        if not span.finished:
            continue
        args: Dict[str, Any] = dict(sorted(span.attrs.items()))
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "args": args, "cat": span.cat, "dur": _us(span.end) - _us(span.start),
            "name": span.name, "ph": "X", "pid": pid, "tid": span.trace_id,
            "ts": _us(span.start),
        })
    return events


def chrome_trace_json(tracer: Tracer, pid: int = 1,
                      process_name: str = "repro") -> str:
    """Canonical Chrome-trace JSON (Perfetto-loadable), byte-stable."""
    doc = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer, pid, process_name),
    }
    return json.dumps(doc, **_CANON)


def validate_chrome_trace(doc: Any) -> List[str]:
    """Minimal schema check; returns a list of problems (empty = valid).

    Checks the invariants Perfetto's importer actually depends on:
    a ``traceEvents`` array of objects, every event carrying string
    ``name``/``ph`` and integer ``pid``/``tid``/``ts``, and every
    complete (``"X"``) event a non-negative integer ``dur``.
    """
    problems: List[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key, kind in (("name", str), ("ph", str)):
            if not isinstance(ev.get(key), kind):
                problems.append(f"event {i}: missing/invalid {key!r}")
        for key in ("pid", "tid", "ts"):
            if not isinstance(ev.get(key), int):
                problems.append(f"event {i}: missing/invalid {key!r}")
        if ev.get("ph") == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"event {i}: 'X' event needs integer dur >= 0")
            if isinstance(ev.get("ts"), int) and ev["ts"] < 0:
                problems.append(f"event {i}: negative ts")
    return problems


def reconcile_frame_spans(tracer: Tracer, tolerance_us: int = 1) -> List[str]:
    """Check the stage-sum-equals-frame invariant; returns problems.

    For every finished frame root, the exported (integer-µs) durations
    of its stage children must sum to the root's duration within
    ``tolerance_us``.  Because :class:`~repro.obs.spans.FrameTrace`
    makes stages contiguous and :func:`chrome_trace_events` rounds
    endpoints (not differences), the telescoping sum is normally exact
    — a failure here means an instrumentation hook opened a gap or
    overlap in the frame timeline.
    """
    problems: List[str] = []
    roots = tracer.frame_roots()
    if not roots:
        return ["no completed frame traces"]
    for root in roots:
        root_dur = _us(root.end) - _us(root.start)
        child_sum = sum(_us(c.end) - _us(c.start)
                        for c in root.children if c.finished)
        if any(not c.finished for c in root.children):
            problems.append(
                f"frame {root.attrs.get('frame')}: unfinished child span")
            continue
        if abs(child_sum - root_dur) > tolerance_us:
            problems.append(
                f"frame {root.attrs.get('frame')}: stage sum {child_sum} µs "
                f"!= frame {root_dur} µs (±{tolerance_us} µs)")
    return problems


# ----------------------------------------------------------------------
# qlog-style JSON lines
# ----------------------------------------------------------------------
def qlog_lines(tracer: Optional[Tracer] = None, log=None,
               registry: Optional[MetricsRegistry] = None) -> str:
    """One chronological qlog-schema stream from all three sources.

    Span completions become ``category="frame"`` records at their end
    time, a :class:`~repro.core.qlog.EventLog`'s protocol events keep
    their categories, and a registry contributes one final
    ``category="metric"`` snapshot record.  Records sort stably by
    time, so the merged stream is deterministic.
    """
    records: List[dict] = []
    if tracer is not None:
        for span in tracer.spans:
            if not span.finished:
                continue
            data = dict(sorted(span.attrs.items()))
            data.update(trace_id=span.trace_id, span_id=span.span_id,
                        start=span.start, duration=span.duration)
            if span.parent_id is not None:
                data["parent_id"] = span.parent_id
            records.append({"time": span.end, "category": "frame",
                            "name": span.name, "data": data})
    last_time = max((r["time"] for r in records), default=0.0)
    if log is not None:
        for event in log.events:
            records.append({"time": event.time, "category": event.category,
                            "name": event.name, "data": event.data})
            last_time = max(last_time, event.time)
        summary = log.summary()
        records.append({"time": last_time, "category": "meta",
                        "name": "log-summary", "data": summary})
    if registry is not None:
        records.append({"time": last_time, "category": "metric",
                        "name": "registry-snapshot",
                        "data": registry.to_dict()})
    records.sort(key=lambda r: r["time"])
    return "\n".join(json.dumps(r, sort_keys=True) for r in records)


# ----------------------------------------------------------------------
# Plain-dict snapshot for analysis/report
# ----------------------------------------------------------------------
def snapshot(registry: Optional[MetricsRegistry] = None,
             tracer: Optional[Tracer] = None) -> dict:
    """A report-friendly dict: headline stats, no raw bins or spans."""
    out: Dict[str, Any] = {}
    if registry is not None:
        out["counters"] = {k: c.value
                           for k, c in sorted(registry.counters.items())}
        out["gauges"] = {
            k: {"last": g.value, "mean": g.moments.mean,
                "count": g.moments.count}
            for k, g in sorted(registry.gauges.items())
        }
        out["histograms"] = {
            k: {"count": h.count, "mean": h.mean, "p50": h.bins.p50,
                "p95": h.bins.p95, "p99": h.bins.p99}
            for k, h in sorted(registry.histograms.items())
        }
    if tracer is not None:
        roots = tracer.frame_roots()
        out["frames"] = {
            "traced": len(roots),
            "spans": len(tracer.spans),
            "unfinished": sum(1 for s in tracer.spans if not s.finished),
        }
    return out
