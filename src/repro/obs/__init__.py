"""Unified observability: span tracing, metrics, standard exporters.

The paper's argument is a latency *decomposition* — where do the
milliseconds of a MAR frame go (capture, uplink, server CV, downlink,
render)?  ``repro.obs`` makes that decomposition a first-class,
deterministic artifact instead of five ad-hoc mechanisms:

- :mod:`repro.obs.spans` — a sim-clock-driven :class:`Tracer` with
  nested :class:`Span` objects and the :class:`FrameTrace` convention
  (one trace id per AR frame, threaded client → network → server →
  back), queryable as ``trace.breakdown()``.
- :mod:`repro.obs.registry` — typed Counter/Gauge/Histogram instruments
  in a per-``Simulator`` :class:`MetricsRegistry` whose histograms and
  gauges reuse the mergeable :mod:`repro.analysis.stats` primitives, so
  fleet shards can merge registries byte-identically.
- :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``), qlog-style JSON lines unified with
  :mod:`repro.core.qlog` categories, and plain-dict snapshots for
  :mod:`repro.analysis.report`.
- :mod:`repro.obs.instrument` — hooks that attach the tracer to the
  offload frame pipeline and collect link/queue/MARTP counters into a
  registry without touching any hot path when disabled.
- :mod:`repro.obs.runner` — ready-made observed scenarios behind
  ``python -m repro obs``.

Everything draws time from ``sim.now`` — traces and metrics are a pure
function of ``(scenario, seed)`` and pass simlint like any other
sim-domain code.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    qlog_lines,
    reconcile_frame_spans,
    snapshot,
    validate_chrome_trace,
)
from repro.obs.instrument import (
    FrameObserver,
    attach_frame_observer,
    collect_links,
    collect_martp,
    path_costs,
)
from repro.obs.profile import EngineProfiler, handler_name
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runner import OBS_SCENARIOS, ObsRun, run_obs_scenario
from repro.obs.spans import FrameTrace, Span, Tracer

__all__ = [
    "Counter",
    "EngineProfiler",
    "FrameObserver",
    "FrameTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_SCENARIOS",
    "ObsRun",
    "Span",
    "Tracer",
    "attach_frame_observer",
    "chrome_trace_events",
    "chrome_trace_json",
    "collect_links",
    "collect_martp",
    "handler_name",
    "path_costs",
    "qlog_lines",
    "run_obs_scenario",
    "snapshot",
    "reconcile_frame_spans",
    "validate_chrome_trace",
]
