"""Inter-server synchronization for distributed offloading (§VI-E).

"The question of inter-server synchronization remains with the need for
n-way synchronization (n being the number of servers)."  This module
models that cost over simnet: a :class:`SyncGroup` of server hosts
replicates every state update to all peers and reports

- **consistency lag**: how long until *all* replicas hold an update;
- **sync traffic**: the n·(n−1) overhead bytes per update;

which the E7-style analysis uses to weigh "more, closer servers" (lower
user RTT) against "more sync" (higher replication cost and staleness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.transport.udp import UdpSocket

SYNC_PORT = 7700


@dataclass
class UpdateRecord:
    """Replication state of one update."""

    update_id: int
    origin: str
    size: int
    issued_at: float
    acked_by: set = field(default_factory=set)
    completed_at: Optional[float] = None

    def lag(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


class SyncGroup:
    """Full-mesh state replication among server hosts."""

    def __init__(self, net: Network, servers: List[str], update_bytes: int = 600) -> None:
        if len(servers) < 2:
            raise ValueError("a sync group needs at least two servers")
        self.net = net
        self.sim = net.sim
        self.servers = list(servers)
        self.update_bytes = update_bytes
        self._sockets: Dict[str, UdpSocket] = {
            name: UdpSocket(net[name], SYNC_PORT,
                            on_receive=self._make_receiver(name))
            for name in servers
        }
        self._next_id = 0
        self.updates: Dict[int, UpdateRecord] = {}
        self.sync_bytes_sent = 0

    # ------------------------------------------------------------------
    def publish(self, origin: str, size: Optional[int] = None) -> int:
        """Originate an update at ``origin``; replicate to all peers."""
        if origin not in self._sockets:
            raise KeyError(f"{origin} is not in the sync group")
        update_id = self._next_id
        self._next_id += 1
        size = size if size is not None else self.update_bytes
        record = UpdateRecord(update_id=update_id, origin=origin, size=size,
                              issued_at=self.sim.now)
        record.acked_by.add(origin)
        self.updates[update_id] = record
        socket = self._sockets[origin]
        for peer in self.servers:
            if peer == origin:
                continue
            socket.sendto(peer, SYNC_PORT, size, kind="sync-update",
                          update=update_id, origin=origin)
            self.sync_bytes_sent += size
        if len(self.servers) == 1:
            record.completed_at = self.sim.now
        return update_id

    def _make_receiver(self, name: str):
        def _on_packet(packet: Packet) -> None:
            if packet.kind != "sync-update":
                return
            record = self.updates.get(packet.payload["update"])
            if record is None:
                return
            record.acked_by.add(name)
            if len(record.acked_by) == len(self.servers) and record.completed_at is None:
                record.completed_at = self.sim.now
        return _on_packet

    # ------------------------------------------------------------------
    def consistency_lags(self) -> List[float]:
        return [r.lag() for r in self.updates.values() if r.lag() is not None]

    def mean_lag(self) -> float:
        lags = self.consistency_lags()
        return sum(lags) / len(lags) if lags else float("inf")

    def incomplete(self) -> int:
        return sum(1 for r in self.updates.values() if r.completed_at is None)

    def overhead_bytes_per_update(self) -> float:
        if not self.updates:
            return 0.0
        return self.sync_bytes_sent / len(self.updates)
