"""City topologies for edge placement.

A :class:`CityTopology` holds mobile users and candidate datacenter
sites on a plane, and derives the user↔site network latency from
geometry plus an aggregation-network model: every millisecond of
one-way latency corresponds to metro fibre distance, middle-mile hops
and peering, calibrated so a same-campus server is a few ms away and a
regional cloud tens of ms — the regime of Table II.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class UserSite:
    """One mobile user (or user cluster) with an application deadline.

    ``latency_budget`` is the maximum one-way network latency this
    user's application tolerates (derived from δa minus compute/transfer
    time; see :func:`repro.mar.compute.max_latency_for_deadline`).
    ``demand`` is the compute demand in arbitrary capacity units.
    """

    name: str
    x: float
    y: float
    latency_budget: float
    demand: float = 1.0


@dataclass(frozen=True)
class CandidateSite:
    """A potential edge-datacenter location."""

    name: str
    x: float
    y: float
    capacity: float = math.inf
    open_cost: float = 1.0


class CityTopology:
    """Users and candidate sites over a metro area."""

    #: One-way latency per km of metro distance (fibre + switching).
    LATENCY_PER_KM = 0.0003      # 300 µs/km effective (fibre detours + hops)

    #: Fixed access latency (radio + first aggregation hop), one-way.
    ACCESS_LATENCY = 0.002

    def __init__(self, users: List[UserSite], sites: List[CandidateSite]) -> None:
        if not users or not sites:
            raise ValueError("need at least one user and one site")
        self.users = users
        self.sites = sites

    # ------------------------------------------------------------------
    @classmethod
    def random_city(
        cls,
        n_users: int = 120,
        n_sites: int = 24,
        width_km: float = 30.0,
        latency_budget: float = 0.006,
        budget_jitter: float = 0.25,
        site_capacity: float = math.inf,
        seed: int = 0,
    ) -> "CityTopology":
        """Uniform users, grid-ish candidate sites, per-user budgets."""
        rng = random.Random(seed)
        users = [
            UserSite(
                name=f"u{i}",
                x=rng.uniform(0, width_km),
                y=rng.uniform(0, width_km),
                latency_budget=latency_budget * (1 + rng.uniform(-budget_jitter, budget_jitter)),
            )
            for i in range(n_users)
        ]
        side = max(1, int(round(math.sqrt(n_sites))))
        sites = []
        idx = 0
        for i in range(side):
            for j in range(side):
                if idx >= n_sites:
                    break
                jitter_x = rng.uniform(-0.1, 0.1) * width_km / side
                jitter_y = rng.uniform(-0.1, 0.1) * width_km / side
                sites.append(
                    CandidateSite(
                        name=f"dc{idx}",
                        x=(i + 0.5) * width_km / side + jitter_x,
                        y=(j + 0.5) * width_km / side + jitter_y,
                        capacity=site_capacity,
                    )
                )
                idx += 1
        return cls(users, sites)

    # ------------------------------------------------------------------
    def latency(self, user: UserSite, site: CandidateSite) -> float:
        """One-way network latency between a user and a site."""
        dist_km = math.hypot(user.x - site.x, user.y - site.y)
        return self.ACCESS_LATENCY + dist_km * self.LATENCY_PER_KM

    def latency_matrix(self) -> np.ndarray:
        """(n_users, n_sites) one-way latencies."""
        return np.array(
            [[self.latency(u, s) for s in self.sites] for u in self.users]
        )

    def coverage_sets(self) -> List[set]:
        """For each site index, the set of user indices it can serve."""
        matrix = self.latency_matrix()
        return [
            {ui for ui in range(len(self.users))
             if matrix[ui, si] <= self.users[ui].latency_budget}
            for si in range(len(self.sites))
        ]

    def feasible(self) -> bool:
        """Can every user be covered by at least one site?"""
        covered = set()
        for s in self.coverage_sets():
            covered |= s
        return len(covered) == len(self.users)
