"""User → datacenter assignment under capacity limits.

Once sites are opened, each user attaches to the lowest-latency opened
site that (a) meets the user's latency budget and (b) still has
capacity — the "nearest server for a given path" rule of Section VI-E.
Users are processed tightest-budget-first so capacity contention never
starves the most constrained users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.edge.topology import CityTopology


@dataclass
class AssignmentResult:
    """user index → site index (or None when unassignable)."""

    mapping: Dict[int, Optional[int]]
    latencies: Dict[int, float]
    load: Dict[int, float]

    @property
    def unassigned(self) -> List[int]:
        return [u for u, s in self.mapping.items() if s is None]

    @property
    def all_assigned(self) -> bool:
        return not self.unassigned

    def mean_latency(self) -> float:
        vals = [l for u, l in self.latencies.items() if self.mapping[u] is not None]
        return sum(vals) / len(vals) if vals else float("inf")

    def max_load_fraction(self, topology: CityTopology) -> float:
        fractions = []
        for si, load in self.load.items():
            cap = topology.sites[si].capacity
            if cap not in (0, float("inf")):
                fractions.append(load / cap)
        return max(fractions) if fractions else 0.0


def assign_users(topology: CityTopology, opened: Set[int]) -> AssignmentResult:
    """Assign every user to an opened site within budget and capacity."""
    matrix = topology.latency_matrix()
    remaining = {si: topology.sites[si].capacity for si in opened}
    mapping: Dict[int, Optional[int]] = {}
    latencies: Dict[int, float] = {}
    load: Dict[int, float] = {si: 0.0 for si in opened}

    order = sorted(
        range(len(topology.users)), key=lambda ui: topology.users[ui].latency_budget
    )
    for ui in order:
        user = topology.users[ui]
        candidates = [
            si
            for si in opened
            if matrix[ui, si] <= user.latency_budget and remaining[si] >= user.demand
        ]
        if not candidates:
            mapping[ui] = None
            latencies[ui] = float("inf")
            continue
        best = min(candidates, key=lambda si: matrix[ui, si])
        mapping[ui] = best
        latencies[ui] = float(matrix[ui, best])
        remaining[best] -= user.demand
        load[best] += user.demand
    return AssignmentResult(mapping=mapping, latencies=latencies, load=load)
