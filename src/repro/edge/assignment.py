"""User → datacenter assignment under capacity limits.

Once sites are opened, each user attaches to the lowest-latency opened
site that (a) meets the user's latency budget and (b) still has
capacity — the "nearest server for a given path" rule of Section VI-E.
Users are processed tightest-budget-first so capacity contention never
starves the most constrained users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.edge.topology import CityTopology

#: Backhaul RTT tiers (seconds) of the metro aggregation ladder: a cell
#: is homed on an on-site edge rack, a metro PoP, or the regional
#: datacenter — the Section VI-E placement ladder as fixed price points.
EDGE_BACKHAUL_TIERS = (0.002, 0.008, 0.020)

#: Which tier serves cell ``i``: a repeating stripe giving 25% on-site,
#: 50% metro, 25% regional — deterministic in the cell index so the
#: hybrid-fidelity layer (repro.scale) stays a pure function of the
#: scenario.
_TIER_STRIPE = (0, 1, 1, 2)


def serving_edge_rtt(cell_id: int,
                     tiers: "tuple" = EDGE_BACKHAUL_TIERS) -> float:
    """Backhaul RTT from cell ``cell_id`` to its serving edge site.

    The promotion entry point used when a background user becomes an
    event-level session: its total path RTT is the cell's (loaded)
    access RTT plus this deterministic backhaul component.
    """
    if cell_id < 0:
        raise ValueError("cell_id must be >= 0")
    return tiers[_TIER_STRIPE[cell_id % len(_TIER_STRIPE)]]


@dataclass
class AssignmentResult:
    """user index → site index (or None when unassignable)."""

    mapping: Dict[int, Optional[int]]
    latencies: Dict[int, float]
    load: Dict[int, float]

    @property
    def unassigned(self) -> List[int]:
        return [u for u, s in self.mapping.items() if s is None]

    @property
    def all_assigned(self) -> bool:
        return not self.unassigned

    def mean_latency(self) -> float:
        vals = [l for u, l in self.latencies.items() if self.mapping[u] is not None]
        return sum(vals) / len(vals) if vals else float("inf")

    def max_load_fraction(self, topology: CityTopology) -> float:
        fractions = []
        for si, load in self.load.items():
            cap = topology.sites[si].capacity
            if cap not in (0, float("inf")):
                fractions.append(load / cap)
        return max(fractions) if fractions else 0.0


def assign_users(topology: CityTopology, opened: Set[int]) -> AssignmentResult:
    """Assign every user to an opened site within budget and capacity."""
    matrix = topology.latency_matrix()
    remaining = {si: topology.sites[si].capacity for si in opened}
    mapping: Dict[int, Optional[int]] = {}
    latencies: Dict[int, float] = {}
    load: Dict[int, float] = {si: 0.0 for si in opened}

    order = sorted(
        range(len(topology.users)), key=lambda ui: topology.users[ui].latency_budget
    )
    for ui in order:
        user = topology.users[ui]
        candidates = [
            si
            for si in opened
            if matrix[ui, si] <= user.latency_budget and remaining[si] >= user.demand
        ]
        if not candidates:
            mapping[ui] = None
            latencies[ui] = float("inf")
            continue
        best = min(candidates, key=lambda si: matrix[ui, si])
        mapping[ui] = best
        latencies[ui] = float(matrix[ui, best])
        remaining[best] -= user.demand
        load[best] += user.demand
    return AssignmentResult(mapping=mapping, latencies=latencies, load=load)


def failover_order(
    topology: CityTopology,
    opened: Set[int],
    user_index: int,
    assignment: Optional[AssignmentResult] = None,
    k: Optional[int] = None,
) -> List[int]:
    """Ranked failover candidates for one user, best first.

    When the user's assigned site crashes, the session should walk down
    this list (Section VI-B's degraded-but-alive guideline applied to
    Section VI-E's placement).  Ranking: opened sites other than the
    primary, with spare capacity for the user's demand (given the
    current ``assignment`` load), within-budget sites before
    over-budget ones, then by latency.  Over-budget sites still appear
    — offloading past the deadline is degraded service, but beats
    falling back to device-only compute for most workloads.  ``k``
    truncates the list.
    """
    matrix = topology.latency_matrix()
    user = topology.users[user_index]
    primary = assignment.mapping.get(user_index) if assignment is not None else None
    candidates = []
    for si in opened:
        if si == primary:
            continue
        if assignment is not None:
            cap = topology.sites[si].capacity
            spare = cap - assignment.load.get(si, 0.0)
            if spare < user.demand:
                continue
        latency = float(matrix[user_index, si])
        candidates.append((latency > user.latency_budget, latency, si))
    candidates.sort()
    order = [si for _, _, si in candidates]
    return order if k is None else order[:k]
