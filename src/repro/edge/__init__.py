"""Edge datacenter placement (Section VI-F).

The paper's abstract formulation: minimize |C| (the set of opened edge
datacenters) subject to every (mobile user, application) pair meeting
its offloading deadline ``P_offloading(...) < δa``.

- :mod:`~repro.edge.topology` — city topologies: users, candidate
  sites, and the latency matrix between them.
- :mod:`~repro.edge.placement` — solvers: greedy set cover, local
  search, LP relaxation + randomized rounding, and exact enumeration
  for small instances.
- :mod:`~repro.edge.assignment` — user→datacenter assignment with
  capacity limits.
"""

from repro.edge.topology import CityTopology, CandidateSite, UserSite
from repro.edge.placement import (
    PlacementProblem,
    PlacementResult,
    solve_greedy,
    solve_local_search,
    solve_lp_rounding,
    solve_exact,
)
from repro.edge.assignment import assign_users, failover_order, AssignmentResult
from repro.edge.sync import SyncGroup, UpdateRecord

__all__ = [
    "CityTopology",
    "CandidateSite",
    "UserSite",
    "PlacementProblem",
    "PlacementResult",
    "solve_greedy",
    "solve_local_search",
    "solve_lp_rounding",
    "solve_exact",
    "assign_users",
    "failover_order",
    "AssignmentResult",
    "SyncGroup",
    "UpdateRecord",
]
