"""Solvers for the minimum-datacenter placement problem (Section VI-F).

The problem is a set-cover instance: site ``c`` covers user ``u`` when
the user's deadline-derived latency budget admits that site.  Four
solvers with different optimality/cost trade-offs:

- :func:`solve_greedy` — classic ln(n)-approximate greedy set cover;
- :func:`solve_local_search` — greedy followed by removal/swap local
  search;
- :func:`solve_lp_rounding` — LP relaxation (scipy ``linprog``) with
  iterated randomized rounding; the LP optimum also provides a lower
  bound for benchmark comparisons;
- :func:`solve_exact` — branch-free enumeration for small instances
  (ground truth in tests).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np
from scipy.optimize import linprog

from repro.edge.topology import CityTopology


@dataclass
class PlacementProblem:
    """A concrete set-cover instance derived from a topology."""

    topology: CityTopology
    coverage: List[Set[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.coverage:
            self.coverage = self.topology.coverage_sets()
        self.n_users = len(self.topology.users)
        self.n_sites = len(self.topology.sites)

    def is_cover(self, chosen: Set[int]) -> bool:
        covered: Set[int] = set()
        for si in chosen:
            covered |= self.coverage[si]
        return len(covered) == self.n_users

    def uncovered_by(self, chosen: Set[int]) -> Set[int]:
        covered: Set[int] = set()
        for si in chosen:
            covered |= self.coverage[si]
        return set(range(self.n_users)) - covered


@dataclass
class PlacementResult:
    """Chosen sites plus solver metadata."""

    chosen: Set[int]
    solver: str
    feasible: bool
    lower_bound: Optional[float] = None

    @property
    def n_datacenters(self) -> int:
        return len(self.chosen)

    def site_names(self, problem: PlacementProblem) -> List[str]:
        return sorted(problem.topology.sites[i].name for i in self.chosen)


def solve_greedy(problem: PlacementProblem) -> PlacementResult:
    """Greedy set cover: repeatedly open the site covering the most
    still-uncovered users."""
    uncovered = set(range(problem.n_users))
    chosen: Set[int] = set()
    while uncovered:
        best_site = max(
            range(problem.n_sites),
            key=lambda si: (len(problem.coverage[si] & uncovered), -si),
        )
        gain = problem.coverage[best_site] & uncovered
        if not gain:
            return PlacementResult(chosen, "greedy", feasible=False)
        chosen.add(best_site)
        uncovered -= gain
    return PlacementResult(chosen, "greedy", feasible=True)


def solve_local_search(problem: PlacementProblem, max_rounds: int = 50) -> PlacementResult:
    """Greedy seed, then try dropping sites and 2→1 swaps."""
    seed = solve_greedy(problem)
    if not seed.feasible:
        return PlacementResult(seed.chosen, "local-search", feasible=False)
    chosen = set(seed.chosen)
    for _ in range(max_rounds):
        improved = False
        # Drop pass: any redundant site?
        for si in sorted(chosen):
            if problem.is_cover(chosen - {si}):
                chosen.discard(si)
                improved = True
        # Swap pass: replace two sites by one.
        for a, b in itertools.combinations(sorted(chosen), 2):
            rest = chosen - {a, b}
            need = problem.uncovered_by(rest)
            for si in range(problem.n_sites):
                if si in rest:
                    continue
                if need <= problem.coverage[si]:
                    chosen = rest | {si}
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return PlacementResult(chosen, "local-search", feasible=True)


def solve_lp_rounding(
    problem: PlacementProblem, rounds: int = 40, seed: int = 0
) -> PlacementResult:
    """LP relaxation + iterated randomized rounding.

    Minimizes Σ x_c subject to Σ_{c covers u} x_c ≥ 1 for every user,
    0 ≤ x ≤ 1; then repeatedly samples sites with probability
    min(1, α·x_c) and keeps the best feasible cover (completed greedily
    when sampling misses someone).  The LP optimum is returned as
    ``lower_bound``.
    """
    n_u, n_s = problem.n_users, problem.n_sites
    a_ub = np.zeros((n_u, n_s))
    for si, users in enumerate(problem.coverage):
        for ui in users:
            a_ub[ui, si] = -1.0
    b_ub = -np.ones(n_u)
    res = linprog(
        c=np.ones(n_s),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n_s,
        method="highs",
    )
    if not res.success:
        return PlacementResult(set(), "lp-rounding", feasible=False)
    x = res.x
    rng = random.Random(seed)
    best: Optional[Set[int]] = None
    alpha = 1.5
    for _ in range(rounds):
        sample = {si for si in range(n_s) if rng.random() < min(1.0, alpha * x[si])}
        missing = problem.uncovered_by(sample)
        while missing:
            si = max(range(n_s), key=lambda s: len(problem.coverage[s] & missing))
            if not problem.coverage[si] & missing:
                break
            sample.add(si)
            missing -= problem.coverage[si]
        if problem.is_cover(sample):
            # Prune redundant picks.
            for si in sorted(sample):
                if problem.is_cover(sample - {si}):
                    sample.discard(si)
            if best is None or len(sample) < len(best):
                best = sample
    if best is None:
        return PlacementResult(set(), "lp-rounding", feasible=False,
                               lower_bound=float(res.fun))
    return PlacementResult(best, "lp-rounding", feasible=True, lower_bound=float(res.fun))


def solve_exact(problem: PlacementProblem, max_sites: int = 18) -> PlacementResult:
    """Exhaustive search over subsets, smallest first (tests only)."""
    if problem.n_sites > max_sites:
        raise ValueError(f"exact solver limited to {max_sites} sites")
    all_sites = range(problem.n_sites)
    for k in range(1, problem.n_sites + 1):
        for combo in itertools.combinations(all_sites, k):
            if problem.is_cover(set(combo)):
                return PlacementResult(set(combo), "exact", feasible=True,
                                       lower_bound=float(k))
    return PlacementResult(set(), "exact", feasible=False)
