"""Statistics and reporting helpers used by benchmarks and examples."""

from repro.analysis.stats import (
    FixedBinHistogram,
    StreamingMoments,
    jain_index,
    mean,
    percentile,
    stddev,
    summarize,
    Summary,
    timeseries_bins,
)
from repro.analysis.report import (
    ascii_table,
    format_rate,
    format_time,
    obs_breakdown_table,
    Figure,
)

__all__ = [
    "FixedBinHistogram",
    "StreamingMoments",
    "jain_index",
    "mean",
    "percentile",
    "stddev",
    "summarize",
    "Summary",
    "timeseries_bins",
    "ascii_table",
    "format_rate",
    "format_time",
    "obs_breakdown_table",
    "Figure",
]
