"""Statistics and reporting helpers used by benchmarks and examples."""

from repro.analysis.stats import (
    jain_index,
    mean,
    percentile,
    stddev,
    summarize,
    Summary,
    timeseries_bins,
)
from repro.analysis.report import ascii_table, format_rate, format_time, Figure

__all__ = [
    "jain_index",
    "mean",
    "percentile",
    "stddev",
    "summarize",
    "Summary",
    "timeseries_bins",
    "ascii_table",
    "format_rate",
    "format_time",
    "Figure",
]
