"""Small statistics helpers (no numpy dependency on hot paths).

Every summary helper accepts arbitrary *iterables* — raw sequences,
generators, or streams of per-shard summary objects — not just
materialized lists, so fleet reports can feed shard summaries straight
through.  :func:`timeseries_bins` additionally understands *mergeable*
values (anything with a ``merge`` method, e.g.
:class:`StreamingMoments`): buckets of mergeable summaries reduce by
merging instead of averaging.

The two mergeable streaming primitives — :class:`StreamingMoments`
(Welford/Chan-Golub-LeVeque moments) and :class:`FixedBinHistogram`
(fixed-bin counts with exact elementwise merging) — live here, in the
sim domain, so both the fleet aggregation layer
(:mod:`repro.fleet.aggregate`, which re-exports them) and the
observability metrics registry (:mod:`repro.obs.registry`) share one
canonical implementation and shard registries stay byte-identically
merge-compatible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(data: Iterable[float]) -> float:
    """Arithmetic mean; NaN for empty input."""
    data = data if isinstance(data, Sequence) else list(data)
    return sum(data) / len(data) if data else float("nan")


def stddev(data: Iterable[float]) -> float:
    """Sample standard deviation; 0.0 for fewer than two points."""
    data = data if isinstance(data, Sequence) else list(data)
    n = len(data)
    if n < 2:
        return 0.0
    mu = mean(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / (n - 1))


def percentile(data: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; NaN when empty."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(data)
    if not ordered:
        return float("nan")
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    # a + frac*(b-a) is exact when a == b, unlike the convex-combination
    # form, so percentiles of constant data stay bit-identical.
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    p5: float
    p50: float
    p95: float
    minimum: float
    maximum: float


def summarize(data: Iterable[float]) -> Summary:
    """Summary statistics of a sample (NaN-filled when empty)."""
    data = list(data)
    if not data:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        n=len(data),
        mean=mean(data),
        std=stddev(data),
        p5=percentile(data, 5),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        minimum=min(data),
        maximum=max(data),
    )


def _merge_copies(vals: Sequence):
    """Merge mergeable summaries without mutating the inputs."""
    merged = type(vals[0])()
    for v in vals:
        merged.merge(v)
    return merged


def timeseries_bins(
    samples: Iterable[Tuple[float, object]], bin_size: float, reducer=mean
) -> List[Tuple[float, object]]:
    """Bin (time, value) samples; returns (bin_start, reduced_value).

    Values may be plain numbers (reduced with ``reducer``, default
    :func:`mean`) or mergeable shard summaries — objects exposing
    ``merge(other)``, such as fleet ``StreamingMoments`` — in which
    case each bucket reduces to a fresh merged summary (inputs are not
    mutated) and ``reducer`` is ignored.
    """
    if bin_size <= 0:
        raise ValueError("bin_size must be positive")
    buckets: dict = {}
    for t, v in samples:
        buckets.setdefault(int(t // bin_size), []).append(v)
    out: List[Tuple[float, object]] = []
    for k, vals in sorted(buckets.items()):
        if hasattr(vals[0], "merge"):
            out.append((k * bin_size, _merge_copies(vals)))
        else:
            out.append((k * bin_size, reducer(vals)))
    return out


# ----------------------------------------------------------------------
# Mergeable streaming primitives (shared by fleet shards and the obs
# metrics registry)
# ----------------------------------------------------------------------
class StreamingMoments:
    """Welford-style streaming count/mean/M2 with min/max, mergeable."""

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> "StreamingMoments":
        for x in xs:
            self.add(x)
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other`` into this accumulator (Chan et al. merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples."""
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        d = {"count": self.count, "mean": self.mean, "m2": self.m2}
        if self.count:  # inf sentinels are not JSON-portable
            d["min"] = self.minimum
            d["max"] = self.maximum
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "StreamingMoments":
        m = cls()
        m.count = int(d["count"])
        m.mean = float(d["mean"])
        m.m2 = float(d["m2"])
        if m.count:
            m.minimum = float(d["min"])
            m.maximum = float(d["max"])
        return m

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StreamingMoments) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Moments n={self.count} mean={self.mean:.6g} "
                f"std={self.std:.6g}>")


class FixedBinHistogram:
    """Equal-width histogram over ``[lo, hi)`` with exact merging.

    Out-of-range samples land in the underflow/overflow buckets and are
    treated as sitting at the range edge for percentile purposes, so
    percentiles stay defined (and conservative) even when the range
    guess was too tight.
    """

    __slots__ = ("lo", "hi", "bins", "underflow", "overflow")

    def __init__(self, lo: float, hi: float, n_bins: int = 100) -> None:
        if not (hi > lo) or n_bins <= 0:
            raise ValueError("need hi > lo and n_bins > 0")
        self.lo = lo
        self.hi = hi
        self.bins = [0] * n_bins
        self.underflow = 0
        self.overflow = 0

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / len(self.bins)

    @property
    def total(self) -> int:
        return sum(self.bins) + self.underflow + self.overflow

    def add(self, x: float) -> None:
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = int((x - self.lo) / (self.hi - self.lo) * len(self.bins))
            # float rounding at the top edge can yield len(bins)
            self.bins[min(idx, len(self.bins) - 1)] += 1

    def extend(self, xs: Iterable[float]) -> "FixedBinHistogram":
        for x in xs:
            self.add(x)
        return self

    def compatible(self, other: "FixedBinHistogram") -> bool:
        return (self.lo == other.lo and self.hi == other.hi
                and len(self.bins) == len(other.bins))

    def merge(self, other: "FixedBinHistogram") -> "FixedBinHistogram":
        if not self.compatible(other):
            raise ValueError(
                f"histogram configs differ: [{self.lo},{self.hi})x{len(self.bins)}"
                f" vs [{other.lo},{other.hi})x{len(other.bins)}")
        for i, c in enumerate(other.bins):
            self.bins[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def percentile(self, q: float) -> float:
        """Linear-in-bin percentile, ``q`` in [0, 100]; NaN when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        total = self.total
        if total == 0:
            return float("nan")
        rank = (q / 100.0) * total
        cum = self.underflow
        if rank <= cum:
            return self.lo
        for i, c in enumerate(self.bins):
            if c and rank <= cum + c:
                frac = (rank - cum) / c
                return self.lo + (i + frac) * self.bin_width
            cum += c
        return self.hi

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": list(self.bins),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FixedBinHistogram":
        h = cls(float(d["lo"]), float(d["hi"]), len(d["bins"]))
        h.bins = [int(c) for c in d["bins"]]
        h.underflow = int(d["underflow"])
        h.overflow = int(d["overflow"])
        return h

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FixedBinHistogram) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram [{self.lo},{self.hi}) n={self.total} "
                f"p50={self.p50:.4g} p95={self.p95:.4g}>")


def jain_index(allocations: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog.

    The paper's property (2) — "fair to other connections while
    exploiting the maximum available bandwidth" — is scored with this
    classic measure over per-flow throughputs.
    """
    allocations = allocations if isinstance(allocations, Sequence) \
        else list(allocations)
    if not allocations:
        return float("nan")
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if squares == 0:
        return 1.0
    return total * total / (len(allocations) * squares)
