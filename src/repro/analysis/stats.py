"""Small statistics helpers (no numpy dependency on hot paths)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(data: Sequence[float]) -> float:
    """Arithmetic mean; NaN for empty input."""
    return sum(data) / len(data) if data else float("nan")


def stddev(data: Sequence[float]) -> float:
    """Sample standard deviation; 0.0 for fewer than two points."""
    n = len(data)
    if n < 2:
        return 0.0
    mu = mean(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / (n - 1))


def percentile(data: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; NaN when empty."""
    if not data:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(data)
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    # a + frac*(b-a) is exact when a == b, unlike the convex-combination
    # form, so percentiles of constant data stay bit-identical.
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    p5: float
    p50: float
    p95: float
    minimum: float
    maximum: float


def summarize(data: Sequence[float]) -> Summary:
    """Summary statistics of a sample (NaN-filled when empty)."""
    if not data:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        n=len(data),
        mean=mean(data),
        std=stddev(data),
        p5=percentile(data, 5),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        minimum=min(data),
        maximum=max(data),
    )


def timeseries_bins(
    samples: Iterable[Tuple[float, float]], bin_size: float, reducer=mean
) -> List[Tuple[float, float]]:
    """Bin (time, value) samples; returns (bin_start, reduced_value)."""
    if bin_size <= 0:
        raise ValueError("bin_size must be positive")
    buckets: dict = {}
    for t, v in samples:
        buckets.setdefault(int(t // bin_size), []).append(v)
    return [(k * bin_size, reducer(vals)) for k, vals in sorted(buckets.items())]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog.

    The paper's property (2) — "fair to other connections while
    exploiting the maximum available bandwidth" — is scored with this
    classic measure over per-flow throughputs.
    """
    if not allocations:
        return float("nan")
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if squares == 0:
        return 1.0
    return total * total / (len(allocations) * squares)
