"""Small statistics helpers (no numpy dependency on hot paths).

Every summary helper accepts arbitrary *iterables* — raw sequences,
generators, or streams of per-shard summary objects — not just
materialized lists, so fleet reports can feed shard summaries straight
through.  :func:`timeseries_bins` additionally understands *mergeable*
values (anything with a ``merge`` method, e.g.
:class:`repro.fleet.aggregate.StreamingMoments`): buckets of mergeable
summaries reduce by merging instead of averaging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(data: Iterable[float]) -> float:
    """Arithmetic mean; NaN for empty input."""
    data = data if isinstance(data, Sequence) else list(data)
    return sum(data) / len(data) if data else float("nan")


def stddev(data: Iterable[float]) -> float:
    """Sample standard deviation; 0.0 for fewer than two points."""
    data = data if isinstance(data, Sequence) else list(data)
    n = len(data)
    if n < 2:
        return 0.0
    mu = mean(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / (n - 1))


def percentile(data: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; NaN when empty."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(data)
    if not ordered:
        return float("nan")
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    # a + frac*(b-a) is exact when a == b, unlike the convex-combination
    # form, so percentiles of constant data stay bit-identical.
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    p5: float
    p50: float
    p95: float
    minimum: float
    maximum: float


def summarize(data: Iterable[float]) -> Summary:
    """Summary statistics of a sample (NaN-filled when empty)."""
    data = list(data)
    if not data:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        n=len(data),
        mean=mean(data),
        std=stddev(data),
        p5=percentile(data, 5),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        minimum=min(data),
        maximum=max(data),
    )


def _merge_copies(vals: Sequence):
    """Merge mergeable summaries without mutating the inputs."""
    merged = type(vals[0])()
    for v in vals:
        merged.merge(v)
    return merged


def timeseries_bins(
    samples: Iterable[Tuple[float, object]], bin_size: float, reducer=mean
) -> List[Tuple[float, object]]:
    """Bin (time, value) samples; returns (bin_start, reduced_value).

    Values may be plain numbers (reduced with ``reducer``, default
    :func:`mean`) or mergeable shard summaries — objects exposing
    ``merge(other)``, such as fleet ``StreamingMoments`` — in which
    case each bucket reduces to a fresh merged summary (inputs are not
    mutated) and ``reducer`` is ignored.
    """
    if bin_size <= 0:
        raise ValueError("bin_size must be positive")
    buckets: dict = {}
    for t, v in samples:
        buckets.setdefault(int(t // bin_size), []).append(v)
    out: List[Tuple[float, object]] = []
    for k, vals in sorted(buckets.items()):
        if hasattr(vals[0], "merge"):
            out.append((k * bin_size, _merge_copies(vals)))
        else:
            out.append((k * bin_size, reducer(vals)))
    return out


def jain_index(allocations: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog.

    The paper's property (2) — "fair to other connections while
    exploiting the maximum available bandwidth" — is scored with this
    classic measure over per-flow throughputs.
    """
    allocations = allocations if isinstance(allocations, Sequence) \
        else list(allocations)
    if not allocations:
        return float("nan")
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if squares == 0:
        return 1.0
    return total * total / (len(allocations) * squares)
