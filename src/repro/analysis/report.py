"""Text rendering for benchmark output: tables and ASCII 'figures'.

The benchmark harness regenerates the paper's tables and figures as
text; these helpers keep the formatting consistent across benchmarks.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.analysis.stats import mean

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import ResilienceReport
    from repro.simnet.link import Link


def format_rate(bps: float) -> str:
    """Human bit rate: 1.5 Kb/s, 12.3 Mb/s, 1.2 Gb/s."""
    for unit, scale in (("Gb/s", 1e9), ("Mb/s", 1e6), ("Kb/s", 1e3)):
        if abs(bps) >= scale:
            return f"{bps / scale:.2f} {unit}"
    return f"{bps:.0f} b/s"


def format_time(seconds: float) -> str:
    """Human time: 12.3 ms, 1.20 s."""
    if abs(seconds) >= 1.0:
        return f"{seconds:.2f} s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} µs"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: Optional[str] = None) -> str:
    """Render a padded ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def resilience_table(reports: Sequence[Tuple[str, "ResilienceReport"]],
                     title: str = "Resilience metrics") -> str:
    """Render named :class:`ResilienceReport`s side by side."""

    def t(x: float) -> str:
        return "—" if x != x or math.isinf(x) else format_time(x)

    rows = []
    for name, r in reports:
        rows.append([
            name,
            t(r.mean_detection_time),
            t(r.mttr),
            f"{r.availability:.1%}",
            str(r.frames_offloaded),
            str(r.frames_degraded),
            str(r.frames_dropped),
            f"{r.degraded_fraction:.1%}",
            str(r.failovers),
            str(r.breaker_trips),
        ])
    return ascii_table(
        ["session", "detection", "MTTR", "avail", "offl", "degr",
         "drop", "degr-frac", "failovers", "trips"],
        rows,
        title=title,
    )


def link_table(links: Sequence["Link"], elapsed: float,
               title: str = "Link statistics") -> str:
    """Per-link accounting table.

    Keeps the two drop populations separate: *queue drops* happen before
    serialization (the packet never consumed airtime) while *wire loss*
    happens after (its bytes count in ``bytes_sent`` and ``bytes_lost``).
    Goodput is computed from ``bytes_delivered`` — never from
    ``bytes_sent - bytes_delivered``, which conflates lost and
    in-flight bytes.
    """
    rows = []
    for link in links:
        goodput = (link.bytes_delivered * 8 / elapsed) if elapsed > 0 else 0.0
        wire_total = link.packets_delivered + link.packets_lost
        loss_frac = link.packets_lost / wire_total if wire_total else 0.0
        rows.append([
            link.name,
            format_rate(link.rate_bps),
            format_rate(goodput),
            str(link.packets_delivered),
            str(link.packets_lost),
            format_rate(link.bytes_lost * 8 / elapsed) if elapsed > 0 else "0 b/s",
            f"{loss_frac:.2%}",
            str(link.queue_drops),
            f"{link.utilization(elapsed):.1%}",
        ])
    return ascii_table(
        ["link", "rate", "goodput", "pkts ok", "wire lost", "lost rate",
         "wire loss%", "queue drops", "util"],
        rows,
        title=title,
    )


# ----------------------------------------------------------------------
# Fleet campaign reports (repro.fleet)
# ----------------------------------------------------------------------
def _fleet_fmt(value: float, unit: str) -> str:
    if value != value:  # NaN — metric absent at this point
        return "—"
    if unit == "time":
        return format_time(value)
    if unit == "rate":
        return format_rate(value)
    return f"{value:.3f}"


def fleet_point_table(points: Sequence[Tuple[str, object]],
                      hist_key: Optional[str], hist_unit: str,
                      moment_keys: Sequence[str],
                      title: str) -> str:
    """Cell-level saturation table: one row per campaign grid point.

    ``points`` pairs a grid-point label with that point's merged
    :class:`~repro.fleet.aggregate.Aggregate` (duck-typed — anything
    with ``counts``/``moments``/``histograms`` mappings works).  The
    named histogram contributes p50/p95/p99 columns; each named moment
    contributes a mean column.
    """
    nan = float("nan")
    headers = ["point", "n"]
    if hist_key:
        headers += [f"{hist_key} p50", "p95", "p99"]
    headers += [f"mean {k}" for k in moment_keys]
    rows = []
    for label, agg in points:
        hist = agg.histograms.get(hist_key) if hist_key else None
        n = hist.total if hist is not None else (
            max(agg.counts.values()) if agg.counts else 0)
        row = [label, str(n)]
        if hist_key:
            if hist is not None and hist.total:
                row += [_fleet_fmt(hist.percentile(q), hist_unit)
                        for q in (50.0, 95.0, 99.0)]
            else:
                row += ["—", "—", "—"]
        for key in moment_keys:
            m = agg.moments.get(key)
            unit = hist_unit if key == hist_key else (
                "rate" if key.endswith("bps") else
                "time" if key.endswith(("latency", "rtt")) else "plain")
            row.append(_fleet_fmt(m.mean if m is not None and m.count else nan,
                                  unit))
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def fleet_report(result) -> str:
    """Render a :class:`~repro.fleet.workers.FleetResult` as text.

    Deliberately excludes wall-clock timings and cache counters that
    vary between equivalent runs: serial and parallel executions of the
    same campaign must render byte-identically (the fleet determinism
    contract; timing goes to the CLI's stderr progress line instead).
    """
    c = result.campaign
    hist_key = result.latency_key or result.rate_key
    hist_unit = "time" if result.latency_key else "rate"
    lines = [
        f"Fleet campaign {c.name!r} — scenario {c.scenario!r}",
        f"shards: {len(result.outcomes)} "
        f"(ok {result.completed}, quarantined {len(result.quarantined)}) · "
        f"seeds/point: {c.seeds} · base seed: {c.base_seed}",
        "",
        fleet_point_table(list(result.per_point.items()), hist_key, hist_unit,
                          result.moment_keys,
                          title="Per-point aggregates"),
        "",
        fleet_point_table([("ALL", result.aggregate)], hist_key, hist_unit,
                          result.moment_keys,
                          title="Campaign-wide aggregate"),
    ]
    if result.quarantined:
        lines.append("")
        lines.append("quarantined shards (replay with "
                     "`python -m repro fleet <campaign> --replay TAG`):")
        for outcome in result.outcomes:
            if outcome.status == "quarantined":
                # Errors may carry full worker tracebacks; the report
                # keeps one line per shard and leaves the traceback to
                # the ShardOutcome record / flight artifact.
                brief = (outcome.error or "").splitlines()[0] \
                    if outcome.error else None
                lines.append(f"  {outcome.tag}  "
                             f"[{outcome.attempts} attempts: {brief}]")
                if outcome.flight:
                    lines.append(f"    flight recorder: {outcome.flight}")
    return "\n".join(lines)


def obs_breakdown_table(breakdowns, title: str = "Frame critical path") -> str:
    """Render per-frame critical-path breakdowns from :mod:`repro.obs`.

    ``breakdowns`` is the list produced by
    :meth:`repro.obs.instrument.FrameObserver.breakdowns` — one dict per
    completed frame with ``total``, per-stage durations and the
    compute/serialization/propagation/queueing/render split.  The table
    shows the mean over frames plus the worst frame, which is what an
    operator scans first ("where does the time go, and how bad is the
    tail?").
    """
    if not breakdowns:
        return ascii_table(["bucket", "mean", "max"], [], title=title)

    def column(getter) -> List[float]:
        return [getter(b) for b in breakdowns]

    buckets = sorted({k for b in breakdowns for k in b["critical_path"]})
    rows = []
    for bucket in buckets:
        vals = column(lambda b: b["critical_path"].get(bucket, 0.0))
        rows.append([bucket, format_time(mean(vals)), format_time(max(vals))])
    totals = column(lambda b: b["total"])
    rows.append(["total", format_time(mean(totals)), format_time(max(totals))])
    return ascii_table(["bucket", "mean", "max"], rows,
                       title=f"{title} ({len(breakdowns)} frames)")


def fleet_telemetry_table(doc: dict) -> str:
    """Render a ``campaign_telemetry.json`` document as text.

    This is the wall-clock side of the fleet: per-worker utilisation,
    RSS high-water marks, retry/timeout counters and the slowest shards
    normalised by their cost hints.  It is rendered *from recorded
    data* — this module never reads a clock — and is intentionally not
    part of :func:`fleet_report`, whose output must stay byte-identical
    across equivalent runs.
    """
    run = doc.get("run", {})
    shards = doc.get("shards", {})
    cache = doc.get("cache", {})
    elapsed = float(run.get("elapsed_s", 0.0))
    lines = [
        f"Telemetry — campaign {doc.get('campaign', {}).get('name', '?')!r} "
        f"({doc.get('campaign', {}).get('scenario', '?')})",
        f"elapsed: {format_time(elapsed)} · workers: {run.get('workers', 1)} "
        f"({run.get('start_method') or 'serial'}) · "
        f"batches: {run.get('batches', 0)} · "
        f"reducer peak buffer: {run.get('max_buffered', 0)}",
        f"shards: ok {shards.get('ok', 0)} · "
        f"quarantined {shards.get('quarantined', 0)} · "
        f"retries {shards.get('retries', 0)} · "
        f"timeouts {shards.get('timeouts', 0)} · "
        f"pool breaks {shards.get('pool_breaks', 0)} · "
        f"cache {cache.get('hits', 0)}/{cache.get('hits', 0) + cache.get('misses', 0)} hit",
    ]
    meta = doc.get("meta", {})
    if meta:
        lines.append("meta: " + " · ".join(
            f"{k}={v}" for k, v in sorted(meta.items())))
    flight = doc.get("flight")
    if flight:
        lines.append(
            f"flight recorder: {flight.get('spills', 0)} spills, "
            f"{flight.get('crashes', 0)} crashes, "
            f"{flight.get('quarantine', 0)} quarantine dumps "
            f"({flight.get('events', 0)} ring events) in {flight.get('dir')}")
    workers = doc.get("workers", {})
    if workers:
        rows = []
        for pid, w in workers.items():
            busy = float(w.get("busy_s", 0.0))
            util = busy / elapsed if elapsed > 0 else 0.0
            rows.append([pid, w.get("shards", 0), w.get("ok", 0),
                         w.get("err", 0), w.get("batches", 0),
                         format_time(busy), f"{util:6.1%}",
                         f"{w.get('max_rss_kib', 0) / 1024:.1f} MiB"])
        lines.append("")
        lines.append(ascii_table(
            ["pid", "shards", "ok", "err", "batches", "busy", "util",
             "peak RSS"],
            rows, title="Per-worker timeline"))
    slowest = doc.get("slowest", [])
    if slowest:
        rows = [[s.get("tag"), s.get("pid"),
                 format_time(float(s.get("wall_s", 0.0))),
                 f"{s.get('cost', 1.0):.3g}",
                 format_time(float(s.get("wall_per_cost", 0.0)))]
                for s in slowest]
        lines.append("")
        lines.append(ascii_table(
            ["tag", "pid", "wall", "cost", "wall/cost"],
            rows, title="Slowest shards (cost-normalised)"))
    return "\n".join(lines)


def profile_hotspot_table(profiler, top: int = 12) -> str:
    """Render an :class:`~repro.obs.profile.EngineProfiler` hotspot table.

    Counts are deterministic; the wall columns appear only when the
    caller injected a clock into the profiler (telemetry-only — the
    hotspot *ordering* is then wall-driven, which is the point of
    ``python -m repro obs --profile``).
    """
    rows = profiler.hotspots(top=top)
    total = profiler.events or 1
    if profiler.timed:
        total_wall = sum(w for _, _, w in rows) or 1.0
        table_rows = [
            [name, n, f"{n / total:6.1%}", format_time(wall),
             f"{wall / total_wall:6.1%}",
             format_time(wall / n) if n else "—"]
            for name, n, wall in rows]
        headers = ["handler", "events", "ev%", "wall", "wall%", "per event"]
    else:
        table_rows = [[name, n, f"{n / total:6.1%}"]
                      for name, n, _ in rows]
        headers = ["handler", "events", "ev%"]
    return ascii_table(
        headers, table_rows,
        title=f"Engine hotspots ({profiler.events} events)")


class Figure:
    """An ASCII line 'figure': named series over a shared x axis."""

    def __init__(self, title: str, x_label: str = "t", y_label: str = "y",
                 width: int = 72, height: int = 16) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.series: List[Tuple[str, List[Tuple[float, float]]]] = []

    def add_series(self, name: str, points: List[Tuple[float, float]]) -> None:
        self.series.append((name, points))

    def render(self) -> str:
        """Plot every series with a distinct glyph on one char canvas."""
        glyphs = "*o+x#@%&"
        all_pts = [p for _, pts in self.series for p in pts]
        if not all_pts:
            return f"{self.title}\n(no data)"
        xs = [p[0] for p in all_pts]
        ys = [p[1] for p in all_pts]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        canvas = [[" "] * self.width for _ in range(self.height)]
        for si, (_, pts) in enumerate(self.series):
            glyph = glyphs[si % len(glyphs)]
            for x, y in pts:
                col = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
                row = int((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
                canvas[self.height - 1 - row][col] = glyph
        lines = [self.title]
        legend = "  ".join(
            f"{glyphs[i % len(glyphs)]}={name}" for i, (name, _) in enumerate(self.series)
        )
        lines.append(legend)
        lines.append(f"y: {self.y_label}  [{y_lo:.3g} .. {y_hi:.3g}]")
        for row in canvas:
            lines.append("|" + "".join(row))
        lines.append("+" + "-" * self.width)
        lines.append(f"x: {self.x_label}  [{x_lo:.3g} .. {x_hi:.3g}]")
        return "\n".join(lines)
