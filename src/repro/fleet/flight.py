"""Crash flight recorder: a bounded ring of recent engine events.

When a fleet worker dies (segfault, OOM kill, injected ``os._exit``)
the driver learns only that the pool broke — the shard's last moments
are gone.  A :class:`FlightRecorder` keeps them: it installs itself as
the process-wide :data:`repro.simnet.engine.default_trace_hook`, so
every simulator the worker creates appends its fired events to a
bounded ring buffer.  The hook *is* the ring's C-level ``append`` —
one deque push per event, no Python frame — so arming the recorder is
nearly free; ``(sim_time, seq, handler)`` rows are extracted only when
the ring spills.

Two artifacts come out of it, both under the campaign's flight
directory:

- ``worker-<pid>.json`` — a **spill**, rewritten at every shard
  boundary (:meth:`begin_shard`): the rolling ring tail plus the
  tag/attempt about to run.  A worker killed without
  cleanup leaves its spill behind, naming the shard it was on and the
  last engine events it fired — which is exactly what the driver
  attaches to the quarantine record
  (:func:`collect_flight_dump`).
- ``flight-<idx>-<hash8>-a<N>.json`` — a **crash dump**, written
  in-process the moment a shard raises, with the ring tail *and* the
  traceback.

The recorder is harness code (wall-clock-free regardless — rings hold
sim time): it observes fired events and never mutates simulator state,
so enabling it cannot change any result byte.  That is pinned by the
byte-identity tests in ``tests/test_fleet_telemetry.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque
from typing import Dict, List, Optional

from repro.fleet.campaign import stable_hash
from repro.obs.profile import handler_name

#: Flight artifact schema version.
FLIGHT_SCHEMA = 1

#: Default ring capacity: enough to see a shard's last few frames
#: without the spill write becoming measurable next to the shard.
RING_CAPACITY = 256

_CANON = {"sort_keys": True, "separators": (",", ":")}


def _safe_stem(tag: str) -> str:
    """Filename-safe shard identifier (tags contain '/', '=' and ',')."""
    return stable_hash(tag)[:8]


class FlightRecorder:
    """Per-process ring buffer of recent engine events, spillable to disk."""

    def __init__(self, out_dir, capacity: int = RING_CAPACITY,
                 worker_id: Optional[int] = None) -> None:
        self.out_dir = pathlib.Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.ring: deque = deque(maxlen=capacity)
        #: the engine hook — the ring's own C-level ``append``, stored
        #: so :meth:`uninstall` can identity-check what it installed.
        #: The ring therefore holds fired ``Event`` objects; their
        #: ``(time, seq, fn)`` rows are extracted only at spill time.
        self.hook = self.ring.append
        self.worker_id = worker_id if worker_id is not None else os.getpid()
        self.current_tag: Optional[str] = None
        self.current_attempt: Optional[int] = None
        self.shards_seen = 0
        self.crash_dumps: List[str] = []
        self._names: Dict[object, str] = {}

    def install(self) -> None:
        """Become the default trace hook for every new Simulator here."""
        from repro.simnet import engine

        engine.default_trace_hook = self.hook

    def uninstall(self) -> None:
        from repro.simnet import engine

        if engine.default_trace_hook is self.hook:
            engine.default_trace_hook = None

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------
    def begin_shard(self, tag: str, attempt: int) -> None:
        """Note the shard about to run and spill the ring to disk.

        The spill happens *before* the shard executes, so a worker that
        dies mid-shard (no cleanup runs) still leaves a file naming its
        victim and holding the ring tail as of the shard boundary.  The
        ring deliberately rolls *across* shard boundaries — like a real
        flight recorder, it answers "what were this process's last N
        events", whichever shard fired them.
        """
        self.current_tag = tag
        self.current_attempt = attempt
        self.shards_seen += 1
        self._spill()

    def dump_crash(self, tag: str, attempt: int, error: str) -> pathlib.Path:
        """Write a crash dump for a shard that raised; returns its path."""
        path = self.out_dir / (
            f"flight-{len(self.crash_dumps):03d}-{_safe_stem(tag)}"
            f"-a{attempt}.json")
        doc = self._doc(tag, attempt)
        doc["kind"] = "crash"
        doc["error"] = error
        path.write_text(json.dumps(doc, **_CANON) + "\n")
        self.crash_dumps.append(str(path))
        return path

    # ------------------------------------------------------------------
    def _events(self) -> List[dict]:
        names = self._names
        out = []
        for event in self.ring:
            fn = event.fn
            name = names.get(fn)
            if name is None:
                name = names[fn] = handler_name(fn)
            out.append({"t": event.time, "seq": event.seq, "fn": name})
        return out

    def _doc(self, tag: Optional[str], attempt: Optional[int]) -> dict:
        return {
            "schema": FLIGHT_SCHEMA,
            "worker": self.worker_id,
            "pid": os.getpid(),
            "tag": tag,
            "attempt": attempt,
            "shards_seen": self.shards_seen,
            "ring": self._events(),
        }

    def _spill(self) -> None:
        doc = self._doc(self.current_tag, self.current_attempt)
        doc["kind"] = "spill"
        path = self.out_dir / f"worker-{self.worker_id}.json"
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(doc, **_CANON) + "\n")
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# Driver side: attach flight artifacts to quarantine records
# ----------------------------------------------------------------------
def read_flight_dump(path) -> Optional[dict]:
    """Parse one flight artifact; None when unreadable/half-written."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) and "ring" in doc else None


def collect_flight_dump(flight_dir, tag: str) -> Optional[pathlib.Path]:
    """Find the flight artifact for a quarantined shard.

    Prefers an in-process crash dump for the tag (a raising shard wrote
    its own); falls back to a worker spill whose recorded tag matches —
    the trace a killed worker left at its last shard boundary.  Among
    matches of the same kind the most *informative* wins: most ring
    events first, then highest attempt — an isolation-retry spill from
    a fresh worker (empty ring) must not shadow the original warm
    worker's event tail.  The match is promoted to a stable
    ``quarantine-<hash8>.json`` name so later campaigns (and
    worker-file rewrites) cannot clobber it.
    """
    root = pathlib.Path(flight_dir)
    if not root.is_dir():
        return None
    best: Optional[pathlib.Path] = None
    best_rank = (-1, -1)
    for pattern in (f"flight-*-{_safe_stem(tag)}-a*.json", "worker-*.json"):
        for path in sorted(root.glob(pattern)):
            doc = read_flight_dump(path)
            if doc is None or doc.get("tag") != tag:
                continue
            rank = (len(doc.get("ring", [])), doc.get("attempt") or 0)
            if rank > best_rank:
                best, best_rank = path, rank
        if best is not None:
            break
    if best is None:
        return None
    promoted = root / f"quarantine-{_safe_stem(tag)}.json"
    if best != promoted:
        promoted.write_text(best.read_text())
    return promoted


def flight_summary(flight_dir) -> Dict[str, int]:
    """Artifact counts per kind — the CI assertion surface."""
    root = pathlib.Path(flight_dir)
    out = {"spills": 0, "crashes": 0, "quarantine": 0, "events": 0}
    if not root.is_dir():
        return out
    for path in sorted(root.glob("*.json")):
        doc = read_flight_dump(path)
        if doc is None:
            continue
        out["events"] += len(doc.get("ring", []))
        if path.name.startswith("worker-"):
            out["spills"] += 1
        elif path.name.startswith("quarantine-"):
            out["quarantine"] += 1
        else:
            out["crashes"] += 1
    return out


__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "RING_CAPACITY",
    "collect_flight_dump",
    "flight_summary",
    "read_flight_dump",
]
