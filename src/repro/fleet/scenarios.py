"""Built-in campaign scenario runners.

Each runner is a pure function ``fn(seed, params) -> Aggregate``: it
builds a fresh simulator from the derived shard seed, runs one
scenario instance, and distils the outcome into O(1)-sized mergeable
statistics.  Runners must be importable at module top level so
:mod:`repro.fleet.workers` can execute them in spawned/forked worker
processes.

Three runners re-derive the paper's headline results at population
scale:

- ``cell_offload`` — one MAR user session (MARTP over a single access
  path) per shard; a campaign over thousands of seeds is a *cell* of
  simultaneous offloaders, rolled up per traffic class (§V, Figure 4).
- ``wifi_anomaly_cell`` — an 802.11 cell with a mix of fast and slow
  stations; sweeping the slow-station count reproduces the Figure 2
  anomaly as a saturation table instead of a two-station anecdote.
- ``table2_offload`` — the CloudRidAR offload loop against a
  parameterized server RTT; sweeping RTT re-derives Table II's
  offloading latencies with percentile error bars.
"""

from __future__ import annotations

from typing import Dict

from repro.fleet.aggregate import Aggregate
from repro.fleet.campaign import Campaign, register_scenario

#: Histogram ranges. Fixed (not data-dependent) so shard histograms
#: from different runs/workers are always merge-compatible.
_LATENCY_HI = 2.0          # seconds; MAR latencies beyond 2 s are "failed" anyway
_LATENCY_BINS = 200        # 10 ms resolution
_RATE_HI = 60e6            # b/s; above any single-station 802.11g share
_RATE_BINS = 240


# ----------------------------------------------------------------------
# The cell_offload runner is split into build + collect so the hybrid-
# fidelity layer (repro.scale) can run the *identical* session code
# path with a background-pressure driver attached between the two —
# the zero-background foreground tier must stay byte-identical to this
# event-level scenario (a hard acceptance gate, tests/test_scale_coupling.py).
def build_offload_session(seed: int, params: Dict[str, object]):
    """Build the cell_offload scenario + session (not yet run)."""
    from repro.core import OffloadSession, ScenarioBuilder

    rtt = float(params.get("rtt", 0.036))
    up_bps = float(params.get("up_bps", 12e6))
    loss = float(params.get("loss", 0.0))

    scenario = ScenarioBuilder(seed=seed).single_path(
        rtt=rtt, up_bps=up_bps, loss=loss)
    session = OffloadSession(scenario)
    return scenario, session


def collect_offload_aggregate(scenario, session, report) -> Aggregate:
    """Distil a finished cell_offload session into its shard aggregate."""
    from repro.core import mos_score
    from repro.fleet.aggregate import aggregate_from_registry
    from repro.obs import MetricsRegistry, collect_links, collect_martp

    agg = Aggregate()
    agg.count("sessions")
    agg.moment("mos").add(mos_score(report))
    agg.moment("video_quality").add(report.mean_video_quality)
    latency = agg.histogram("frame_latency", 0.0, _LATENCY_HI, _LATENCY_BINS)
    for sid, cr in sorted(report.per_class.items()):
        agg.count(f"class.{cr.name}.sent", cr.sent)
        agg.count(f"class.{cr.name}.received", cr.received)
        agg.count(f"class.{cr.name}.in_time", cr.in_time)
        agg.moment("delivery_ratio").add(cr.delivery_ratio)
        agg.moment(f"class.{cr.name}.latency").extend(
            session.receiver.stream_stats(sid).latencies)
        latency.extend(session.receiver.stream_stats(sid).latencies)
    agg.count("critical_intact", int(report.critical_intact))

    registry = MetricsRegistry()
    collect_martp(registry, session.sender, session.receiver)
    collect_links(registry, scenario.net, elapsed=scenario.net.sim.now)
    agg.merge(aggregate_from_registry(registry))
    return agg


# version 2: shards also carry an obs.* metrics-registry aggregate
# (protocol + link counters); the bump invalidates v1 cache entries.
@register_scenario(
    "cell_offload", version=2,
    latency_key="frame_latency",
    moment_keys=("mos", "video_quality", "delivery_ratio"),
    # cost ~ simulated session length (the event count tracks duration)
    cost_hint=lambda p: float(p.get("duration", 2.0)),
)
def run_cell_offload(seed: int, params: Dict[str, object]) -> Aggregate:
    """One MAR offload session over a single access path (one cell user)."""
    duration = float(params.get("duration", 2.0))
    scenario, session = build_offload_session(seed, params)
    report = session.run(duration)
    return collect_offload_aggregate(scenario, session, report)


# ----------------------------------------------------------------------
@register_scenario(
    "wifi_anomaly_cell", version=1,
    rate_key="station_throughput",
    moment_keys=("cell_throughput_bps", "fast_station_bps", "slow_station_bps"),
    # cost ~ station-seconds of DCF contention
    cost_hint=lambda p: (float(p.get("duration", 3.0))
                         * (int(p.get("n_fast", 4)) + int(p.get("n_slow", 0)))),
)
def run_wifi_anomaly_cell(seed: int, params: Dict[str, object]) -> Aggregate:
    """An 802.11 cell with fast/slow station mix (Figure 2 at scale)."""
    from repro.simnet.engine import Simulator
    from repro.wireless.wifi import WifiCell, WifiStation

    n_fast = int(params.get("n_fast", 4))
    n_slow = int(params.get("n_slow", 0))
    fast_bps = float(params.get("fast_bps", 54e6))
    slow_bps = float(params.get("slow_bps", 18e6))
    duration = float(params.get("duration", 3.0))

    sim = Simulator(seed=seed)
    cell = WifiCell(sim)
    stations = []
    for i in range(n_fast):
        stations.append((cell.add_station(WifiStation(f"f{i}", fast_bps)), True))
    for i in range(n_slow):
        stations.append((cell.add_station(WifiStation(f"s{i}", slow_bps)), False))
    sim.run(until=duration)

    agg = Aggregate()
    agg.count("cells")
    agg.count("stations", len(stations))
    hist = agg.histogram("station_throughput", 0.0, _RATE_HI, _RATE_BINS)
    cell_total = 0.0
    for st, is_fast in stations:
        bps = st.throughput_bps(0.0, duration)
        cell_total += bps
        hist.add(bps)
        agg.moment("station_bps").add(bps)
        agg.moment("fast_station_bps" if is_fast else "slow_station_bps").add(bps)
    agg.moment("cell_throughput_bps").add(cell_total)
    return agg


# ----------------------------------------------------------------------
@register_scenario(
    "table2_offload", version=1,
    latency_key="frame_latency",
    moment_keys=("link_rtt", "deadline_hit_rate"),
    # cost ~ offload round trips
    cost_hint=lambda p: float(int(p.get("n_frames", 30))),
)
def run_table2_offload(seed: int, params: Dict[str, object]) -> Aggregate:
    """CloudRidAR feature-offload loop against a parameterized RTT."""
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.devices import CLOUD, SMARTPHONE
    from repro.mar.offload import FeatureOffload, OffloadExecutor
    from repro.simnet.engine import Simulator
    from repro.simnet.network import Network

    rtt = float(params.get("rtt", 0.036))
    n_frames = int(params.get("n_frames", 30))
    app = str(params.get("app", "orientation"))

    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 80e6, 40e6, delay=rtt / 2)
    net.build_routes()
    executor = OffloadExecutor(net, "client", "server", APP_ARCHETYPES[app],
                               FeatureOffload(), SMARTPHONE, server_device=CLOUD)
    result = executor.run(n_frames=n_frames)

    agg = Aggregate()
    agg.count("sessions")
    agg.count("frames", result.frames_completed)
    agg.histogram("frame_latency", 0.0, _LATENCY_HI, _LATENCY_BINS).extend(
        result.frame_latencies)
    agg.moment("frame_latency").extend(result.frame_latencies)
    agg.moment("link_rtt").extend(result.link_rtts)
    agg.moment("deadline_hit_rate").add(result.deadline_hit_rate)
    return agg


# ----------------------------------------------------------------------
# Demo campaigns (the `python -m repro fleet` catalog)
# ----------------------------------------------------------------------
def demo_campaigns() -> Dict[str, Campaign]:
    """Named, ready-to-run campaign specs for the CLI."""
    from repro.scale.shards import demo_scale_campaigns

    catalog = demo_scale_campaigns()
    catalog.update({
        # 4 RTT points × 8 seeds = 32 shards; small frame count → fast.
        "smoke": Campaign(
            name="smoke", scenario="table2_offload", seeds=8, base_seed=2,
            grid={"rtt": [0.008, 0.036, 0.072, 0.120]},
            params={"n_frames": 10},
        ),
        # The Table II sweep with statistical weight: 4 × 16 = 64 shards.
        "table2": Campaign(
            name="table2", scenario="table2_offload", seeds=16, base_seed=2,
            grid={"rtt": [0.008, 0.036, 0.072, 0.120]},
            params={"n_frames": 30},
        ),
        # Figure 2 as a saturation table: slow-station count sweep,
        # 4 points × 16 seeds = 64 shards.
        "anomaly": Campaign(
            name="anomaly", scenario="wifi_anomaly_cell", seeds=16, base_seed=21,
            grid={"n_slow": [0, 1, 2, 4]},
            params={"n_fast": 4, "duration": 2.0},
        ),
        # The 256-shard population demo: a cell of MAR users across the
        # four Table II access profiles, 64 user-sessions per profile.
        "cell256": Campaign(
            name="cell256", scenario="cell_offload", seeds=64, base_seed=7,
            grid={"rtt": [0.008, 0.036, 0.072, 0.120]},
            params={"duration": 1.0, "up_bps": 12e6},
        ),
    })
    return catalog


__all__ = [
    "build_offload_session",
    "collect_offload_aggregate",
    "demo_campaigns",
    "run_cell_offload",
    "run_table2_offload",
    "run_wifi_anomaly_cell",
]

# Importing registers the hierarchical city scenarios (city_coverage,
# cell_contention) alongside the built-ins above.
from repro.scale import shards as _scale_shards  # noqa: E402,F401
