"""On-disk shard-result cache for fleet campaigns.

Layout (default root ``benchmarks/results/fleet/cache/``)::

    cache/<fingerprint16>/campaign.json        # the spec, for humans/replay
    cache/<fingerprint16>/00042-1a2b3c4d.json  # one canonical Aggregate per shard

The directory name is the first 16 hex chars of
:meth:`Campaign.fingerprint` — a content hash of the spec plus the
fleet schema version, package version, and scenario version.  Any
change to the campaign spec or to code the results depend on lands in
a fresh directory; re-running an unchanged spec only executes shards
whose file is missing (normally none → 100% hit rate).

Shard files hold the shard's canonical :class:`Aggregate` JSON, so a
cache hit merges byte-identically with a freshly computed shard.
Writes are atomic (temp file + ``os.replace``) so a killed worker can
never leave a half-written entry; unreadable entries are treated as
misses and overwritten.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional, TYPE_CHECKING

from repro.fleet.aggregate import Aggregate
from repro.fleet.campaign import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.campaign import Campaign, ShardSpec

#: Default cache root, next to the benchmark reports.
DEFAULT_CACHE_ROOT = (pathlib.Path(__file__).resolve().parents[3]
                      / "benchmarks" / "results" / "fleet" / "cache")


class ResultCache:
    """Per-shard result store keyed by campaign fingerprint + shard tag."""

    def __init__(self, root: Optional[pathlib.Path] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else DEFAULT_CACHE_ROOT
        self.hits = 0
        self.misses = 0
        # fingerprints whose campaign.json this instance already ensured
        # exists — avoids a disk stat per shard put at campaign scale
        self._meta_written: set = set()

    # ------------------------------------------------------------------
    def campaign_dir(self, campaign: "Campaign") -> pathlib.Path:
        return self.root / campaign.fingerprint()[:16]

    def shard_path(self, campaign: "Campaign", spec: "ShardSpec") -> pathlib.Path:
        # Tags contain '/', '=' and ',' — filename-hostile — so the file
        # name pairs the (order-preserving) index with a tag hash.
        return (self.campaign_dir(campaign)
                / f"{spec.index:05d}-{stable_hash(spec.tag)[:8]}.json")

    # ------------------------------------------------------------------
    def get(self, campaign: "Campaign", spec: "ShardSpec") -> Optional[Aggregate]:
        """Cached aggregate for a shard, or None (counts hit/miss)."""
        path = self.shard_path(campaign, spec)
        try:
            agg = Aggregate.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return agg

    def put(self, campaign: "Campaign", spec: "ShardSpec",
            agg: Aggregate) -> None:
        """Atomically persist one shard's aggregate."""
        cdir = self.campaign_dir(campaign)
        cdir.mkdir(parents=True, exist_ok=True)
        if cdir.name not in self._meta_written:
            meta = cdir / "campaign.json"
            if not meta.exists():
                self._atomic_write(meta, json.dumps(
                    {"fingerprint": campaign.fingerprint(),
                     "spec": campaign.spec_dict()},
                    indent=2, sort_keys=True) + "\n")
            self._meta_written.add(cdir.name)
        self._atomic_write(self.shard_path(campaign, spec), agg.to_json())

    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: pathlib.Path, text: str) -> None:
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(text)
        os.replace(tmp, path)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


__all__ = ["DEFAULT_CACHE_ROOT", "ResultCache"]
