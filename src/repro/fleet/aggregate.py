"""Mergeable streaming statistics for campaign shards.

A fleet worker must return an **O(1)-sized summary** of its shard, not
raw traces: a 10,000-seed campaign with per-message latency lists would
move gigabytes through the result queue.  Three mergeable primitives
cover everything the fleet reports need:

- :class:`StreamingMoments` — count / mean / M2 (Welford) plus min and
  max.  Merging uses the parallel-variance formula of Chan, Golub &
  LeVeque, so ``merge(agg(A), agg(B))`` equals ``agg(A + B)`` up to
  floating-point rounding (exactly, for count/min/max).
- :class:`FixedBinHistogram` — fixed-bin counts with underflow and
  overflow buckets; merging is elementwise integer addition (exact),
  and p50/p95/p99 are read off the cumulative counts with linear
  interpolation inside a bin.
- :class:`Aggregate` — a named bundle of integer counters, moments and
  histograms; merging is keywise union.

The two streaming primitives are canonically defined in
:mod:`repro.analysis.stats` (sim domain) and re-exported here, so the
per-``Simulator`` observability registry (:mod:`repro.obs.registry`)
and fleet shards share one implementation and their serialized forms
stay byte-identically merge-compatible.

Determinism contract: serial and parallel campaign runs both compute
one :class:`Aggregate` per shard and merge them **in shard-index
order**, so the merged result — and any report rendered from it — is
byte-identical regardless of worker count or completion order.
Serialization (:meth:`Aggregate.to_json`) is canonical (sorted keys,
no whitespace), making the byte-equality testable and the on-disk
cache format stable.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.stats import FixedBinHistogram, StreamingMoments


class Aggregate:
    """A named bundle of counters, moments and histograms.

    This is the unit a shard returns and the unit the runner merges —
    scenario runners fill one per shard, the campaign runner folds them
    together keywise.  Missing keys merge as identity, so shards whose
    scenario skipped a metric (e.g. zero slow stations) still combine.
    """

    __slots__ = ("counts", "moments", "histograms")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.moments: Dict[str, StreamingMoments] = {}
        self.histograms: Dict[str, FixedBinHistogram] = {}

    # -- accessors (get-or-create) -------------------------------------
    def count(self, name: str, n: int = 1) -> int:
        self.counts[name] = self.counts.get(name, 0) + n
        return self.counts[name]

    def moment(self, name: str) -> StreamingMoments:
        m = self.moments.get(name)
        if m is None:
            m = self.moments[name] = StreamingMoments()
        return m

    def histogram(self, name: str, lo: float = 0.0, hi: float = 1.0,
                  n_bins: int = 100) -> FixedBinHistogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = FixedBinHistogram(lo, hi, n_bins)
        return h

    # -- merge ---------------------------------------------------------
    def merge(self, other: "Aggregate") -> "Aggregate":
        for name, n in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + n
        for name, m in other.moments.items():
            self.moment(name).merge(m)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = FixedBinHistogram.from_dict(h.to_dict())
            else:
                mine.merge(h)
        return self

    @classmethod
    def merged(cls, parts: Iterable["Aggregate"]) -> "Aggregate":
        out = cls()
        for part in parts:
            if part is not None:
                out.merge(part)
        return out

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counts": dict(sorted(self.counts.items())),
            "moments": {k: m.to_dict() for k, m in sorted(self.moments.items())},
            "histograms": {k: h.to_dict() for k, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Aggregate":
        a = cls()
        a.counts = {k: int(v) for k, v in d.get("counts", {}).items()}
        a.moments = {k: StreamingMoments.from_dict(v)
                     for k, v in d.get("moments", {}).items()}
        a.histograms = {k: FixedBinHistogram.from_dict(v)
                        for k, v in d.get("histograms", {}).items()}
        return a

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Aggregate":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Aggregate) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Aggregate counts={len(self.counts)} "
                f"moments={len(self.moments)} hists={len(self.histograms)}>")


def approx_equal_moments(a: StreamingMoments, b: StreamingMoments,
                         rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Merge-vs-onepass equality: exact on count/min/max, tolerant on
    the float accumulators (merging reassociates the sums)."""
    if a.count != b.count:
        return False
    if a.count == 0:
        return True
    return (a.minimum == b.minimum and a.maximum == b.maximum
            and math.isclose(a.mean, b.mean, rel_tol=rel, abs_tol=abs_tol)
            and math.isclose(a.m2, b.m2, rel_tol=rel, abs_tol=max(abs_tol, rel * a.count)))


class OrderedReducer:
    """Streaming index-order merge of per-shard aggregates.

    The fleet determinism contract requires merging shard aggregates in
    **shard-index order** (float merges reassociate, so order changes
    bytes).  A parallel runner, however, completes shards in arbitrary
    order.  This reducer reconciles the two: results are *offered* as
    they arrive, buffered only while an earlier index is outstanding,
    and merged — into the campaign-wide aggregate and the shard's
    per-point aggregate — the moment they become the next in-order
    index.  Memory is bounded by the out-of-order window (tracked in
    :attr:`max_buffered`), not the campaign size, and there is no
    end-of-run merge barrier.

    Quarantined shards are holes in the index sequence: mark them with
    ``offer(index, None)`` so the merge front can advance past them.
    """

    __slots__ = ("_labels", "_next", "_buffer", "_offered",
                 "aggregate", "per_point", "max_buffered")

    def __init__(self, point_labels: Sequence[str]) -> None:
        #: index -> grid-point label, in shard order
        self._labels = list(point_labels)
        self._next = 0
        self._buffer: Dict[int, Optional[Aggregate]] = {}
        self._offered: set = set()
        self.aggregate = Aggregate()
        #: insertion-ordered by first merged index = grid-point order
        self.per_point: Dict[str, Aggregate] = {}
        self.max_buffered = 0

    def offer(self, index: int, agg: Optional[Aggregate]) -> None:
        """Feed one shard's aggregate (or ``None`` for a skipped shard)."""
        if not 0 <= index < len(self._labels):
            raise IndexError(f"shard index {index} out of range")
        if index < self._next or index in self._buffer:
            raise ValueError(f"shard index {index} offered twice")
        self._offered.add(index)
        self._buffer[index] = agg
        self.max_buffered = max(self.max_buffered, len(self._buffer))
        while self._next in self._buffer:
            ready = self._buffer.pop(self._next)
            if ready is not None:
                self.aggregate.merge(ready)
                label = self._labels[self._next]
                point = self.per_point.get(label)
                if point is None:
                    self.per_point[label] = Aggregate().merge(ready)
                else:
                    point.merge(ready)
            self._next += 1

    @property
    def merged_through(self) -> int:
        """Number of leading indices already folded into the totals."""
        return self._next

    @property
    def pending(self) -> int:
        """Results buffered while an earlier index is outstanding."""
        return len(self._buffer)

    def finish(self) -> "Aggregate":
        """Assert every index was offered and return the final merge."""
        missing = [i for i in range(len(self._labels))
                   if i not in self._offered]
        if missing:
            raise ValueError(
                f"reducer finished with unmerged shard indices {missing[:5]}"
                f"{'…' if len(missing) > 5 else ''}")
        return self.aggregate


def merge_all(parts: Iterable[Optional[Aggregate]]) -> Aggregate:
    """Merge an iterable of (possibly None) aggregates in order."""
    out = Aggregate()
    for part in parts:
        if part is not None:
            out.merge(part)
    return out


def aggregate_from_registry(registry, prefix: str = "obs") -> Aggregate:
    """Lift a :class:`repro.obs.registry.MetricsRegistry` into an Aggregate.

    Counters map to counts, gauge moments and histogram moments to
    moments, histogram bins to histograms — all under ``<prefix>.`` so
    registry-derived metrics never collide with a scenario's own keys.
    Because the underlying primitives are shared
    (:mod:`repro.analysis.stats`), per-shard registries folded through
    this mapping merge byte-identically in the campaign runner.

    The import direction is deliberate: fleet (harness) depends on obs
    (sim), never the reverse.
    """
    agg = Aggregate()
    for name, counter in sorted(registry.counters.items()):
        agg.count(f"{prefix}.{name}", counter.value)
    for name, gauge in sorted(registry.gauges.items()):
        agg.moment(f"{prefix}.{name}").merge(gauge.moments)
    for name, hist in sorted(registry.histograms.items()):
        agg.moment(f"{prefix}.{name}").merge(hist.moments)
        bins = hist.bins
        agg.histogram(f"{prefix}.{name}", bins.lo, bins.hi,
                      len(bins.bins)).merge(bins)
    return agg


__all__: List[str] = [
    "StreamingMoments",
    "FixedBinHistogram",
    "Aggregate",
    "OrderedReducer",
    "aggregate_from_registry",
    "approx_equal_moments",
    "merge_all",
]
