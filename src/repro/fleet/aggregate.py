"""Mergeable streaming statistics for campaign shards.

A fleet worker must return an **O(1)-sized summary** of its shard, not
raw traces: a 10,000-seed campaign with per-message latency lists would
move gigabytes through the result queue.  Three mergeable primitives
cover everything the fleet reports need:

- :class:`StreamingMoments` — count / mean / M2 (Welford) plus min and
  max.  Merging uses the parallel-variance formula of Chan, Golub &
  LeVeque, so ``merge(agg(A), agg(B))`` equals ``agg(A + B)`` up to
  floating-point rounding (exactly, for count/min/max).
- :class:`FixedBinHistogram` — fixed-bin counts with underflow and
  overflow buckets; merging is elementwise integer addition (exact),
  and p50/p95/p99 are read off the cumulative counts with linear
  interpolation inside a bin.
- :class:`Aggregate` — a named bundle of integer counters, moments and
  histograms; merging is keywise union.

Determinism contract: serial and parallel campaign runs both compute
one :class:`Aggregate` per shard and merge them **in shard-index
order**, so the merged result — and any report rendered from it — is
byte-identical regardless of worker count or completion order.
Serialization (:meth:`Aggregate.to_json`) is canonical (sorted keys,
no whitespace), making the byte-equality testable and the on-disk
cache format stable.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional


class StreamingMoments:
    """Welford-style streaming count/mean/M2 with min/max, mergeable."""

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> "StreamingMoments":
        for x in xs:
            self.add(x)
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other`` into this accumulator (Chan et al. merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples."""
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        d = {"count": self.count, "mean": self.mean, "m2": self.m2}
        if self.count:  # inf sentinels are not JSON-portable
            d["min"] = self.minimum
            d["max"] = self.maximum
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "StreamingMoments":
        m = cls()
        m.count = int(d["count"])
        m.mean = float(d["mean"])
        m.m2 = float(d["m2"])
        if m.count:
            m.minimum = float(d["min"])
            m.maximum = float(d["max"])
        return m

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StreamingMoments) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Moments n={self.count} mean={self.mean:.6g} "
                f"std={self.std:.6g}>")


class FixedBinHistogram:
    """Equal-width histogram over ``[lo, hi)`` with exact merging.

    Out-of-range samples land in the underflow/overflow buckets and are
    treated as sitting at the range edge for percentile purposes, so
    percentiles stay defined (and conservative) even when the range
    guess was too tight.
    """

    __slots__ = ("lo", "hi", "bins", "underflow", "overflow")

    def __init__(self, lo: float, hi: float, n_bins: int = 100) -> None:
        if not (hi > lo) or n_bins <= 0:
            raise ValueError("need hi > lo and n_bins > 0")
        self.lo = lo
        self.hi = hi
        self.bins = [0] * n_bins
        self.underflow = 0
        self.overflow = 0

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / len(self.bins)

    @property
    def total(self) -> int:
        return sum(self.bins) + self.underflow + self.overflow

    def add(self, x: float) -> None:
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = int((x - self.lo) / (self.hi - self.lo) * len(self.bins))
            # float rounding at the top edge can yield len(bins)
            self.bins[min(idx, len(self.bins) - 1)] += 1

    def extend(self, xs: Iterable[float]) -> "FixedBinHistogram":
        for x in xs:
            self.add(x)
        return self

    def compatible(self, other: "FixedBinHistogram") -> bool:
        return (self.lo == other.lo and self.hi == other.hi
                and len(self.bins) == len(other.bins))

    def merge(self, other: "FixedBinHistogram") -> "FixedBinHistogram":
        if not self.compatible(other):
            raise ValueError(
                f"histogram configs differ: [{self.lo},{self.hi})x{len(self.bins)}"
                f" vs [{other.lo},{other.hi})x{len(other.bins)}")
        for i, c in enumerate(other.bins):
            self.bins[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def percentile(self, q: float) -> float:
        """Linear-in-bin percentile, ``q`` in [0, 100]; NaN when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        total = self.total
        if total == 0:
            return float("nan")
        rank = (q / 100.0) * total
        cum = self.underflow
        if rank <= cum:
            return self.lo
        for i, c in enumerate(self.bins):
            if c and rank <= cum + c:
                frac = (rank - cum) / c
                return self.lo + (i + frac) * self.bin_width
            cum += c
        return self.hi

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": list(self.bins),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FixedBinHistogram":
        h = cls(float(d["lo"]), float(d["hi"]), len(d["bins"]))
        h.bins = [int(c) for c in d["bins"]]
        h.underflow = int(d["underflow"])
        h.overflow = int(d["overflow"])
        return h

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FixedBinHistogram) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram [{self.lo},{self.hi}) n={self.total} "
                f"p50={self.p50:.4g} p95={self.p95:.4g}>")


class Aggregate:
    """A named bundle of counters, moments and histograms.

    This is the unit a shard returns and the unit the runner merges —
    scenario runners fill one per shard, the campaign runner folds them
    together keywise.  Missing keys merge as identity, so shards whose
    scenario skipped a metric (e.g. zero slow stations) still combine.
    """

    __slots__ = ("counts", "moments", "histograms")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.moments: Dict[str, StreamingMoments] = {}
        self.histograms: Dict[str, FixedBinHistogram] = {}

    # -- accessors (get-or-create) -------------------------------------
    def count(self, name: str, n: int = 1) -> int:
        self.counts[name] = self.counts.get(name, 0) + n
        return self.counts[name]

    def moment(self, name: str) -> StreamingMoments:
        m = self.moments.get(name)
        if m is None:
            m = self.moments[name] = StreamingMoments()
        return m

    def histogram(self, name: str, lo: float = 0.0, hi: float = 1.0,
                  n_bins: int = 100) -> FixedBinHistogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = FixedBinHistogram(lo, hi, n_bins)
        return h

    # -- merge ---------------------------------------------------------
    def merge(self, other: "Aggregate") -> "Aggregate":
        for name, n in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + n
        for name, m in other.moments.items():
            self.moment(name).merge(m)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = FixedBinHistogram.from_dict(h.to_dict())
            else:
                mine.merge(h)
        return self

    @classmethod
    def merged(cls, parts: Iterable["Aggregate"]) -> "Aggregate":
        out = cls()
        for part in parts:
            if part is not None:
                out.merge(part)
        return out

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counts": dict(sorted(self.counts.items())),
            "moments": {k: m.to_dict() for k, m in sorted(self.moments.items())},
            "histograms": {k: h.to_dict() for k, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Aggregate":
        a = cls()
        a.counts = {k: int(v) for k, v in d.get("counts", {}).items()}
        a.moments = {k: StreamingMoments.from_dict(v)
                     for k, v in d.get("moments", {}).items()}
        a.histograms = {k: FixedBinHistogram.from_dict(v)
                        for k, v in d.get("histograms", {}).items()}
        return a

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Aggregate":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Aggregate) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Aggregate counts={len(self.counts)} "
                f"moments={len(self.moments)} hists={len(self.histograms)}>")


def approx_equal_moments(a: StreamingMoments, b: StreamingMoments,
                         rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Merge-vs-onepass equality: exact on count/min/max, tolerant on
    the float accumulators (merging reassociates the sums)."""
    if a.count != b.count:
        return False
    if a.count == 0:
        return True
    return (a.minimum == b.minimum and a.maximum == b.maximum
            and math.isclose(a.mean, b.mean, rel_tol=rel, abs_tol=abs_tol)
            and math.isclose(a.m2, b.m2, rel_tol=rel, abs_tol=max(abs_tol, rel * a.count)))


def merge_all(parts: Iterable[Optional[Aggregate]]) -> Aggregate:
    """Merge an iterable of (possibly None) aggregates in order."""
    out = Aggregate()
    for part in parts:
        if part is not None:
            out.merge(part)
    return out


__all__: List[str] = [
    "StreamingMoments",
    "FixedBinHistogram",
    "Aggregate",
    "approx_equal_moments",
    "merge_all",
]
