"""Sharded campaign execution: warm worker pool, batching, streaming merge.

:func:`run_campaign` expands a :class:`Campaign` into shards and runs
them either serially (``workers <= 1``) or on a persistent process
pool.  The two modes are **aggregate-equivalent by construction**: both
compute one :class:`Aggregate` per shard and fold the per-shard
aggregates through an :class:`OrderedReducer`, which merges strictly in
shard-index order no matter when results arrive — so the merged result,
and any report rendered from it, is byte-identical regardless of worker
count, batching, scheduling, or completion order.

Why parallelism used to lose
----------------------------
The original pool dispatched one task per shard, re-pickled the
scenario name + params + seed into every attempt, and paid worker
startup per pool.  For campaigns of many ~10 ms shards the IPC and
setup overhead exceeded the work and parallel runs came out *slower*
than serial (BENCH_PR3: 0.82x at 2 and 4 workers).  Three coordinated
changes fix that:

- **Persistent warm workers** — the pool is created once per campaign
  with an initializer that installs the campaign spec (canonical JSON,
  sent once), rebuilds the tag->spec map, and resolves the scenario
  function.  Workers then receive only ``(tag, attempt, fault_mode)``
  tuples.  The pool context prefers ``fork`` (workers inherit the
  parent's imported simulation stack — the warmest start; the runner
  is single-threaded so fork is safe), with ``spawn``/``forkserver``
  selectable via ``mp_context``.
- **Batched shard dispatch** — :func:`plan_batches` rides many small
  shards on one worker task, auto-tuned so each worker sees
  ``OVERSUBSCRIBE`` batches (load balance) with batches weighted by the
  scenario's ``cost_hint`` (equal *cost*, not equal count).  Per-shard
  results are still produced, recorded, cached, and replayable
  individually.
- **Streaming reducers** — a shard result on the wire is the compact
  canonical aggregate JSON, and the runner merges results incrementally
  as batches complete (:class:`OrderedReducer`): bounded memory, no
  end-of-run merge barrier.

Fault tolerance
---------------
- A shard that raises is charged an attempt and re-queued (as a
  singleton batch) up to ``max_attempts`` times, with a decorrelated-
  jitter delay between attempts (:meth:`DecorrelatedBackoff.from_tag`
  seeded from the campaign, so even the retry schedule is
  reproducible).  A raising shard never takes down its batch: the
  worker records the error per shard and keeps running the siblings.
- A shard whose **worker process dies** (segfault, OOM kill, injected
  ``os._exit``) breaks the pool: every in-flight future fails with
  :class:`BrokenProcessPool`.  The runner rebuilds the pool and reruns
  each in-flight shard alone in a single-worker pool — the culprit
  keeps breaking (only) its private pool until its attempts are
  exhausted and it is **quarantined**; innocent batch-mates succeed.
- A batch that exceeds its deadline (``shard_timeout`` x batch length)
  is charged an attempt per shard and re-queued as singletons; the
  abandoned future is ignored if it ever completes.
- Quarantined shards never fail the campaign: they are excluded from
  the merge (the reducer skips their index) and listed in the report,
  and each one is individually replayable from its tag
  (``python -m repro fleet --replay TAG``) because shard seeds depend
  only on ``(base_seed, tag)``.

Fault injection (for tests and the CI ``fleet-smoke`` job) is a
first-class input: :class:`FaultInjection` names shard tags that must
misbehave, either by raising or by killing their worker process.  In
serial mode a "kill" downgrades to a raise — the fallback must never
take down the caller.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.resilience import DecorrelatedBackoff
from repro.fleet.aggregate import Aggregate, OrderedReducer
from repro.fleet.cache import ResultCache
from repro.fleet.campaign import Campaign, ScenarioDef, ShardSpec, get_scenario
from repro.fleet.flight import FlightRecorder, collect_flight_dump
from repro.fleet.telemetry import TelemetryCollector, rss_kib

#: Auto-batching targets this many batches per worker: enough slack for
#: load balancing across heterogeneous shards, few enough that IPC per
#: batch is amortized over many shards.
OVERSUBSCRIBE = 4

#: Hard cap on shards per batch: bounds the blast radius of a mid-batch
#: worker death and keeps batch timeouts/requeues reasonably granular.
MAX_BATCH = 64

#: Modules the forkserver preloads so post-break pool rebuilds fork from
#: an interpreter that has already paid the scenario import cost.
_PRELOAD_MODULES = ["repro.fleet.scenarios"]


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the process: under a
    CPU-affinity mask or a container quota it overstates usable
    parallelism, and sizing a pool from it guarantees oversubscription
    (BENCH_PR3 ran 4 workers on a 1-core box).  Prefer the scheduling
    affinity, falling back where the platform lacks it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # macOS/Windows have no affinity API
        return os.cpu_count() or 1


class ShardError(RuntimeError):
    """A shard attempt failed inside the runner (injected or real)."""


@dataclass(frozen=True)
class FaultInjection:
    """Deterministic misbehaviour for named shards.

    ``mode="raise"`` makes the shard raise :class:`ShardError`;
    ``mode="kill"`` makes it terminate its worker process without
    cleanup (exercising the broken-pool path).  ``fail_attempts``
    bounds how many attempts misbehave — ``None`` means every attempt,
    which drives the shard into quarantine.
    """

    tags: Tuple[str, ...]
    mode: str = "raise"              # "raise" | "kill"
    fail_attempts: Optional[int] = None

    def active(self, tag: str, attempt: int) -> bool:
        if tag not in self.tags:
            return False
        return self.fail_attempts is None or attempt < self.fail_attempts


@dataclass
class ShardOutcome:
    """What happened to one shard over the whole campaign."""

    tag: str
    index: int
    status: str                      # "ok" | "quarantined"
    attempts: int
    cached: bool = False
    error: Optional[str] = None
    #: scenario name, so a quarantine record is replayable on its own
    #: (``python -m repro fleet <scenario> --replay TAG``) without the
    #: surrounding FleetResult for context.
    scenario: Optional[str] = None
    #: full error history, one entry per failed attempt (``error`` keeps
    #: only the last); pooled real failures carry the worker traceback.
    errors: List[str] = field(default_factory=list)
    #: path of the flight-recorder artifact collected for a quarantined
    #: shard (None when no recorder ran or nothing matched the tag).
    flight: Optional[str] = None


@dataclass
class FleetResult:
    """A finished campaign: merged aggregates plus execution accounting."""

    campaign: Campaign
    aggregate: Aggregate
    per_point: Dict[str, Aggregate]   # insertion-ordered by grid point
    outcomes: List[ShardOutcome]
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed: float = 0.0
    workers: int = 1
    #: batches dispatched to the pool (0 for serial / fully cached runs)
    n_batches: int = 0
    #: peak number of out-of-order results the streaming reducer buffered
    max_buffered: int = 0
    #: multiprocessing start method the pool used (None for serial)
    start_method: Optional[str] = None
    #: reporting hints copied from the ScenarioDef (keeps report
    #: rendering free of fleet imports)
    latency_key: Optional[str] = None
    rate_key: Optional[str] = None
    moment_keys: Tuple[str, ...] = ()
    #: finalized campaign_telemetry.json document when a
    #: :class:`~repro.fleet.telemetry.TelemetryCollector` was passed to
    #: :func:`run_campaign`; wall-clock only, never part of the
    #: deterministic result surface.
    telemetry: Optional[dict] = None

    @property
    def quarantined(self) -> List[str]:
        return [o.tag for o in self.outcomes if o.status == "quarantined"]

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")


# ----------------------------------------------------------------------
# Worker-side: one-time spec install + batch execution
# ----------------------------------------------------------------------
#: Per-worker-process state installed once by :func:`_worker_init`.
_WORKER: dict = {}


def _worker_init(spec_json: str, telemetry_epoch: Optional[float] = None,
                 flight_dir: Optional[str] = None) -> None:
    """Pool initializer: install the campaign spec in this worker.

    Runs once per worker process for the lifetime of the pool.  After
    this, a shard task is a ``(tag, attempt, fault_mode)`` tuple — the
    spec, the scenario import, and the tag->spec expansion are never
    shipped or rebuilt per attempt.

    ``telemetry_epoch`` is the driver's ``time.monotonic()`` reading at
    collector creation; when set, batch execution stamps its telemetry
    events with offsets from it (CLOCK_MONOTONIC is system-wide, so the
    offsets line up across processes).  ``flight_dir`` turns on the
    crash flight recorder: a process-wide engine trace hook plus a
    spill file at every shard boundary.
    """
    campaign = Campaign.from_spec_dict(json.loads(spec_json))
    scenario = get_scenario(campaign.scenario)
    _WORKER["specs"] = campaign.shard_map()
    _WORKER["fn"] = scenario.fn
    _WORKER["epoch"] = telemetry_epoch
    flight = None
    if flight_dir is not None:
        flight = FlightRecorder(flight_dir)
        flight.install()
    _WORKER["flight"] = flight


#: One shard task on the wire: (tag, attempt, injected fault mode).
_Task = Tuple[str, int, Optional[str]]
#: One shard result on the wire: (tag, "ok"|"err", aggregate JSON | error).
_TaskResult = Tuple[str, str, str]
#: One batch result on the wire: per-shard results + telemetry events
#: (empty list when the driver did not pass an epoch — results first so
#: the determinism-bearing payload never moves).
_BatchResult = Tuple[List[_TaskResult], List[dict]]


def _execute_batch(tasks: Sequence[_Task]) -> _BatchResult:
    """Run a batch of shard tasks in this (pre-warmed) worker.

    Per-shard failures are *data*, not exceptions: a raising shard is
    reported as ``("err", message)`` carrying the worker-side traceback,
    and its batch-mates still run.  Only a process-killing fault (or a
    genuine crash) loses the batch, which the runner repairs via
    single-shard isolation.
    """
    specs: Dict[str, ShardSpec] = _WORKER["specs"]
    fn = _WORKER["fn"]
    epoch = _WORKER.get("epoch")
    flight: Optional[FlightRecorder] = _WORKER.get("flight")
    pid = os.getpid()
    events: List[dict] = []
    b0 = time.monotonic() - epoch if epoch is not None else 0.0
    out: List[_TaskResult] = []
    for tag, attempt, fault_mode in tasks:
        if flight is not None:
            # Spill *before* the kill check: a dying worker must leave
            # a flight artifact naming its victim shard behind.
            flight.begin_shard(tag, attempt)
        if fault_mode == "kill":
            os._exit(86)  # simulate a crashed/OOM-killed worker
        if fault_mode:
            out.append((tag, "err",
                        f"ShardError: injected {fault_mode} fault in shard "
                        f"{tag!r} (attempt {attempt})"))
            continue
        spec = specs[tag]
        t0 = time.monotonic() - epoch if epoch is not None else 0.0
        try:
            out.append((tag, "ok", fn(spec.seed, spec.param_dict()).to_json()))
            ok = True
        except Exception as exc:  # noqa: BLE001 - reported per shard, retried
            tb = traceback.format_exc()
            if flight is not None:
                flight.dump_crash(tag, attempt, tb)
            out.append((tag, "err", f"{type(exc).__name__}: {exc}\n{tb}"))
            ok = False
        if epoch is not None:
            events.append({"ev": "shard", "pid": pid, "tag": tag,
                           "attempt": attempt, "t0": t0,
                           "t1": time.monotonic() - epoch, "ok": ok})
    if epoch is not None:
        events.append({"ev": "batch", "pid": pid, "t0": b0,
                       "t1": time.monotonic() - epoch, "n": len(tasks),
                       "rss_kib": rss_kib()})
    return out, events


def _run_shard_inline(spec: ShardSpec, fn, attempt: int,
                      faults: Optional[FaultInjection]) -> str:
    """Serial fallback for one shard (kill downgrades to raise)."""
    if faults is not None and faults.active(spec.tag, attempt):
        raise ShardError(
            f"injected {faults.mode} fault in shard {spec.tag!r} "
            f"(attempt {attempt})")
    return fn(spec.seed, spec.param_dict()).to_json()


# ----------------------------------------------------------------------
# Batch planning
# ----------------------------------------------------------------------
def plan_batches(states: Sequence["_ShardState"], workers: int,
                 batch_size: Optional[int] = None,
                 scenario: Optional[ScenarioDef] = None) -> List[List["_ShardState"]]:
    """Cut shards into contiguous worker batches (deterministic).

    ``batch_size`` forces fixed-size batches (1 = the old one-task-per-
    shard dispatch).  ``None`` auto-tunes: ~``OVERSUBSCRIBE`` batches
    per worker, weighted by the scenario's ``cost_hint`` so a grid
    mixing cheap and expensive points yields equal-*cost* batches, and
    capped at ``MAX_BATCH`` shards.  Batching never affects results —
    shards are recorded individually and merged by index — only how
    much work rides each IPC round trip.
    """
    states = list(states)
    if not states:
        return []
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return [states[i:i + batch_size]
                for i in range(0, len(states), batch_size)]

    n = len(states)
    n_batches = min(n, max(1, workers) * OVERSUBSCRIBE)
    batches: List[List["_ShardState"]] = []
    if scenario is not None and scenario.cost_hint is not None:
        costs = [scenario.shard_cost(s.spec.param_dict()) for s in states]
        target = sum(costs) / n_batches
        cur: List["_ShardState"] = []
        acc = 0.0
        for state, cost in zip(states, costs):
            cur.append(state)
            acc += cost
            if ((acc >= target or len(cur) >= MAX_BATCH)
                    and len(batches) < n_batches - 1):
                batches.append(cur)
                cur, acc = [], 0.0
        if cur:
            batches.append(cur)
    else:
        size = min(MAX_BATCH, math.ceil(n / n_batches))
        batches = [states[i:i + size] for i in range(0, n, size)]
    # A weighted tail can exceed the cap when n >> n_batches * MAX_BATCH.
    capped: List[List["_ShardState"]] = []
    for batch in batches:
        for i in range(0, len(batch), MAX_BATCH):
            capped.append(batch[i:i + MAX_BATCH])
    return capped


def batch_cost_efficiency(batches: Sequence[Sequence["_ShardState"]],
                          scenario: Optional[ScenarioDef] = None) -> float:
    """Load-balance efficiency of a batch plan, in (0, 1].

    Parallel wall time is governed by the *heaviest* batch, so the
    useful figure is mean batch cost over peak batch cost: 1.0 means
    perfectly level batches, 0.5 means the heaviest batch carries twice
    the average and half the fleet idles while it drains.  Costs come
    from the scenario's ``cost_hint`` (shard count when there is none)
    — the same weights :func:`plan_batches` planned with, so this
    audits the planner's own objective.  Hierarchical shard lists
    (repro.scale's city → cell → cohort grids, where member-0 shards
    carry extra fluid-aggregation and promotion cost) are the case that
    keeps this honest: the planner must stay ≥0.6 on them (pinned by
    ``tests/test_fleet_workers.py``).
    """
    if not batches:
        return 1.0
    if scenario is not None and scenario.cost_hint is not None:
        costs = [sum(scenario.shard_cost(s.spec.param_dict()) for s in batch)
                 for batch in batches]
    else:
        costs = [float(len(batch)) for batch in batches]
    peak = max(costs)
    if peak <= 0:
        return 1.0
    return (sum(costs) / len(costs)) / peak


def _pool_context(method: Optional[str] = None):
    """Pick the multiprocessing context for the warm pool.

    Prefers ``fork`` — workers inherit the parent's already-imported
    simulation stack, which is the warmest possible start (measured
    ~20 ms to spin a 2-worker pool vs ~1 s+ for spawn/forkserver, which
    re-import the main module per worker).  The runner is
    single-threaded, so fork is safe here.  Where fork is unavailable
    (Windows/macOS-spawn), falls back to ``spawn``; ``forkserver`` can
    be requested explicitly and gets the scenario module preloaded so
    post-break pool rebuilds fork from a warm server.
    """
    if method is None:
        method = ("fork"
                  if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
    ctx = multiprocessing.get_context(method)
    if method == "forkserver":
        try:
            ctx.set_forkserver_preload(_PRELOAD_MODULES)
        except Exception:  # pragma: no cover - preload is best-effort
            pass
    return ctx


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
@dataclass
class _ShardState:
    spec: ShardSpec
    attempts: int = 0
    errors: List[str] = field(default_factory=list)


ProgressFn = Callable[[int, int, float], None]


def run_campaign(
    campaign: Campaign,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    max_attempts: int = 3,
    shard_timeout: float = 300.0,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    faults: Optional[FaultInjection] = None,
    progress: Optional[ProgressFn] = None,
    batch_size: Optional[int] = None,
    mp_context: Optional[str] = None,
    telemetry: Optional[TelemetryCollector] = None,
    flight_dir=None,
) -> FleetResult:
    """Run every shard of ``campaign`` and merge the results.

    ``workers <= 1`` selects the serial in-process fallback; otherwise a
    persistent warm process pool of that size.  ``batch_size`` pins the
    shards-per-task batch (``None`` auto-tunes, ``1`` restores unbatched
    dispatch); ``mp_context`` pins the multiprocessing start method.
    ``cache`` (optional) is consulted before any execution and updated
    after every successful shard.

    ``telemetry`` (optional :class:`TelemetryCollector`) turns on the
    wall-clock telemetry bus; the finalized document lands in
    ``FleetResult.telemetry``.  ``flight_dir`` (optional path) arms the
    crash flight recorder in every worker (and in-process for serial
    runs); quarantine records then carry the matching flight artifact
    path.  Neither affects any aggregate byte — pinned by
    ``tests/test_fleet_telemetry.py``.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    shards = campaign.shards()
    scenario = get_scenario(campaign.scenario)
    t0 = time.monotonic()
    reducer = OrderedReducer([s.point_label for s in shards])
    outcomes: Dict[int, ShardOutcome] = {}
    backoff = DecorrelatedBackoff.from_tag(
        campaign.base_seed, f"fleet-retry:{campaign.name}",
        base=backoff_base, cap=backoff_cap)

    # -- cache pass ----------------------------------------------------
    cache_t0 = telemetry.now() if telemetry is not None else 0.0
    todo: List[ShardSpec] = []
    cache_hits = cache_misses = 0
    for spec in shards:
        agg = cache.get(campaign, spec) if cache is not None else None
        if agg is not None:
            reducer.offer(spec.index, agg)
            outcomes[spec.index] = ShardOutcome(
                tag=spec.tag, index=spec.index, status="ok", attempts=0,
                cached=True, scenario=campaign.scenario)
            cache_hits += 1
        else:
            todo.append(spec)
            if cache is not None:
                cache_misses += 1
    if telemetry is not None and cache is not None:
        telemetry.record({"ev": "cache_pass", "t0": cache_t0,
                          "t1": telemetry.now(), "hits": cache_hits,
                          "misses": cache_misses})

    def record_ok(spec: ShardSpec, attempts: int, agg_json: str) -> None:
        agg = Aggregate.from_json(agg_json)
        reducer.offer(spec.index, agg)
        outcomes[spec.index] = ShardOutcome(
            tag=spec.tag, index=spec.index, status="ok", attempts=attempts,
            scenario=campaign.scenario)
        if telemetry is not None:
            telemetry.record({"ev": "merge", "t": telemetry.now(),
                              "tag": spec.tag, "buffered": reducer.pending})
        if cache is not None:
            cache.put(campaign, spec, agg)
        if progress is not None:
            progress(len(outcomes), len(shards), time.monotonic() - t0)

    def record_quarantine(state: _ShardState) -> None:
        reducer.offer(state.spec.index, None)
        flight_path = None
        if flight_dir is not None:
            found = collect_flight_dump(flight_dir, state.spec.tag)
            flight_path = str(found) if found is not None else None
        outcomes[state.spec.index] = ShardOutcome(
            tag=state.spec.tag, index=state.spec.index, status="quarantined",
            attempts=state.attempts,
            error=state.errors[-1] if state.errors else None,
            scenario=campaign.scenario,
            errors=list(state.errors),
            flight=flight_path)
        if telemetry is not None:
            telemetry.record({"ev": "quarantine", "t": telemetry.now(),
                              "tag": state.spec.tag,
                              "attempts": state.attempts})
        if progress is not None:
            progress(len(outcomes), len(shards), time.monotonic() - t0)

    n_batches = 0
    start_method: Optional[str] = None
    if workers <= 1:
        flight = None
        if flight_dir is not None:
            flight = FlightRecorder(flight_dir)
            flight.install()
        try:
            _run_serial(todo, scenario, faults, max_attempts, backoff,
                        record_ok, record_quarantine,
                        telemetry=telemetry, flight=flight)
        finally:
            if flight is not None:
                flight.uninstall()
    else:
        ctx = _pool_context(mp_context)
        start_method = ctx.get_start_method()
        n_batches = _run_pool(campaign, todo, scenario, faults, workers,
                              batch_size, ctx, max_attempts, shard_timeout,
                              backoff, record_ok, record_quarantine,
                              telemetry=telemetry, flight_dir=flight_dir)

    result = FleetResult(
        campaign=campaign,
        aggregate=reducer.finish(),
        per_point=reducer.per_point,
        outcomes=[outcomes[s.index] for s in shards],
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        elapsed=time.monotonic() - t0,
        workers=max(1, workers),
        n_batches=n_batches,
        max_buffered=reducer.max_buffered,
        start_method=start_method,
        latency_key=scenario.latency_key,
        rate_key=scenario.rate_key,
        moment_keys=scenario.moment_keys,
    )
    if telemetry is not None:
        result.telemetry = telemetry.finalize(
            campaign, scenario, result, flight_dir=flight_dir)
    return result


def run_shard(campaign: Campaign, tag: str) -> Aggregate:
    """Replay a single shard (e.g. a quarantined one) in-process."""
    spec = campaign.shard_by_tag(tag)
    fn = get_scenario(campaign.scenario).fn
    # Round-trip through canonical JSON exactly like pooled/cached
    # results, so a replay is byte-comparable with campaign output.
    return Aggregate.from_json(
        _run_shard_inline(spec, fn, attempt=0, faults=None))


# ----------------------------------------------------------------------
def _run_serial(todo, scenario, faults, max_attempts, backoff,
                record_ok, record_quarantine, telemetry=None,
                flight=None) -> None:
    pid = os.getpid()
    for spec in todo:
        state = _ShardState(spec)
        while state.attempts < max_attempts:
            attempt = state.attempts
            state.attempts += 1
            if flight is not None:
                flight.begin_shard(spec.tag, attempt)
            t0 = telemetry.now() if telemetry is not None else 0.0
            try:
                record_ok(spec, state.attempts,
                          _run_shard_inline(spec, scenario.fn, attempt, faults))
                if telemetry is not None:
                    telemetry.record({"ev": "shard", "pid": pid,
                                      "tag": spec.tag, "attempt": attempt,
                                      "t0": t0, "t1": telemetry.now(),
                                      "ok": True})
                break
            except Exception as exc:  # noqa: BLE001 - any shard failure retries
                tb = traceback.format_exc()
                if flight is not None:
                    flight.dump_crash(spec.tag, attempt, tb)
                state.errors.append(f"{type(exc).__name__}: {exc}\n{tb}")
                if telemetry is not None:
                    telemetry.record({"ev": "shard", "pid": pid,
                                      "tag": spec.tag, "attempt": attempt,
                                      "t0": t0, "t1": telemetry.now(),
                                      "ok": False})
                if state.attempts < max_attempts:
                    if telemetry is not None:
                        telemetry.record({"ev": "retry", "t": telemetry.now(),
                                          "tag": spec.tag,
                                          "attempt": state.attempts,
                                          "error": type(exc).__name__})
                    time.sleep(backoff.next())
        else:
            record_quarantine(state)


def _run_pool(campaign, todo, scenario, faults, workers, batch_size, ctx,
              max_attempts, shard_timeout, backoff,
              record_ok, record_quarantine, telemetry=None,
              flight_dir=None) -> int:
    """Persistent-pool execution; returns the number of dispatched batches."""
    spec_json = campaign.spec_json()
    epoch = telemetry.epoch if telemetry is not None else None
    flight_arg = str(flight_dir) if flight_dir is not None else None

    def make_pool(n: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=n, mp_context=ctx,
            initializer=_worker_init,
            initargs=(spec_json, epoch, flight_arg))

    pending: deque = deque(
        plan_batches([_ShardState(spec) for spec in todo],
                     workers, batch_size, scenario))
    pool = make_pool(workers)
    in_flight: Dict[object, Tuple[List[_ShardState], float]] = {}
    abandoned = False
    dispatched = 0
    try:
        while pending or in_flight:
            pool_broken = False
            # Keep the pool saturated but bounded: 2 queued per slot.
            while pending and len(in_flight) < 2 * workers:
                batch = pending.popleft()
                tasks: List[_Task] = []
                for state in batch:
                    fault_mode = (faults.mode if faults is not None
                                  and faults.active(state.spec.tag, state.attempts)
                                  else None)
                    tasks.append((state.spec.tag, state.attempts, fault_mode))
                    state.attempts += 1
                try:
                    fut = pool.submit(_execute_batch, tuple(tasks))
                except BrokenProcessPool:
                    pool_broken = True
                    for state in batch:
                        state.errors.append("BrokenProcessPool: submit refused")
                        _requeue(state, pending, max_attempts,
                                 record_quarantine, telemetry)
                    break
                dispatched += 1
                if telemetry is not None:
                    telemetry.record({"ev": "dispatch", "t": telemetry.now(),
                                      "batch": dispatched, "n": len(tasks)})
                in_flight[fut] = (batch,
                                  time.monotonic()
                                  + shard_timeout * max(1, len(batch)))

            done, _ = wait(list(in_flight), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            casualties: List[_ShardState] = []
            for fut in done:
                batch, _deadline = in_flight.pop(fut)
                try:
                    results, worker_events = fut.result()
                except BrokenProcessPool:
                    pool_broken = True
                    for state in batch:
                        state.errors.append(
                            f"BrokenProcessPool: worker died (shard "
                            f"{state.spec.tag!r}, attempt {state.attempts})")
                    casualties.extend(batch)
                except Exception as exc:  # noqa: BLE001 - whole batch failed
                    for state in batch:
                        state.errors.append(f"{type(exc).__name__}: {exc}")
                        _requeue(state, pending, max_attempts,
                                 record_quarantine, telemetry)
                else:
                    by_tag = {state.spec.tag: state for state in batch}
                    for tag, status, payload in results:
                        state = by_tag.pop(tag)
                        if status == "ok":
                            record_ok(state.spec, state.attempts, payload)
                        else:
                            state.errors.append(payload)
                            _requeue(state, pending, max_attempts,
                                     record_quarantine, telemetry)
                    for state in by_tag.values():  # pragma: no cover - defensive
                        state.errors.append("shard missing from batch result")
                        _requeue(state, pending, max_attempts,
                                 record_quarantine, telemetry)
                    if telemetry is not None:
                        telemetry.absorb(worker_events)
                        telemetry.record({"ev": "batch_done",
                                          "t": telemetry.now(),
                                          "n": len(results)})

            if pool_broken:
                # A dead worker poisons every in-flight future, and the
                # executor API cannot say *which* shard killed it.  Rerun
                # each suspect alone in a single-worker pool: innocents
                # complete, the culprit breaks its private pool and is
                # charged — repeatedly, until quarantined — without
                # collateral.
                suspects = casualties + [
                    state for batch, _ in in_flight.values() for state in batch]
                in_flight.clear()
                pool.shutdown(wait=True, cancel_futures=True)
                if telemetry is not None:
                    telemetry.record({"ev": "pool_break", "t": telemetry.now(),
                                      "suspects": len(suspects)})
                time.sleep(backoff.next())
                _isolate_suspects(suspects, faults, max_attempts,
                                  shard_timeout, make_pool, pending,
                                  record_ok, record_quarantine, telemetry)
                pool = make_pool(workers)
                continue

            now = time.monotonic()
            for fut, (batch, deadline) in list(in_flight.items()):
                if now >= deadline:
                    # Can't kill one worker through the executor API —
                    # abandon the future (its late result, if any, is
                    # ignored because the entry leaves in_flight) and
                    # charge the attempt; members retry as singletons.
                    del in_flight[fut]
                    abandoned = True
                    if telemetry is not None:
                        telemetry.record({"ev": "timeout",
                                          "t": telemetry.now(),
                                          "n": len(batch)})
                    for state in batch:
                        state.errors.append(
                            f"timeout after {shard_timeout * max(1, len(batch)):.1f}s")
                        _requeue(state, pending, max_attempts,
                                 record_quarantine, telemetry)
    finally:
        # wait= joins the workers so nothing races interpreter teardown;
        # only skip the join when a timed-out batch was abandoned and a
        # zombie worker may still be chewing on it.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    return dispatched


def _isolate_suspects(suspects, faults, max_attempts, shard_timeout,
                      make_pool, pending: deque,
                      record_ok, record_quarantine, telemetry=None) -> None:
    """Identify which broken-pool casualty actually kills workers.

    Each suspect gets one attempt in its own single-worker (warm) pool.
    An innocent batch-mate completes and is recorded; the culprit
    breaks (only) its private pool, is charged the attempt, and is
    re-queued — or quarantined once its budget is spent.
    """
    for state in suspects:
        if state.attempts >= max_attempts:
            record_quarantine(state)
            continue
        fault_mode = (faults.mode if faults is not None
                      and faults.active(state.spec.tag, state.attempts)
                      else None)
        task = (state.spec.tag, state.attempts, fault_mode)
        state.attempts += 1
        iso = make_pool(1)
        try:
            results, worker_events = iso.submit(
                _execute_batch, (task,)).result(timeout=shard_timeout)
            if telemetry is not None:
                telemetry.absorb(worker_events)
            tag, status, payload = results[0]
            if status == "ok":
                record_ok(state.spec, state.attempts, payload)
            else:
                state.errors.append(payload)
                _requeue(state, pending, max_attempts, record_quarantine,
                         telemetry)
        except BrokenProcessPool:
            state.errors.append(
                f"BrokenProcessPool: worker died in isolation running shard "
                f"{state.spec.tag!r} (attempt {state.attempts})")
            _requeue(state, pending, max_attempts, record_quarantine,
                     telemetry)
        except Exception as exc:  # noqa: BLE001 - incl. TimeoutError
            state.errors.append(
                f"{type(exc).__name__}: {exc} "
                f"[isolation of shard {state.spec.tag!r}, "
                f"attempt {state.attempts}]")
            _requeue(state, pending, max_attempts, record_quarantine,
                     telemetry)
        finally:
            iso.shutdown(wait=True, cancel_futures=True)


def _requeue(state: _ShardState, pending: deque, max_attempts: int,
             record_quarantine, telemetry=None) -> None:
    if state.attempts >= max_attempts:
        record_quarantine(state)
    else:
        if telemetry is not None:
            telemetry.record({
                "ev": "retry", "t": telemetry.now(), "tag": state.spec.tag,
                "attempt": state.attempts,
                "error": (state.errors[-1].splitlines()[0]
                          if state.errors else None)})
        pending.append([state])   # retries run as singleton batches


__all__ = [
    "FaultInjection",
    "FleetResult",
    "MAX_BATCH",
    "OVERSUBSCRIBE",
    "ShardError",
    "ShardOutcome",
    "batch_cost_efficiency",
    "plan_batches",
    "run_campaign",
    "run_shard",
    "usable_cpus",
]
