"""Sharded campaign execution: process pool, retries, quarantine.

:func:`run_campaign` expands a :class:`Campaign` into shards and runs
them either serially (``workers <= 1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The two modes are
**aggregate-equivalent by construction**: both compute one
:class:`Aggregate` per shard and merge the per-shard aggregates in
shard-index order, so the merged result — and any report rendered from
it — is byte-identical regardless of worker count, scheduling, or
completion order.

Fault tolerance
---------------
- A shard that raises is retried up to ``max_attempts`` times with a
  decorrelated-jitter delay between attempts
  (:meth:`DecorrelatedBackoff.from_tag` seeded from the campaign, so
  even the retry schedule is reproducible).
- A shard whose **worker process dies** (segfault, OOM kill, injected
  ``os._exit``) breaks the pool: every in-flight future fails with
  :class:`BrokenProcessPool`.  The runner rebuilds the pool and
  re-queues all in-flight shards with an attempt charged — the culprit
  keeps breaking pools until its attempts are exhausted and it is
  **quarantined**; innocent bystanders succeed on their next attempt.
- A shard that exceeds ``shard_timeout`` is charged an attempt and
  re-queued; its abandoned future is ignored if it ever completes.
- Quarantined shards never fail the campaign: they are excluded from
  the merge and listed in the report, and each one is individually
  replayable from its tag (``python -m repro fleet --replay TAG``)
  because shard seeds depend only on ``(base_seed, tag)``.

Fault injection (for tests and the CI ``fleet-smoke`` job) is a
first-class input: :class:`FaultInjection` names shard tags that must
misbehave, either by raising or by killing their worker process.  In
serial mode a "kill" downgrades to a raise — the fallback must never
take down the caller.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.resilience import DecorrelatedBackoff
from repro.fleet.aggregate import Aggregate
from repro.fleet.cache import ResultCache
from repro.fleet.campaign import Campaign, ShardSpec, get_scenario


class ShardError(RuntimeError):
    """A shard attempt failed inside the runner (injected or real)."""


@dataclass(frozen=True)
class FaultInjection:
    """Deterministic misbehaviour for named shards.

    ``mode="raise"`` makes the shard raise :class:`ShardError`;
    ``mode="kill"`` makes it terminate its worker process without
    cleanup (exercising the broken-pool path).  ``fail_attempts``
    bounds how many attempts misbehave — ``None`` means every attempt,
    which drives the shard into quarantine.
    """

    tags: Tuple[str, ...]
    mode: str = "raise"              # "raise" | "kill"
    fail_attempts: Optional[int] = None

    def active(self, tag: str, attempt: int) -> bool:
        if tag not in self.tags:
            return False
        return self.fail_attempts is None or attempt < self.fail_attempts


@dataclass
class ShardOutcome:
    """What happened to one shard over the whole campaign."""

    tag: str
    index: int
    status: str                      # "ok" | "quarantined"
    attempts: int
    cached: bool = False
    error: Optional[str] = None


@dataclass
class FleetResult:
    """A finished campaign: merged aggregates plus execution accounting."""

    campaign: Campaign
    aggregate: Aggregate
    per_point: Dict[str, Aggregate]   # insertion-ordered by grid point
    outcomes: List[ShardOutcome]
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed: float = 0.0
    workers: int = 1
    #: reporting hints copied from the ScenarioDef (keeps report
    #: rendering free of fleet imports)
    latency_key: Optional[str] = None
    rate_key: Optional[str] = None
    moment_keys: Tuple[str, ...] = ()

    @property
    def quarantined(self) -> List[str]:
        return [o.tag for o in self.outcomes if o.status == "quarantined"]

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")


# ----------------------------------------------------------------------
# The worker-side entry point (must be a picklable top-level function)
# ----------------------------------------------------------------------
def _execute_shard(payload: dict) -> str:
    """Run one shard and return its canonical aggregate JSON.

    Runs in a worker process under the pool, and in-process for the
    serial fallback (``in_worker=False`` downgrades kill-faults so the
    fallback never exits the caller).
    """
    fault_mode = payload.get("fault_mode")
    if fault_mode:
        if fault_mode == "kill" and payload.get("in_worker", False):
            os._exit(86)  # simulate a crashed/OOM-killed worker
        raise ShardError(
            f"injected {fault_mode} fault in shard {payload['tag']!r} "
            f"(attempt {payload['attempt']})")
    scenario = get_scenario(payload["scenario"])
    agg = scenario.fn(payload["seed"], dict(payload["params"]))
    return agg.to_json()


def _payload(spec: ShardSpec, attempt: int, in_worker: bool,
             faults: Optional[FaultInjection]) -> dict:
    return {
        "scenario": spec.scenario,
        "seed": spec.seed,
        "params": spec.params,
        "tag": spec.tag,
        "attempt": attempt,
        "in_worker": in_worker,
        "fault_mode": faults.mode
        if faults is not None and faults.active(spec.tag, attempt) else None,
    }


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
@dataclass
class _ShardState:
    spec: ShardSpec
    attempts: int = 0
    errors: List[str] = field(default_factory=list)


ProgressFn = Callable[[int, int, float], None]


def run_campaign(
    campaign: Campaign,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    max_attempts: int = 3,
    shard_timeout: float = 300.0,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    faults: Optional[FaultInjection] = None,
    progress: Optional[ProgressFn] = None,
) -> FleetResult:
    """Run every shard of ``campaign`` and merge the results.

    ``workers <= 1`` selects the serial in-process fallback; otherwise a
    process pool of that size.  ``cache`` (optional) is consulted before
    any execution and updated after every successful shard.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    shards = campaign.shards()
    scenario = get_scenario(campaign.scenario)
    t0 = time.monotonic()
    results: Dict[int, Aggregate] = {}
    outcomes: Dict[int, ShardOutcome] = {}
    backoff = DecorrelatedBackoff.from_tag(
        campaign.base_seed, f"fleet-retry:{campaign.name}",
        base=backoff_base, cap=backoff_cap)

    # -- cache pass ----------------------------------------------------
    todo: List[ShardSpec] = []
    cache_hits = cache_misses = 0
    for spec in shards:
        agg = cache.get(campaign, spec) if cache is not None else None
        if agg is not None:
            results[spec.index] = agg
            outcomes[spec.index] = ShardOutcome(
                tag=spec.tag, index=spec.index, status="ok", attempts=0,
                cached=True)
            cache_hits += 1
        else:
            todo.append(spec)
            if cache is not None:
                cache_misses += 1

    def record_ok(spec: ShardSpec, attempts: int, agg_json: str) -> None:
        agg = Aggregate.from_json(agg_json)
        results[spec.index] = agg
        outcomes[spec.index] = ShardOutcome(
            tag=spec.tag, index=spec.index, status="ok", attempts=attempts)
        if cache is not None:
            cache.put(campaign, spec, agg)
        if progress is not None:
            progress(len(outcomes), len(shards), time.monotonic() - t0)

    def record_quarantine(state: _ShardState) -> None:
        outcomes[state.spec.index] = ShardOutcome(
            tag=state.spec.tag, index=state.spec.index, status="quarantined",
            attempts=state.attempts, error=state.errors[-1] if state.errors else None)
        if progress is not None:
            progress(len(outcomes), len(shards), time.monotonic() - t0)

    if workers <= 1:
        _run_serial(todo, faults, max_attempts, backoff,
                    record_ok, record_quarantine)
    else:
        _run_pool(todo, faults, workers, max_attempts, shard_timeout,
                  backoff, record_ok, record_quarantine)

    # -- merge in shard-index order (the determinism contract) ---------
    overall = Aggregate()
    per_point: Dict[str, Aggregate] = {}
    for spec in shards:
        agg = results.get(spec.index)
        if agg is None:
            continue
        overall.merge(agg)
        point = per_point.get(spec.point_label)
        if point is None:
            per_point[spec.point_label] = Aggregate.merged([agg])
        else:
            point.merge(agg)

    return FleetResult(
        campaign=campaign,
        aggregate=overall,
        per_point=per_point,
        outcomes=[outcomes[s.index] for s in shards],
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        elapsed=time.monotonic() - t0,
        workers=max(1, workers),
        latency_key=scenario.latency_key,
        rate_key=scenario.rate_key,
        moment_keys=scenario.moment_keys,
    )


def run_shard(campaign: Campaign, tag: str) -> Aggregate:
    """Replay a single shard (e.g. a quarantined one) in-process."""
    spec = campaign.shard_by_tag(tag)
    return Aggregate.from_json(
        _execute_shard(_payload(spec, attempt=0, in_worker=False, faults=None)))


# ----------------------------------------------------------------------
def _run_serial(todo, faults, max_attempts, backoff,
                record_ok, record_quarantine) -> None:
    for spec in todo:
        state = _ShardState(spec)
        while state.attempts < max_attempts:
            payload = _payload(spec, state.attempts, in_worker=False,
                               faults=faults)
            state.attempts += 1
            try:
                record_ok(spec, state.attempts, _execute_shard(payload))
                break
            except Exception as exc:  # noqa: BLE001 - any shard failure retries
                state.errors.append(f"{type(exc).__name__}: {exc}")
                if state.attempts < max_attempts:
                    time.sleep(backoff.next())
        else:
            record_quarantine(state)


def _run_pool(todo, faults, workers, max_attempts, shard_timeout,
              backoff, record_ok, record_quarantine) -> None:
    pending = deque(_ShardState(spec) for spec in todo)
    pool = ProcessPoolExecutor(max_workers=workers)
    in_flight: Dict[object, Tuple[_ShardState, float]] = {}
    abandoned = False
    try:
        while pending or in_flight:
            pool_broken = False
            # Keep the pool saturated but bounded: 2 queued per slot.
            while pending and len(in_flight) < 2 * workers:
                state = pending.popleft()
                payload = _payload(state.spec, state.attempts, in_worker=True,
                                   faults=faults)
                state.attempts += 1
                try:
                    fut = pool.submit(_execute_shard, payload)
                except BrokenProcessPool:
                    pool_broken = True
                    state.errors.append("BrokenProcessPool: submit refused")
                    _requeue(state, pending, max_attempts, record_quarantine)
                    break
                in_flight[fut] = (state, time.monotonic() + shard_timeout)

            done, _ = wait(list(in_flight), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            casualties: List[_ShardState] = []
            for fut in done:
                state, _deadline = in_flight.pop(fut)
                try:
                    record_ok(state.spec, state.attempts, fut.result())
                except BrokenProcessPool:
                    pool_broken = True
                    state.errors.append("BrokenProcessPool: worker died")
                    casualties.append(state)
                except Exception as exc:  # noqa: BLE001
                    state.errors.append(f"{type(exc).__name__}: {exc}")
                    _requeue(state, pending, max_attempts, record_quarantine)

            if pool_broken:
                # A dead worker poisons every in-flight future, and the
                # executor API cannot say *which* shard killed it.  Rerun
                # each suspect alone in a single-worker pool: innocents
                # complete (no extra attempt charged beyond their requeue),
                # the culprit breaks its private pool and is charged —
                # repeatedly, until quarantined — without collateral.
                suspects = casualties + [state for state, _ in in_flight.values()]
                in_flight.clear()
                pool.shutdown(wait=True, cancel_futures=True)
                time.sleep(backoff.next())
                _isolate_suspects(suspects, faults, max_attempts,
                                  shard_timeout, pending,
                                  record_ok, record_quarantine)
                pool = ProcessPoolExecutor(max_workers=workers)
                continue

            now = time.monotonic()
            for fut, (state, deadline) in list(in_flight.items()):
                if now >= deadline:
                    # Can't kill one worker through the executor API —
                    # abandon the future (its late result, if any, is
                    # ignored because the entry leaves in_flight) and
                    # charge the attempt.
                    del in_flight[fut]
                    abandoned = True
                    state.errors.append(f"timeout after {shard_timeout:.1f}s")
                    _requeue(state, pending, max_attempts, record_quarantine)
    finally:
        # wait= joins the workers so nothing races interpreter teardown;
        # only skip the join when a timed-out shard was abandoned and a
        # zombie worker may still be chewing on it.
        pool.shutdown(wait=not abandoned, cancel_futures=True)


def _isolate_suspects(suspects, faults, max_attempts, shard_timeout,
                      pending: deque, record_ok, record_quarantine) -> None:
    """Identify which broken-pool casualty actually kills workers.

    Each suspect gets one attempt in its own single-worker pool.  An
    innocent bystander completes and is recorded; the culprit breaks
    (only) its private pool, is charged the attempt, and is re-queued —
    or quarantined once its budget is spent.
    """
    for state in suspects:
        if state.attempts >= max_attempts:
            record_quarantine(state)
            continue
        payload = _payload(state.spec, state.attempts, in_worker=True,
                           faults=faults)
        state.attempts += 1
        iso = ProcessPoolExecutor(max_workers=1)
        try:
            record_ok(state.spec, state.attempts,
                      iso.submit(_execute_shard, payload).result(
                          timeout=shard_timeout))
        except BrokenProcessPool:
            state.errors.append("BrokenProcessPool: worker died in isolation")
            _requeue(state, pending, max_attempts, record_quarantine)
        except Exception as exc:  # noqa: BLE001 - incl. TimeoutError
            state.errors.append(f"{type(exc).__name__}: {exc}")
            _requeue(state, pending, max_attempts, record_quarantine)
        finally:
            iso.shutdown(wait=True, cancel_futures=True)


def _requeue(state: _ShardState, pending: deque, max_attempts: int,
             record_quarantine) -> None:
    if state.attempts >= max_attempts:
        record_quarantine(state)
    else:
        pending.append(state)


__all__ = [
    "FaultInjection",
    "FleetResult",
    "ShardError",
    "ShardOutcome",
    "run_campaign",
    "run_shard",
]
