"""Fleet telemetry bus: structured wall-clock events for campaign runs.

The fleet's determinism contract deliberately keeps wall-clock time out
of every result artifact — which also made the runtime unobservable: a
slow shard, an idle worker, a ballooning reducer buffer all vanished
into one ``elapsed`` float.  This module is the other half of the
bargain: a **telemetry side-channel** that rides the existing result
wire (worker batches return their events next to their shard results),
aggregates in the driver, and never touches an aggregate byte.

Event stream
------------
Every event is a small dict with an ``ev`` kind and wall-clock offsets
(seconds since the collector's epoch; workers share the epoch because
``time.monotonic`` is CLOCK_MONOTONIC — system-wide — under the fork
start method the pool prefers).  Worker-side kinds:

- ``shard`` — one shard attempt: tag, attempt, ``t0``/``t1``, ok flag.
- ``batch`` — one dispatched batch: span, shard count, worker RSS
  high-water mark (``ru_maxrss``).

Driver-side kinds: ``cache_pass`` (span + hit/miss counts),
``dispatch``/``batch_done`` (pool saturation), ``merge`` (the
:class:`~repro.fleet.aggregate.OrderedReducer` buffer depth after each
offered result), ``retry``, ``timeout``, ``pool_break`` and
``quarantine``.

Artifacts
---------
:meth:`TelemetryCollector.finalize` folds the stream into the canonical
``campaign_telemetry.json`` document (schema in ``docs/FLEET.md``), and
:func:`worker_timeline_json` renders the same document as a Chrome
trace-event timeline — one process per worker pid, one ``"X"`` slice
per shard — validated by the same
:func:`repro.obs.export.validate_chrome_trace` the obs exporters use
(fleet → obs is the permitted import direction; see
``repro.fleet.aggregate``).

None of this participates in the determinism boundary: telemetry is
collected beside the result path, and enabling it changes no aggregate
byte — pinned by ``tests/test_fleet_telemetry.py`` and gated for
overhead by ``benchmarks/perf/obs_overhead.py`` (BENCH_PR10).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional

#: Bump when the campaign_telemetry.json document shape changes.
TELEMETRY_SCHEMA = 1

#: Retained-event cap: bounds document size on huge campaigns.  Summary
#: sections are computed from *all* events; only the raw ``events`` list
#: is truncated, and ``events_dropped`` says by how much.
EVENT_CAP = 20000

_CANON = {"sort_keys": True, "separators": (",", ":")}


def rss_kib() -> int:
    """This process's peak RSS in KiB (0 where unavailable)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


class TelemetryCollector:
    """Driver-side event sink for one campaign run.

    Create one, pass it to :func:`repro.fleet.workers.run_campaign`
    (``telemetry=collector``); the finished
    :class:`~repro.fleet.workers.FleetResult` then carries the
    finalized document in ``result.telemetry``.
    """

    def __init__(self, event_cap: int = EVENT_CAP) -> None:
        self.epoch = time.monotonic()
        self.event_cap = event_cap
        self.events: List[dict] = []
        self.dropped = 0
        self.meta: Dict[str, Any] = {}

    def now(self) -> float:
        """Seconds since this collector's epoch (the shared time base)."""
        return time.monotonic() - self.epoch

    def record(self, event: dict) -> None:
        if len(self.events) >= self.event_cap:
            self.dropped += 1
            return
        self.events.append(event)

    def absorb(self, worker_events: List[dict]) -> None:
        """Take a batch's worker-side events off the result wire."""
        for event in worker_events:
            self.record(event)

    # ------------------------------------------------------------------
    def finalize(self, campaign, scenario, result,
                 flight_dir=None) -> dict:
        """Fold the event stream into the canonical telemetry document."""
        shard_events = [e for e in self.events if e.get("ev") == "shard"]
        batch_events = [e for e in self.events if e.get("ev") == "batch"]

        workers: Dict[str, Dict[str, Any]] = {}
        for e in shard_events:
            w = workers.setdefault(str(e.get("pid", 0)), {
                "shards": 0, "ok": 0, "err": 0, "busy_s": 0.0,
                "batches": 0, "max_rss_kib": 0})
            w["shards"] += 1
            w["ok" if e.get("ok") else "err"] += 1
            w["busy_s"] += max(0.0, e.get("t1", 0.0) - e.get("t0", 0.0))
        for e in batch_events:
            w = workers.setdefault(str(e.get("pid", 0)), {
                "shards": 0, "ok": 0, "err": 0, "busy_s": 0.0,
                "batches": 0, "max_rss_kib": 0})
            w["batches"] += 1
            w["max_rss_kib"] = max(w["max_rss_kib"],
                                   int(e.get("rss_kib", 0)))
        for w in workers.values():
            w["busy_s"] = round(w["busy_s"], 6)

        costs: Dict[str, float] = {}
        if scenario is not None:
            for spec in campaign.shards():
                costs[spec.tag] = scenario.shard_cost(spec.param_dict())
        slowest = sorted(
            ({"tag": e["tag"], "pid": e.get("pid", 0),
              "attempt": e.get("attempt", 0),
              "wall_s": round(max(0.0, e["t1"] - e["t0"]), 6),
              "cost": costs.get(e["tag"], 1.0),
              "wall_per_cost": round(
                  max(0.0, e["t1"] - e["t0"])
                  / max(costs.get(e["tag"], 1.0), 1e-9), 6)}
             for e in shard_events if e.get("ok")),
            key=lambda row: -row["wall_per_cost"])[:8]

        counters = {"retries": 0, "timeouts": 0, "pool_breaks": 0,
                    "quarantines": 0}
        for e in self.events:
            kind = e.get("ev")
            if kind == "retry":
                counters["retries"] += 1
            elif kind == "timeout":
                counters["timeouts"] += 1
            elif kind == "pool_break":
                counters["pool_breaks"] += 1
            elif kind == "quarantine":
                counters["quarantines"] += 1

        doc = {
            "schema": TELEMETRY_SCHEMA,
            "campaign": {
                "name": campaign.name,
                "scenario": campaign.scenario,
                "fingerprint16": campaign.fingerprint()[:16],
                "spec": campaign.spec_dict(),
                "shards": len(result.outcomes),
            },
            "run": {
                "driver_pid": os.getpid(),
                "workers": result.workers,
                "start_method": result.start_method,
                "elapsed_s": round(result.elapsed, 6),
                "batches": result.n_batches,
                "max_buffered": result.max_buffered,
            },
            "cache": {"hits": result.cache_hits,
                      "misses": result.cache_misses},
            "shards": {
                "ok": result.completed,
                "quarantined": len(result.quarantined),
                **counters,
            },
            "workers": dict(sorted(workers.items())),
            "slowest": slowest,
            "meta": dict(sorted(self.meta.items())),
            "events": self.events,
            "events_dropped": self.dropped,
        }
        if flight_dir is not None:
            from repro.fleet.flight import flight_summary

            doc["flight"] = {"dir": str(flight_dir),
                             **flight_summary(flight_dir)}
        return doc


# ----------------------------------------------------------------------
# Chrome trace-event export of worker timelines
# ----------------------------------------------------------------------
def _us(t: float) -> int:
    return int(round(t * 1e6))


def worker_timeline_events(doc: dict) -> List[dict]:
    """``traceEvents`` for a finalized telemetry document.

    One Perfetto process per worker pid (named ``worker <pid>``, the
    driver is ``fleet driver``); shard attempts are ``"X"`` complete
    slices on tid 0, batches on tid 1, and driver bookkeeping events
    (cache pass, dispatch, retries, quarantines) are instant events on
    the driver track.
    """
    driver_pid = int(doc.get("run", {}).get("driver_pid", 0))
    events: List[dict] = [{
        "args": {"name": "fleet driver"}, "cat": "__metadata",
        "name": "process_name", "ph": "M", "pid": driver_pid, "tid": 0,
        "ts": 0,
    }]
    for pid_str in sorted(doc.get("workers", {})):
        pid = int(pid_str)
        if pid == driver_pid:
            continue
        events.append({
            "args": {"name": f"worker {pid}"}, "cat": "__metadata",
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0,
        })
    for e in doc.get("events", []):
        kind = e.get("ev")
        pid = int(e.get("pid", driver_pid))
        if kind == "shard":
            ts = _us(e.get("t0", 0.0))
            events.append({
                "args": {"attempt": e.get("attempt", 0),
                         "ok": bool(e.get("ok"))},
                "cat": "shard", "dur": max(0, _us(e.get("t1", 0.0)) - ts),
                "name": e.get("tag", "?"), "ph": "X", "pid": pid,
                "tid": 0, "ts": max(0, ts),
            })
        elif kind == "batch":
            ts = _us(e.get("t0", 0.0))
            events.append({
                "args": {"shards": e.get("n", 0),
                         "rss_kib": e.get("rss_kib", 0)},
                "cat": "batch", "dur": max(0, _us(e.get("t1", 0.0)) - ts),
                "name": f"batch[{e.get('n', 0)}]", "ph": "X", "pid": pid,
                "tid": 1, "ts": max(0, ts),
            })
        elif kind == "cache_pass":
            ts = _us(e.get("t0", 0.0))
            events.append({
                "args": {"hits": e.get("hits", 0),
                         "misses": e.get("misses", 0)},
                "cat": "driver", "dur": max(0, _us(e.get("t1", 0.0)) - ts),
                "name": "cache_pass", "ph": "X", "pid": driver_pid,
                "tid": 0, "ts": max(0, ts),
            })
        else:
            args = {k: v for k, v in sorted(e.items())
                    if k not in ("ev", "t", "pid")}
            events.append({
                "args": args, "cat": "driver", "name": str(kind),
                "ph": "i", "pid": driver_pid, "s": "p", "tid": 0,
                "ts": max(0, _us(e.get("t", 0.0))),
            })
    return events


def worker_timeline_json(doc: dict) -> str:
    """Canonical Chrome-trace JSON of the worker timelines."""
    return json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": worker_timeline_events(doc)},
        **_CANON)


def write_campaign_telemetry(path, doc: dict) -> pathlib.Path:
    """Write the canonical ``campaign_telemetry.json`` document."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, **_CANON) + "\n")
    return path


__all__ = [
    "EVENT_CAP",
    "TELEMETRY_SCHEMA",
    "TelemetryCollector",
    "rss_kib",
    "worker_timeline_events",
    "worker_timeline_json",
    "write_campaign_telemetry",
]
