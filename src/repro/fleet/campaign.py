"""Declarative campaign specs: scenario × parameter grid × seed range.

A :class:`Campaign` names a registered scenario runner and spans a
parameter grid and a seed range; it expands deterministically into an
ordered list of :class:`ShardSpec`, one per (grid point, seed replica).

Seed-derivation contract
------------------------
Every shard's simulator seed is a pure function of the campaign's
``base_seed`` and the shard's ``tag`` string::

    seed = shard_seed(base_seed, tag)     # sha256(f"{base_seed}:{tag}")

This mirrors the engine's :meth:`Simulator.child_rng` ``(seed, tag)``
scheme but routes through SHA-256 so it is stable across processes and
Python versions (the builtin ``hash`` is salted per process).  Because
the seed depends only on the tag — never on shard *index*, worker
assignment, or grid shape — any single shard can be replayed in
isolation (``python -m repro fleet --replay TAG``) and adding grid
points never perturbs existing shards' results.

Cache-key semantics
-------------------
:meth:`Campaign.fingerprint` hashes the canonical spec JSON together
with the fleet schema version, the package version, and the registered
scenario's declared ``version`` — bump any of those and every cached
shard is invalidated; change nothing and a re-run is a 100% cache hit.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.fleet.aggregate import Aggregate

#: Bump when the aggregate schema or shard semantics change in a way
#: that makes previously cached shard results non-comparable.
SCHEMA_VERSION = 1


def stable_hash(text: str) -> str:
    """Process-stable hex digest of a string (unsalted, unlike hash())."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def shard_seed(base_seed: int, tag: str) -> int:
    """Derive a shard's simulator seed from ``(base_seed, tag)``.

    63-bit, so it stays a small-int seed for ``random.Random`` and
    survives JSON round trips exactly.
    """
    digest = hashlib.sha256(f"{base_seed}:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioDef:
    """A registered shard runner plus its reporting hints.

    ``version`` participates in the campaign fingerprint: bump it when
    the runner's semantics change so stale cached shards are not reused.
    ``latency_key``/``rate_key`` name the histogram the fleet report
    renders percentiles from; ``moment_keys`` the headline moments.
    """

    name: str
    version: int
    fn: Callable[[int, Dict[str, object]], Aggregate]
    doc: str = ""
    latency_key: Optional[str] = None
    rate_key: Optional[str] = None
    moment_keys: Tuple[str, ...] = ()
    #: optional ``params -> relative cost`` estimator (any positive unit:
    #: simulated seconds, frames, stations·s …).  The batched dispatcher
    #: uses it to cut equal-*cost* — not equal-*count* — worker batches,
    #: so a grid mixing cheap and expensive points still load-balances.
    cost_hint: Optional[Callable[[Dict[str, object]], float]] = None

    def shard_cost(self, params: Dict[str, object]) -> float:
        """Estimated relative cost of one shard (>= a small epsilon)."""
        if self.cost_hint is None:
            return 1.0
        try:
            return max(float(self.cost_hint(params)), 1e-9)
        except Exception:
            return 1.0


_SCENARIOS: Dict[str, ScenarioDef] = {}


def register_scenario(name: str, version: int = 1, *,
                      latency_key: Optional[str] = None,
                      rate_key: Optional[str] = None,
                      moment_keys: Sequence[str] = (),
                      cost_hint: Optional[Callable[[Dict[str, object]], float]] = None):
    """Decorator: register ``fn(seed, params) -> Aggregate`` as a runner."""

    def deco(fn):
        _SCENARIOS[name] = ScenarioDef(
            name=name, version=version, fn=fn,
            doc=(fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "",
            latency_key=latency_key, rate_key=rate_key,
            moment_keys=tuple(moment_keys),
            cost_hint=cost_hint,
        )
        return fn

    return deco


def get_scenario(name: str) -> ScenarioDef:
    # Built-in runners live in repro.fleet.scenarios; importing it here
    # (not at module load) avoids a campaign<->scenarios cycle.
    if name not in _SCENARIOS:
        import repro.fleet.scenarios  # noqa: F401  (registers built-ins)
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_SCENARIOS)}"
        ) from None


def scenario_names() -> List[str]:
    import repro.fleet.scenarios  # noqa: F401
    return sorted(_SCENARIOS)


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
def _fmt_value(v: object) -> str:
    """Stable, compact value rendering for tags (repr floats, no spaces)."""
    if isinstance(v, float):
        return repr(v)
    return str(v)


@dataclass(frozen=True)
class ShardSpec:
    """One replayable unit of work: a grid point plus one seed replica."""

    campaign: str
    scenario: str
    index: int                       # position in Campaign.shards() order
    tag: str                         # e.g. "rtt=0.036/s0007" — seed source
    seed: int                        # shard_seed(base_seed, tag)
    params: Tuple[Tuple[str, object], ...]  # grid point ∪ fixed params

    @property
    def point_label(self) -> str:
        """The grid-point part of the tag (no seed suffix)."""
        return self.tag.rsplit("/", 1)[0]

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
@dataclass
class Campaign:
    """Scenario factory × parameter grid × seed range.

    ``grid`` maps parameter names to value lists; shards enumerate the
    cartesian product over *sorted* key order (grid-point major, seed
    minor), so shard order — and therefore merge order and the rendered
    report — is independent of dict insertion order.  ``params`` are
    fixed values passed to every shard.
    """

    name: str
    scenario: str
    seeds: int = 1
    base_seed: int = 0
    grid: Dict[str, Sequence] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        overlap = set(self.grid) & set(self.params)
        if overlap:
            raise ValueError(f"grid and params overlap on {sorted(overlap)}")

    # -- expansion -----------------------------------------------------
    def points(self) -> List[Dict[str, object]]:
        """Grid points in deterministic (sorted-key, row-major) order."""
        if not self.grid:
            return [{}]
        keys = sorted(self.grid)
        return [dict(zip(keys, combo))
                for combo in itertools.product(*(self.grid[k] for k in keys))]

    def point_label(self, point: Dict[str, object]) -> str:
        if not point:
            return "default"
        return ",".join(f"{k}={_fmt_value(point[k])}" for k in sorted(point))

    def shards(self) -> List[ShardSpec]:
        out: List[ShardSpec] = []
        for point in self.points():
            label = self.point_label(point)
            merged = dict(self.params)
            merged.update(point)
            params = tuple(sorted(merged.items()))
            for s in range(self.seeds):
                tag = f"{label}/s{s:04d}"
                out.append(ShardSpec(
                    campaign=self.name,
                    scenario=self.scenario,
                    index=len(out),
                    tag=tag,
                    seed=shard_seed(self.base_seed, tag),
                    params=params,
                ))
        return out

    def shard_by_tag(self, tag: str) -> ShardSpec:
        for spec in self.shards():
            if spec.tag == tag:
                return spec
        raise KeyError(f"no shard tagged {tag!r} in campaign {self.name!r}")

    def shard_map(self) -> Dict[str, ShardSpec]:
        """Tag -> spec for the whole campaign (one expansion, O(1) lookups).

        This is what a persistent worker installs once at pool startup:
        afterwards a shard task is just its tag, not a pickled spec.
        """
        return {spec.tag: spec for spec in self.shards()}

    @property
    def n_shards(self) -> int:
        n_points = 1
        for values in self.grid.values():
            n_points *= len(values)
        return n_points * self.seeds

    # -- identity ------------------------------------------------------
    def spec_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "grid": {k: list(v) for k, v in sorted(self.grid.items())},
            "params": dict(sorted(self.params.items())),
        }

    def spec_json(self) -> str:
        """Canonical spec JSON (sorted keys, no whitespace)."""
        return json.dumps(self.spec_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_spec_dict(cls, d: dict) -> "Campaign":
        """Rebuild a campaign from :meth:`spec_dict` output (worker install)."""
        return cls(
            name=str(d["name"]),
            scenario=str(d["scenario"]),
            seeds=int(d.get("seeds", 1)),
            base_seed=int(d.get("base_seed", 0)),
            grid={k: list(v) for k, v in d.get("grid", {}).items()},
            params=dict(d.get("params", {})),
        )

    def fingerprint(self) -> str:
        """Content hash of the spec + code-relevant versions (cache key).

        Memoized on the canonical spec JSON: the cache consults this
        once per shard (get + put), and rebuilding the SHA-256 and
        re-resolving the scenario registry each time was measurable at
        campaign scale.  Mutating the spec (the CLI rewrites ``seeds``)
        changes the spec JSON, which invalidates the memo.
        """
        spec_json = self.spec_json()
        memo = getattr(self, "_fp_memo", None)
        if memo is not None and memo[0] == spec_json:
            return memo[1]
        payload = {
            "spec": self.spec_dict(),
            "schema": SCHEMA_VERSION,
            "repro": repro.__version__,
            "scenario_version": get_scenario(self.scenario).version,
        }
        digest = stable_hash(json.dumps(payload, sort_keys=True,
                                        separators=(",", ":")))
        self._fp_memo = (spec_json, digest)
        return digest


__all__ = [
    "SCHEMA_VERSION",
    "Campaign",
    "ScenarioDef",
    "ShardSpec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "shard_seed",
    "stable_hash",
]
