"""repro.fleet — sharded multi-process campaign runner.

Turns the deterministic single-scenario engine into a campaign
machine: declare a :class:`Campaign` (scenario × parameter grid × seed
range), run it with :func:`run_campaign` across a process pool (or the
byte-identical serial fallback), and get back O(1)-sized mergeable
:class:`Aggregate` statistics per grid point.  Results are cached on
disk (:class:`ResultCache`) keyed by a content hash of the spec, so
re-running a sweep only executes missing shards.

See ``docs/FLEET.md`` for the spec format, the seed-derivation and
cache-key contracts, and how to replay a quarantined shard.
"""

from repro.fleet.aggregate import (
    Aggregate,
    FixedBinHistogram,
    OrderedReducer,
    StreamingMoments,
)
from repro.fleet.campaign import (
    Campaign,
    ShardSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    shard_seed,
)
from repro.fleet.cache import ResultCache
from repro.fleet.flight import (
    FlightRecorder,
    collect_flight_dump,
    flight_summary,
    read_flight_dump,
)
from repro.fleet.scenarios import demo_campaigns
from repro.fleet.telemetry import (
    TelemetryCollector,
    worker_timeline_events,
    worker_timeline_json,
    write_campaign_telemetry,
)
from repro.fleet.workers import (
    FaultInjection,
    FleetResult,
    ShardOutcome,
    plan_batches,
    run_campaign,
    run_shard,
    usable_cpus,
)

__all__ = [
    "Aggregate",
    "Campaign",
    "FaultInjection",
    "FixedBinHistogram",
    "FleetResult",
    "FlightRecorder",
    "OrderedReducer",
    "ResultCache",
    "ShardOutcome",
    "ShardSpec",
    "StreamingMoments",
    "TelemetryCollector",
    "collect_flight_dump",
    "demo_campaigns",
    "flight_summary",
    "get_scenario",
    "plan_batches",
    "read_flight_dump",
    "register_scenario",
    "run_campaign",
    "run_shard",
    "scenario_names",
    "shard_seed",
    "usable_cpus",
    "worker_timeline_events",
    "worker_timeline_json",
    "write_campaign_telemetry",
]
