"""Dataflow over the project model: RNG taint and tag patterns.

Two analyses live here, both consumed by the whole-program rules in
:mod:`repro.lint.rules`:

- :class:`TaintAnalysis` — forward propagation of "holds a seeded RNG"
  through assignments, call arguments, returns, and ``self.attr``
  stores, to a fixpoint over the project call graph.  Seeded sources
  are ``*.child_rng(tag)`` calls and ``random.Random(seed)`` with an
  explicit seed.  SIM007 asks it two questions: which functions
  *receive* a seeded RNG but still draw from the process-global
  ``random`` module, and where does a seeded RNG *escape* into
  module-level storage (a shared stream across fleet shards in one
  warm worker).
- :class:`TagIndex` — every ``child_rng`` call site's tag, folded into
  **tag patterns**: sequences of literal characters and holes.
  F-strings, ``+``-concatenation, ``%``-formatting, ``str.format``,
  ``str()`` and one level of local-variable indirection are folded
  directly; a hole that is a *parameter* of the enclosing function is
  folded against the call graph — when every strong call site passes a
  constant, the pattern expands to those constants.  SIM008 then asks
  for pairs of distinct call sites whose patterns can produce the same
  tag string (wildcard-intersection emptiness, a small DP), because
  colliding tags silently correlate RNG streams across components.

Both analyses are conservative in the usual lint direction: taint is
flow-insensitive (a rebound name stays tainted) and an unfoldable tag
piece becomes a hole that matches anything — but a pattern consisting
*only* of holes is never reported, so fully-dynamic tags don't turn
SIM008 into a false-positive machine.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    attribute_chain,
    _walk_no_nested,
    _module_body_nodes,
)

# ----------------------------------------------------------------------
# Shared: call-argument to parameter mapping
# ----------------------------------------------------------------------


def map_call_args(fn: FunctionInfo, call: ast.Call) -> Dict[str, ast.expr]:
    """Map a call's argument expressions onto ``fn``'s parameter names.

    Methods skip their leading ``self``/``cls`` when the call is an
    attribute dispatch (``obj.m(x)`` binds ``x`` to the second
    parameter).  ``*args``/``**kwargs`` forwarding is simply not
    mapped — absent entries mean "unknown", never a wrong binding.
    """
    params = list(fn.params)
    if (fn.class_qual is not None and params
            and isinstance(call.func, ast.Attribute)
            and params[0] in ("self", "cls")):
        params = params[1:]
    bound: Dict[str, ast.expr] = {}
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            bound[params[index]] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in fn.params:
            bound[kw.arg] = kw.value
    return bound


def param_default(fn: FunctionInfo, name: str) -> Optional[ast.expr]:
    """The default expression for parameter ``name``, if any."""
    args = fn.node.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    offset = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        if arg.arg == name and index >= offset:
            return defaults[index - offset]
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == name and default is not None:
            return default
    return None


def _is_child_rng_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "child_rng")


def _is_seeded_random_call(node: ast.AST, mod: ModuleInfo) -> bool:
    """``random.Random(seed)`` / imported ``Random(seed)`` with a seed."""
    if not isinstance(node, ast.Call) or not (node.args or node.keywords):
        return False
    chain = attribute_chain(node.func)
    if chain is None:
        return False
    if len(chain) == 1:
        return mod.imports.get(chain[0]) == "random.Random"
    return (mod.imports.get(chain[0]) == "random"
            and chain[1:] == ("Random",))


# ----------------------------------------------------------------------
# Seeded-RNG taint (SIM007 substrate)
# ----------------------------------------------------------------------


class TaintAnalysis:
    """Which names/params/attrs hold seeded RNGs, project-wide."""

    #: Fixpoint iteration cap; taint lattices here are tiny (per-function
    #: name sets) so 2–3 rounds settle real code.  The cap only guards
    #: against pathological call cycles.
    MAX_ROUNDS = 10

    def __init__(self, project: Project) -> None:
        self.project = project
        #: fn qual -> parameter names that receive a seeded RNG at some
        #: strongly-resolved call site.
        self.tainted_params: Dict[str, Set[str]] = {}
        #: fn quals whose return value is a seeded RNG.
        self.returns_rng: Set[str] = set()
        #: (class qual, attr) pairs holding seeded RNGs.
        self.rng_attrs: Set[Tuple[str, str]] = set()
        #: fn qual -> locally-tainted names (computed during the run).
        self.tainted_locals: Dict[str, Set[str]] = {}
        self._envs: Dict[str, Dict[str, Set[str]]] = {}
        self._run()

    # -- fixpoint ------------------------------------------------------
    def _run(self) -> None:
        functions = list(self.project.functions.values())
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for fn in functions:
                changed |= self._analyze_function(fn)
            if not changed:
                return

    def _env(self, fn: FunctionInfo) -> Dict[str, Set[str]]:
        env = self._envs.get(fn.qual)
        if env is None:
            env = self.project._local_env(fn)
            self._envs[fn.qual] = env
        return env

    def _analyze_function(self, fn: FunctionInfo) -> bool:
        mod = self.project.modules[fn.module]
        tainted: Set[str] = set(self.tainted_params.get(fn.qual, ()))
        # Local propagation to its own (tiny) fixpoint: flow-insensitive,
        # so assignment order inside the body cannot hide taint.
        while True:
            grew = False
            for node in _walk_no_nested(fn.node):
                if isinstance(node, ast.Assign):
                    if self._expr_tainted(fn, mod, tainted, node.value):
                        for target in node.targets:
                            if (isinstance(target, ast.Name)
                                    and target.id not in tainted):
                                tainted.add(target.id)
                                grew = True
                            elif (isinstance(target, ast.Attribute)
                                  and isinstance(target.value, ast.Name)
                                  and target.value.id == "self"
                                  and fn.class_qual is not None):
                                key = (fn.class_qual, target.attr)
                                if key not in self.rng_attrs:
                                    self.rng_attrs.add(key)
                                    grew = True
                elif (isinstance(node, ast.AnnAssign)
                      and node.value is not None
                      and isinstance(node.target, ast.Name)
                      and self._expr_tainted(fn, mod, tainted, node.value)
                      and node.target.id not in tainted):
                    tainted.add(node.target.id)
                    grew = True
            if not grew:
                break

        before = self.tainted_locals.get(fn.qual, set())
        changed = tainted != before
        self.tainted_locals[fn.qual] = tainted

        # Returns: does this function hand back a seeded RNG?
        if fn.qual not in self.returns_rng:
            for node in _walk_no_nested(fn.node):
                if (isinstance(node, ast.Return) and node.value is not None
                        and self._expr_tainted(fn, mod, tainted, node.value)):
                    self.returns_rng.add(fn.qual)
                    changed = True
                    break

        # Call edges: tainted arguments taint callee parameters.
        env = self._env(fn)
        for node in _walk_no_nested(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callees = self.project._resolve_call(fn, env, node) or ()
            for callee_qual in callees:
                callee = self.project.functions.get(callee_qual)
                if callee is None:
                    continue
                for pname, arg in map_call_args(callee, node).items():
                    if self._expr_tainted(fn, mod, tainted, arg):
                        slot = self.tainted_params.setdefault(
                            callee_qual, set())
                        if pname not in slot:
                            slot.add(pname)
                            changed = True
        return changed

    def _expr_tainted(self, fn: FunctionInfo, mod: ModuleInfo,
                      tainted: Set[str], expr: ast.AST) -> bool:
        if _is_child_rng_call(expr) or _is_seeded_random_call(expr, mod):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and fn.class_qual is not None):
            return (fn.class_qual, expr.attr) in self.rng_attrs
        if isinstance(expr, ast.Call):
            env = self._env(fn)
            for callee in self.project._resolve_call(fn, env, expr) or ():
                if callee in self.returns_rng:
                    return True
        if isinstance(expr, (ast.BoolOp,)):
            return any(self._expr_tainted(fn, mod, tainted, v)
                       for v in expr.values)
        if isinstance(expr, ast.IfExp):
            return (self._expr_tainted(fn, mod, tainted, expr.body)
                    or self._expr_tainted(fn, mod, tainted, expr.orelse))
        return False

    # -- SIM007 queries ------------------------------------------------
    def global_random_fallbacks(
            self) -> Iterator[Tuple[FunctionInfo, ast.Call, str, str]]:
        """``(fn, call, param, detail)`` for seeded-RNG functions that
        still draw from the process-global ``random`` module."""
        from repro.lint.rules import qualified_name

        for qual, params in sorted(self.tainted_params.items()):
            fn = self.project.functions.get(qual)
            if fn is None or not params:
                continue
            mod = self.project.modules[fn.module]
            pname = sorted(params)[0]
            for node in _walk_no_nested(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = qualified_name(node.func, mod.imports)
                if resolved is None:
                    continue
                if resolved == "random.Random":
                    if not node.args and not node.keywords:
                        yield fn, node, pname, "a fresh unseeded Random()"
                elif resolved == "random.SystemRandom":
                    yield fn, node, pname, "random.SystemRandom"
                elif resolved.startswith("random.") and "." not in resolved[7:]:
                    yield fn, node, pname, f"the process-global {resolved}()"
            # The module itself used as a *value* — ``rng or random``,
            # ``rng if rng else random``, ``use(random)`` — is the
            # classic silent-fallback shape: the seeded RNG is optional
            # and the process global fills the gap.
            for node in self._module_value_uses(fn, mod, "random"):
                yield fn, node, pname, "the random module as a fallback value"

    def _module_value_uses(self, fn: FunctionInfo, mod: ModuleInfo,
                           module: str) -> Iterator[ast.AST]:
        """Bare ``Name`` loads resolving to ``module`` in value position
        (not as the base of an attribute access, which the direct-call
        checks already judge)."""
        attr_bases = set()
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Attribute):
                attr_bases.add(id(node.value))
        for node in _walk_no_nested(fn.node):
            if (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in attr_bases
                    and mod.imports.get(node.id) == module
                    and node.id not in fn.params
                    and node.id not in _assigned_names(fn.node)):
                yield node

    def module_storage_escapes(
            self) -> Iterator[Tuple[ModuleInfo, ast.AST, str]]:
        """``(mod, node, description)`` for seeded RNGs escaping into
        module-level storage."""
        # Module/class bodies: a seeded RNG bound at import time is one
        # stream shared by every shard a warm worker runs.
        for mod in self.project.modules.values():
            for node in _module_body_nodes(mod.tree):
                if isinstance(node, ast.Assign) and self._body_rng(mod, node.value):
                    yield (mod, node,
                           "a seeded RNG bound at module level is one stream "
                           "shared by every run in the process")
            for cinfo in mod.classes.values():
                for stmt in cinfo.node.body:
                    if (isinstance(stmt, ast.Assign)
                            and self._body_rng(mod, stmt.value)):
                        yield (mod, stmt,
                               f"a seeded RNG stored as a {cinfo.name} class "
                               "attribute is shared by every instance")
        # Function bodies: stores into module-level globals.
        for qual in sorted(self.project.functions):
            fn = self.project.functions[qual]
            mod = self.project.modules[fn.module]
            tainted = self.tainted_locals.get(qual, set())
            local_names = _assigned_names(fn.node)
            global_decls: Set[str] = set()
            for node in _walk_no_nested(fn.node):
                if isinstance(node, ast.Global):
                    global_decls.update(node.names)
            for node in _walk_no_nested(fn.node):
                if isinstance(node, ast.Assign):
                    if not self._expr_tainted(fn, mod, tainted, node.value):
                        continue
                    for target in node.targets:
                        desc = self._module_target(
                            mod, target, local_names, global_decls)
                        if desc:
                            yield (mod, node,
                                   f"a seeded RNG escapes into module-level "
                                   f"storage ({desc})")
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (isinstance(func, ast.Attribute)
                            and isinstance(func.value, ast.Name)
                            and func.attr in _CONTAINER_STORES
                            and any(self._expr_tainted(fn, mod, tainted, a)
                                    for a in node.args)):
                        name = func.value.id
                        if name in local_names and name not in global_decls:
                            continue
                        gvar = self.project.global_for_name(mod, name)
                        if gvar is not None and gvar.mutable:
                            yield (mod, node,
                                   f"a seeded RNG escapes into module-level "
                                   f"storage ({gvar.qual}.{func.attr}(...))")

    def _body_rng(self, mod: ModuleInfo, expr: ast.AST) -> bool:
        return _is_child_rng_call(expr) or _is_seeded_random_call(expr, mod)

    def _module_target(self, mod: ModuleInfo, target: ast.AST,
                       local_names: Set[str],
                       global_decls: Set[str]) -> Optional[str]:
        if isinstance(target, ast.Name):
            if target.id in global_decls:
                return f"global {target.id}"
            return None
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                name = base.id
                if name in local_names and name not in global_decls:
                    return None
                gvar = self.project.global_for_name(mod, name)
                if gvar is not None and gvar.mutable:
                    return f"{gvar.qual}[...]"
        return None


_CONTAINER_STORES = frozenset({
    "append", "add", "insert", "extend", "setdefault", "update",
    "appendleft",
})


def _assigned_names(fn_node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in _walk_no_nested(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            tgt = node.target
            if isinstance(tgt, ast.Name):
                out.add(tgt.id)
    return out


# ----------------------------------------------------------------------
# Tag patterns (SIM008 substrate)
# ----------------------------------------------------------------------

#: Hole token inside a pattern: "some dynamic string goes here".
HOLE = None

#: Alternatives cap when folding parameters against call sites; past
#: this a parameter degrades to a hole instead of exploding patterns.
MAX_ALTERNATIVES = 8

_PERCENT_RE = re.compile(r"%(?:%|[-+ #0-9.]*[sdifeEgGxXor])")
_BRACE_RE = re.compile(r"\{\{|\}\}|\{([^{}]*)\}")


def _normalize(tokens: Sequence[Optional[str]]) -> Tuple[Optional[str], ...]:
    out: List[Optional[str]] = []
    for tok in tokens:
        if tok is HOLE and out and out[-1] is HOLE:
            continue
        out.append(tok)
    return tuple(out)


class TagPattern:
    """A tag as literal characters interleaved with holes."""

    __slots__ = ("tokens",)

    def __init__(self, tokens: Sequence[Optional[str]]) -> None:
        self.tokens = _normalize(tokens)

    @classmethod
    def literal(cls, text: str) -> "TagPattern":
        return cls(tuple(text))

    @classmethod
    def hole(cls) -> "TagPattern":
        return cls((HOLE,))

    def is_pure_hole(self) -> bool:
        return all(tok is HOLE for tok in self.tokens)

    def render(self) -> str:
        out: List[str] = []
        for tok in self.tokens:
            out.append("{…}" if tok is HOLE else tok)
        return "".join(out)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TagPattern) and self.tokens == other.tokens

    def __hash__(self) -> int:
        return hash(self.tokens)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TagPattern({self.render()!r})"


def concat(parts: Sequence[TagPattern]) -> TagPattern:
    tokens: List[Optional[str]] = []
    for part in parts:
        tokens.extend(part.tokens)
    return TagPattern(tokens)


def patterns_intersect(a: TagPattern, b: TagPattern) -> bool:
    """Can the two patterns produce the same concrete tag string?

    A hole matches any string (including the empty one), so this is
    wildcard-pattern intersection emptiness: a DP over positions where
    a hole on either side may absorb the other side's next token.
    """
    ta, tb = a.tokens, b.tokens
    la, lb = len(ta), len(tb)
    memo: Dict[Tuple[int, int], bool] = {}

    def f(i: int, j: int) -> bool:
        key = (i, j)
        if key in memo:
            return memo[key]
        if i == la and j == lb:
            result = True
        elif i == la:
            result = all(tok is HOLE for tok in tb[j:])
        elif j == lb:
            result = all(tok is HOLE for tok in ta[i:])
        elif ta[i] is HOLE:
            result = f(i + 1, j) or f(i, j + 1)
        elif tb[j] is HOLE:
            result = f(i, j + 1) or f(i + 1, j)
        else:
            result = ta[i] == tb[j] and f(i + 1, j + 1)
        memo[key] = result
        return result

    return f(0, 0)


class TagSite:
    """One ``child_rng`` call site with its folded tag patterns."""

    __slots__ = ("path", "line", "col", "owner", "patterns")

    def __init__(self, path: str, line: int, col: int, owner: str,
                 patterns: Tuple[TagPattern, ...]) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.owner = owner
        self.patterns = patterns

    def sort_key(self) -> Tuple[str, int, int]:
        return (self.path, self.line, self.col)


class TagIndex:
    """All ``child_rng`` tags in the project, folded into patterns."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.sites: List[TagSite] = []
        self._collect()

    def _collect(self) -> None:
        for mod in sorted(self.project.modules.values(),
                          key=lambda m: m.path):
            for node in _module_body_nodes(mod.tree):
                if _is_child_rng_call(node) and node.args:
                    self._add_site(mod, None, node)
            for fname in sorted(mod.functions):
                self._collect_fn(mod, mod.functions[fname])
            for cname in sorted(mod.classes):
                for mname in sorted(mod.classes[cname].methods):
                    self._collect_fn(mod, mod.classes[cname].methods[mname])

    def _collect_fn(self, mod: ModuleInfo, fn: FunctionInfo) -> None:
        for node in _walk_no_nested(fn.node):
            if _is_child_rng_call(node) and node.args:
                self._add_site(mod, fn, node)

    def _add_site(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
                  call: ast.Call) -> None:
        patterns = self.fold(mod, fn, call.args[0])
        owner = fn.qual if fn else f"{mod.module}.<module>"
        self.sites.append(TagSite(
            mod.path, call.lineno, call.col_offset + 1, owner,
            tuple(patterns)))

    # -- folding -------------------------------------------------------
    def fold(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
             expr: ast.AST, depth: int = 3) -> List[TagPattern]:
        """All patterns ``expr`` can evaluate to (capped alternatives)."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (str, int, float, bool)):
                return [TagPattern.literal(str(expr.value))]
            return [TagPattern.hole()]
        if isinstance(expr, ast.JoinedStr):
            return self._fold_concat(
                mod, fn, list(expr.values), depth)
        if isinstance(expr, ast.FormattedValue):
            if expr.format_spec is not None or expr.conversion not in (-1, 115):
                return [TagPattern.hole()]
            return self.fold(mod, fn, expr.value, depth)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            return self._fold_concat(mod, fn, [expr.left, expr.right], depth)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mod):
            return self._fold_percent(mod, fn, expr, depth)
        if isinstance(expr, ast.Call):
            return self._fold_call(mod, fn, expr, depth)
        if isinstance(expr, ast.Name) and depth > 0:
            return self._fold_name(mod, fn, expr.id, depth)
        return [TagPattern.hole()]

    def _fold_concat(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
                     pieces: Sequence[ast.AST],
                     depth: int) -> List[TagPattern]:
        alternatives: List[List[TagPattern]] = [[TagPattern(())]]
        for piece in pieces:
            folded = self.fold(mod, fn, piece, depth)
            grown: List[List[TagPattern]] = []
            for prefix in alternatives:
                for alt in folded:
                    grown.append(prefix + [alt])
                    if len(grown) > MAX_ALTERNATIVES:
                        return [TagPattern.hole()]
            alternatives = grown
        return [concat(parts) for parts in alternatives]

    def _fold_percent(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
                      expr: ast.BinOp, depth: int) -> List[TagPattern]:
        if not (isinstance(expr.left, ast.Constant)
                and isinstance(expr.left.value, str)):
            return [TagPattern.hole()]
        fmt = expr.left.value
        values = (list(expr.right.elts) if isinstance(expr.right, ast.Tuple)
                  else [expr.right])
        pieces: List[ast.AST] = []
        pos = 0
        index = 0
        for match in _PERCENT_RE.finditer(fmt):
            pieces.append(ast.Constant(fmt[pos:match.start()]))
            if match.group(0) == "%%":
                pieces.append(ast.Constant("%"))
            else:
                pieces.append(values[index] if index < len(values)
                              else ast.Constant(None))
                index += 1
            pos = match.end()
        pieces.append(ast.Constant(fmt[pos:]))
        return self._fold_concat(mod, fn, pieces, depth)

    def _fold_call(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
                   call: ast.Call, depth: int) -> List[TagPattern]:
        func = call.func
        if (isinstance(func, ast.Name) and func.id == "str"
                and len(call.args) == 1 and not call.keywords):
            return self.fold(mod, fn, call.args[0], depth)
        if (isinstance(func, ast.Attribute) and func.attr == "format"
                and isinstance(func.value, ast.Constant)
                and isinstance(func.value.value, str)):
            return self._fold_format(mod, fn, func.value.value, call, depth)
        return [TagPattern.hole()]

    def _fold_format(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
                     fmt: str, call: ast.Call,
                     depth: int) -> List[TagPattern]:
        kwargs = {kw.arg: kw.value for kw in call.keywords
                  if kw.arg is not None}
        pieces: List[ast.AST] = []
        pos = 0
        auto = 0
        for match in _BRACE_RE.finditer(fmt):
            pieces.append(ast.Constant(fmt[pos:match.start()]))
            token = match.group(0)
            if token == "{{":
                pieces.append(ast.Constant("{"))
            elif token == "}}":
                pieces.append(ast.Constant("}"))
            else:
                field = match.group(1) or ""
                name = field.split("!")[0].split(":")[0]
                has_spec = ":" in field
                value: Optional[ast.AST] = None
                if not has_spec:
                    if name == "":
                        if auto < len(call.args):
                            value = call.args[auto]
                        auto += 1
                    elif name.isdigit():
                        idx = int(name)
                        if idx < len(call.args):
                            value = call.args[idx]
                    elif name in kwargs:
                        value = kwargs[name]
                pieces.append(value if value is not None
                              else _HoleMarker())
            pos = match.end()
        pieces.append(ast.Constant(fmt[pos:]))
        return self._fold_concat(mod, fn, pieces, depth)

    def _fold_name(self, mod: ModuleInfo, fn: Optional[FunctionInfo],
                   name: str, depth: int) -> List[TagPattern]:
        if fn is not None and name in fn.params:
            return self._fold_param(mod, fn, name, depth)
        if fn is not None:
            assignments = [node for node in _walk_no_nested(fn.node)
                           if isinstance(node, ast.Assign)
                           and any(isinstance(t, ast.Name) and t.id == name
                                   for t in node.targets)]
            rebound = any(
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name
                for node in _walk_no_nested(fn.node))
            if len(assignments) == 1 and not rebound:
                return self.fold(mod, fn, assignments[0].value, depth - 1)
        return [TagPattern.hole()]

    def _fold_param(self, mod: ModuleInfo, fn: FunctionInfo, name: str,
                    depth: int) -> List[TagPattern]:
        """Fold a parameter against the call graph: when every strong
        call site passes a constant, the hole becomes those constants."""
        sites = self.project.call_sites_of(fn.qual, include_weak=False)
        if not sites:
            return [TagPattern.hole()]
        values: Set[str] = set()
        default = param_default(fn, name)
        for site in sites:
            bound = map_call_args(fn, site.node).get(name, default)
            if not (isinstance(bound, ast.Constant)
                    and isinstance(bound.value, (str, int, float, bool))):
                return [TagPattern.hole()]
            values.add(str(bound.value))
        if not values or len(values) > MAX_ALTERNATIVES:
            return [TagPattern.hole()]
        return [TagPattern.literal(v) for v in sorted(values)]

    # -- SIM008 query --------------------------------------------------
    def collisions(self) -> Iterator[Tuple[TagSite, TagSite]]:
        """Distinct call-site pairs whose tag patterns can collide."""
        sites = sorted(self.sites, key=TagSite.sort_key)
        for i, a in enumerate(sites):
            pats_a = [p for p in a.patterns if not p.is_pure_hole()]
            if not pats_a:
                continue
            for b in sites[i + 1:]:
                pats_b = [p for p in b.patterns if not p.is_pure_hole()]
                if not pats_b:
                    continue
                if any(patterns_intersect(pa, pb)
                       for pa in pats_a for pb in pats_b):
                    yield a, b


class _HoleMarker(ast.AST):
    """Placeholder expr that folds to a hole (format-spec fields)."""

    _fields = ()
    lineno = 0
    col_offset = 0


__all__ = [
    "HOLE",
    "MAX_ALTERNATIVES",
    "TagIndex",
    "TagPattern",
    "TagSite",
    "TaintAnalysis",
    "concat",
    "map_call_args",
    "param_default",
    "patterns_intersect",
]
