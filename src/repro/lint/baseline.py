"""Baseline files: grandfather existing findings without weakening the gate.

A baseline is a checked-in JSON list of finding keys
``(path, rule, line)``.  ``--baseline FILE`` subtracts exactly those
entries from the run's findings — nothing more: an entry matches one
concrete finding or it is reported as *unused* (so stale entries are
visible and can be pruned, and a baseline cannot quietly suppress new
violations that merely look similar).

The intended lifecycle: ``--write-baseline`` once when adopting the
tool on a dirty tree, then shrink the file to empty as violations are
fixed.  The shipped tree's baseline is empty; CI fails on any
non-baselined finding.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1

Key = Tuple[str, str, int]


def write_baseline(path: pathlib.Path, findings: Sequence[Finding]) -> None:
    entries = [
        {"path": f.path, "rule": f.rule, "line": f.line, "message": f.message}
        for f in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def load_baseline(path: pathlib.Path) -> List[Key]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a simlint baseline (expected "
            f"version {BASELINE_VERSION})")
    keys: List[Key] = []
    for entry in data.get("entries", []):
        keys.append((str(entry["path"]), str(entry["rule"]),
                     int(entry["line"])))
    return keys


def apply_baseline(findings: Sequence[Finding], baseline: Sequence[Key],
                   ) -> Tuple[List[Finding], List[Finding], List[Key]]:
    """Partition findings into (new, baselined) and report unused keys.

    Each baseline entry consumes at most one finding, so duplicated
    entries do not mask multiple violations on the same line.
    """
    budget: Dict[Key, int] = {}
    for key in baseline:
        budget[key] = budget.get(key, 0) + 1
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    unused: List[Key] = []
    for key, remaining in sorted(budget.items()):
        unused.extend([key] * remaining)
    return new, matched, unused
