"""SARIF 2.1.0 and GitHub workflow-command rendering of findings.

SARIF (Static Analysis Results Interchange Format) is what code
scanning UIs ingest: one ``run`` with a ``tool.driver`` describing the
rules and one ``result`` per finding, each pointing at a
``physicalLocation``.  The GitHub format is the plain-text sibling:
``::error file=...,line=...`` workflow commands that annotate the PR
diff when printed inside an Actions step.

Both renderers are pure functions over the already-computed finding
list, so they compose with baselines and ``--diff`` filtering for
free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lint.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Description used for the reserved parse-error code, which has no
#: Rule class behind it.
_PARSE_ERROR_DESCRIPTION = "file could not be parsed"


def _rule_descriptors(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    """One reportingDescriptor per registered rule (plus SIM000 when a
    parse error is present), sorted by rule id."""
    from repro.lint.rules import RULES

    codes = set(RULES)
    codes.update(f.rule for f in findings)
    descriptors: List[Dict[str, object]] = []
    for code in sorted(codes):
        rule = RULES.get(code)
        if rule is not None:
            short = rule.title
            full = rule.rationale.strip() or rule.title
        else:
            short = full = _PARSE_ERROR_DESCRIPTION
        descriptors.append({
            "id": code,
            "name": code,
            "shortDescription": {"text": short},
            "fullDescription": {"text": full},
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def to_sarif(findings: Sequence[Finding],
             files_checked: int = 0) -> Dict[str, object]:
    """Render findings as a SARIF 2.1.0 log (a plain dict, json-ready)."""
    descriptors = _rule_descriptors(findings)
    index = {d["id"]: i for i, d in enumerate(descriptors)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri":
                        "https://example.invalid/docs/LINT.md",
                    "rules": descriptors,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root"}},
            },
            "properties": {"filesChecked": files_checked},
            "results": results,
        }],
    }


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (GitHub's rules)."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_data(value: str) -> str:
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def render_github(findings: Sequence[Finding]) -> List[str]:
    """One ``::error`` workflow command per finding."""
    lines: List[str] = []
    for finding in findings:
        lines.append(
            "::error "
            f"file={_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.col},"
            f"title={_escape_property('simlint ' + finding.rule)}"
            f"::{_escape_data(finding.message)}")
    return lines


__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "render_github",
    "to_sarif",
]
