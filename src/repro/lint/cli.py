"""The ``repro lint`` command.

Exit codes: 0 clean (or explain/list/write-baseline), 1 findings,
2 usage errors.  ``--format=json`` emits a machine-readable report for
CI, ``--format=sarif`` a SARIF 2.1.0 log for code-scanning uploads,
``--format=github`` workflow-command annotations for Actions; text
output is one GCC-style line per finding plus a summary on stderr.
``--diff REF`` restricts findings to lines changed vs a git ref;
``--jobs N`` sets the per-file worker count (0 = auto).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.lint.analyzer import PARSE_ERROR_RULE, lint_paths
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.findings import Finding
from repro.lint.gitdiff import DiffError, changed_lines
from repro.lint.rules import RULES, all_rules
from repro.lint.sarif import render_github, to_sarif


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options; shared by `repro lint` and standalone use."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format",
                        choices=("text", "json", "sarif", "github"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="subtract the findings recorded in FILE "
                             "(exactly those; unused entries are reported)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="record the current findings into FILE and "
                             "exit 0 (adoption aid — shrink it over time)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--diff", metavar="REF", default=None,
                        help="only report findings on lines changed vs the "
                             "given git ref (see docs/LINT.md)")
    parser.add_argument("--jobs", type=int, metavar="N", default=0,
                        help="per-file worker processes (0 = auto: serial "
                             "for small runs, usable_cpus() otherwise; "
                             "1 = force serial)")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print one rule's rationale and examples")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule codes and titles")


def run(args: argparse.Namespace) -> int:
    if args.explain:
        code = args.explain.upper()
        rule = RULES.get(code)
        if rule is None:
            print(f"unknown rule {args.explain!r}; known: "
                  f"{', '.join(sorted(RULES))}", file=sys.stderr)
            return 2
        print(rule.explain(), end="")
        return 0

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
        return 0

    selected = None
    if args.select:
        selected = [code.strip().upper() for code in args.select.split(",")
                    if code.strip()]
        unknown = [code for code in selected if code not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}; known: "
                  f"{', '.join(sorted(RULES))}", file=sys.stderr)
            return 2

    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    jobs = None if args.jobs == 0 else args.jobs

    findings, checked = lint_paths(args.paths, rules=selected, jobs=jobs)
    if checked == 0:
        print(f"no python files under: {', '.join(args.paths)}",
              file=sys.stderr)
        return 2

    diff_dropped = 0
    if args.diff:
        try:
            changed = changed_lines(args.diff)
        except DiffError as exc:
            print(f"--diff {args.diff}: {exc}", file=sys.stderr)
            return 2
        kept = [f for f in findings
                if f.line in changed.get(f.path, ())]
        diff_dropped = len(findings) - len(kept)
        findings = kept

    if args.write_baseline:
        write_baseline(pathlib.Path(args.write_baseline), findings)
        print(f"[simlint] wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0

    baselined: List[Finding] = []
    unused = []
    if args.baseline:
        try:
            keys = load_baseline(pathlib.Path(args.baseline))
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        findings, baselined, unused = apply_baseline(findings, keys)

    parse_errors = any(f.rule == PARSE_ERROR_RULE for f in findings)

    if args.format == "json":
        payload = {
            "files_checked": checked,
            "findings": [f.to_dict() for f in findings],
            "baselined": len(baselined),
            "diff_dropped": diff_dropped,
            "unused_baseline": [
                {"path": p, "rule": r, "line": line} for p, r, line in unused
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings, files_checked=checked),
                         indent=2, sort_keys=True))
    elif args.format == "github":
        for line in render_github(findings):
            print(line)
        print(f"[simlint] {checked} file(s), {len(findings)} finding(s)",
              file=sys.stderr)
    else:
        for finding in findings:
            print(finding.render())
        for path, rule, line in unused:
            print(f"[simlint] unused baseline entry: {path}:{line} {rule}",
                  file=sys.stderr)
        summary = (f"[simlint] {checked} file(s), {len(findings)} finding(s)"
                   + (f", {len(baselined)} baselined" if args.baseline else "")
                   + (f", {diff_dropped} outside --diff {args.diff}"
                      if args.diff else ""))
        print(summary, file=sys.stderr)

    if parse_errors:
        return 2
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism & simulation-safety checks "
                    "(see docs/LINT.md)")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
