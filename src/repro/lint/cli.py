"""The ``repro lint`` command.

Exit codes: 0 clean (or explain/list/write-baseline), 1 findings,
2 usage errors.  ``--format=json`` emits a machine-readable report for
CI; text output is one GCC-style line per finding plus a summary on
stderr.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.lint.analyzer import PARSE_ERROR_RULE, lint_paths
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.findings import Finding
from repro.lint.rules import RULES, all_rules


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options; shared by `repro lint` and standalone use."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="subtract the findings recorded in FILE "
                             "(exactly those; unused entries are reported)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="record the current findings into FILE and "
                             "exit 0 (adoption aid — shrink it over time)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print one rule's rationale and examples")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule codes and titles")


def run(args: argparse.Namespace) -> int:
    if args.explain:
        code = args.explain.upper()
        rule = RULES.get(code)
        if rule is None:
            print(f"unknown rule {args.explain!r}; known: "
                  f"{', '.join(sorted(RULES))}", file=sys.stderr)
            return 2
        print(rule.explain(), end="")
        return 0

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
        return 0

    selected = None
    if args.select:
        selected = [code.strip().upper() for code in args.select.split(",")
                    if code.strip()]
        unknown = [code for code in selected if code not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}; known: "
                  f"{', '.join(sorted(RULES))}", file=sys.stderr)
            return 2

    findings, checked = lint_paths(args.paths, rules=selected)
    if checked == 0:
        print(f"no python files under: {', '.join(args.paths)}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(pathlib.Path(args.write_baseline), findings)
        print(f"[simlint] wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0

    baselined: List[Finding] = []
    unused = []
    if args.baseline:
        try:
            keys = load_baseline(pathlib.Path(args.baseline))
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        findings, baselined, unused = apply_baseline(findings, keys)

    parse_errors = any(f.rule == PARSE_ERROR_RULE for f in findings)

    if args.format == "json":
        payload = {
            "files_checked": checked,
            "findings": [f.to_dict() for f in findings],
            "baselined": len(baselined),
            "unused_baseline": [
                {"path": p, "rule": r, "line": line} for p, r, line in unused
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        for path, rule, line in unused:
            print(f"[simlint] unused baseline entry: {path}:{line} {rule}",
                  file=sys.stderr)
        summary = (f"[simlint] {checked} file(s), {len(findings)} finding(s)"
                   + (f", {len(baselined)} baselined" if args.baseline else ""))
        print(summary, file=sys.stderr)

    if parse_errors:
        return 2
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism & simulation-safety checks "
                    "(see docs/LINT.md)")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
