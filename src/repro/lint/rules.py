"""The SIM rule set: determinism and simulation-safety checks.

Each rule is a class with a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  Rules are registered in
:data:`RULES` and documented twice: a one-line ``title`` for listings
and a longer ``rationale`` (with a bad/good example pair) printed by
``python -m repro lint --explain SIMxxx``.

Design notes
------------
The rules are *syntactic*.  There is no type inference beyond a small
per-scope propagation of "this local is set-typed" for SIM004, so each
rule is written to keep false positives near zero on idiomatic code and
to be suppressible (``# simlint: disable=SIMxxx``) where the remaining
ambiguity is judged acceptable.  Python dict iteration is
insertion-ordered (3.7+) and therefore deterministic; only ``set`` /
``frozenset`` iteration order depends on ``PYTHONHASHSEED``, which is
why SIM004 targets sets even though unordered-container bugs are
colloquially blamed on "dict ordering".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Type

from repro.lint.domains import Domain
from repro.lint.findings import Finding

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to dotted origins for every import in ``tree``.

    ``import numpy as np``            → ``{"np": "numpy"}``
    ``from random import Random``     → ``{"Random": "random.Random"}``
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never shadow stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def qualified_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted name through the imports.

    Returns ``None`` when the base is not an imported name (locals,
    ``self`` attributes, call results) — the rules only judge what they
    can resolve.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _call_target_name(node: ast.Call) -> Optional[str]:
    """The bare attribute/function name a call dispatches to."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class RuleContext:
    """Everything a rule needs to inspect one module."""

    def __init__(self, path: str, domain: Domain, tree: ast.Module,
                 source: str) -> None:
        self.path = path
        self.domain = domain
        self.tree = tree
        self.source = source
        self.imports = build_import_map(tree)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.code,
            message=message,
        )


class Rule:
    """Base class; subclasses set the metadata and implement check()."""

    code: str = ""
    title: str = ""
    domains: Iterable[Domain] = (Domain.SIM,)
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def applies(self, domain: Domain) -> bool:
        return domain in tuple(self.domains)

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        lines = [f"{cls.code}: {cls.title}", "", cls.rationale.strip()]
        if cls.example_bad:
            lines += ["", "Bad:", _indent(cls.example_bad)]
        if cls.example_good:
            lines += ["", "Good:", _indent(cls.example_good)]
        return "\n".join(lines) + "\n"


def _indent(block: str) -> str:
    return "\n".join(f"    {line}" for line in block.strip().splitlines())


# ----------------------------------------------------------------------
# SIM001 — process-global / unseeded RNGs
# ----------------------------------------------------------------------

#: Seeded construction is fine; these numpy entry points are the modern
#: seeded API and are exempt when called with arguments.
_NUMPY_SEEDED = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
    "Philox", "MT19937", "SFC64", "BitGenerator",
})


class Sim001GlobalRandom(Rule):
    code = "SIM001"
    title = ("no process-global or unseeded RNGs in sim code — draw from "
             "sim.child_rng(tag) or an injected/seeded Random")
    domains = (Domain.SIM,)
    rationale = """
Module-level ``random.*`` calls draw from one hidden process-global
stream, so any unrelated draw (another subsystem, a library, a test
running first) shifts every later value and the trace diverges.  Bare
``random.Random()`` / ``numpy.random.default_rng()`` seed from OS
entropy and differ on every run; ``random.SystemRandom`` is
nondeterministic by design.  The engine's ``sim.child_rng(tag)``
derives an independent stream as a pure function of ``(seed, tag)`` —
use it, or accept an explicitly seeded RNG as a parameter.
"""
    example_bad = """
import random
delay = random.uniform(0.0, jitter)      # global stream
rng = random.Random()                    # OS-entropy seed
"""
    example_good = """
self._rng = sim.child_rng(f"link:{name}")
delay = self._rng.uniform(0.0, jitter)
rng = random.Random(f"{seed}:{tag}")     # explicit seed: reproducible
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_name(node.func, ctx.imports)
            if qual is None:
                continue
            if qual == "random.Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self, node,
                        "bare random.Random() seeds from OS entropy; pass an "
                        "explicit seed or use sim.child_rng(tag)")
            elif qual == "random.SystemRandom":
                yield ctx.finding(
                    self, node,
                    "random.SystemRandom is nondeterministic by design; "
                    "sim code must use a seeded RNG")
            elif qual.startswith("random."):
                yield ctx.finding(
                    self, node,
                    f"{qual}() draws from the process-global RNG; use "
                    "sim.child_rng(tag) or an injected random.Random(seed)")
            elif qual.startswith("numpy.random."):
                attr = qual.rsplit(".", 1)[1]
                if attr in _NUMPY_SEEDED:
                    if attr == "default_rng" and not node.args and not node.keywords:
                        yield ctx.finding(
                            self, node,
                            "numpy.random.default_rng() without a seed is "
                            "fresh OS entropy per call; pass a seed")
                else:
                    yield ctx.finding(
                        self, node,
                        f"{qual}() uses numpy's process-global RNG; use "
                        "numpy.random.default_rng(seed)")


# ----------------------------------------------------------------------
# SIM002 — wall-clock time
# ----------------------------------------------------------------------

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class Sim002WallClock(Rule):
    code = "SIM002"
    title = ("no wall-clock reads in sim code — all time flows from "
             "sim.now (harness dirs fleet/, cli.py, benchmarks/ exempt)")
    domains = (Domain.SIM,)
    rationale = """
Simulated time is ``sim.now``, full stop.  A wall-clock read inside the
sim domain couples results to host speed and scheduling: traces stop
replaying, fleet shard caches (content-addressed by campaign spec, not
by machine) go stale silently, and byte-identical serial/pool
aggregation breaks.  Harness code — the CLI's progress/ETA line, the
fleet pool's worker timeouts, benchmarks — measures real elapsed time
on purpose and lives on an allowlist (see repro.lint.domains).
"""
    example_bad = """
t0 = time.monotonic()          # host-dependent
stamp = datetime.now()         # differs every run
"""
    example_good = """
t0 = self.sim.now              # simulated seconds, reproducible
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_name(node.func, ctx.imports)
            if qual in _WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"{qual}() reads the wall clock; sim code must use "
                    "sim.now (harness code belongs under fleet/, cli.py or "
                    "benchmarks/)")


# ----------------------------------------------------------------------
# SIM003 — nondeterministic child_rng tags
# ----------------------------------------------------------------------

_UNSTABLE_BUILTINS = frozenset({"id", "hash", "repr", "vars", "dir"})


class Sim003UnstableRngTag(Rule):
    code = "SIM003"
    title = ("child_rng tags must be stable strings — id()/hash()/repr() "
             "vary across processes")
    domains = (Domain.SIM, Domain.HARNESS)
    rationale = """
``sim.child_rng(tag)`` makes the stream a pure function of
``(seed, tag)`` — but only if the tag itself is stable.  ``id(obj)`` is
a memory address, ``hash(str)`` is salted per process
(PYTHONHASHSEED), and a default ``repr`` embeds the id; a tag built
from any of these gives every process (and every rerun) a different
stream, which is exactly the bug the discipline exists to prevent.
This applies in the harness too: the fleet runner derives shard seeds
with the same ``(seed, tag)`` recipe.  The check sees through nesting
(f-string format specs, ``str.format`` arguments) and one level of
local indirection (``tag = f"x:{id(o)}"`` followed by
``sim.child_rng(tag)``).
"""
    example_bad = """
rng = sim.child_rng(f"flow:{id(self)}")
rng = sim.child_rng(str(hash(name)))
tag = "flow:{}".format(id(self))
rng = sim.child_rng(tag)                    # indirection doesn't help
"""
    example_good = """
rng = sim.child_rng(f"flow:{self.name}")    # stable, human-readable
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes += [n for n in ast.walk(ctx.tree)
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            assignments = self._single_assignments(scope)
            for node in self._scope_nodes(scope):
                if not isinstance(node, ast.Call):
                    continue
                if _call_target_name(node) != "child_rng":
                    continue
                pieces: List[ast.AST] = list(node.args)
                pieces += [kw.value for kw in node.keywords]
                for arg in pieces:
                    culprit = self._unstable_part(arg)
                    if culprit is None:
                        culprit = self._unstable_via_name(arg, assignments)
                    if culprit is not None:
                        yield ctx.finding(
                            self, node,
                            f"child_rng tag depends on {culprit}, which "
                            "varies across processes/runs; build tags from "
                            "stable names")
                        break

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function defs."""
        body = scope.body if hasattr(scope, "body") else []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _single_assignments(cls, scope: ast.AST) -> Dict[str, ast.AST]:
        """Names bound by exactly one plain assignment in ``scope``."""
        counts: Dict[str, int] = {}
        values: Dict[str, ast.AST] = {}
        for node in cls._scope_nodes(scope):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], None
            for target in targets:
                if isinstance(target, ast.Name):
                    counts[target.id] = counts.get(target.id, 0) + 1
                    if value is not None:
                        values[target.id] = value
        return {name: values[name] for name, n in counts.items()
                if n == 1 and name in values}

    @classmethod
    def _unstable_via_name(cls, arg: ast.AST,
                           assignments: Dict[str, ast.AST]) -> Optional[str]:
        """One level of indirection: a Name whose sole assignment is
        built from an unstable call."""
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and sub.id in assignments:
                culprit = cls._unstable_part(assignments[sub.id])
                if culprit is not None:
                    return f"{culprit} (via {sub.id!r})"
        return None

    @staticmethod
    def _unstable_part(arg: ast.AST) -> Optional[str]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Name) and func.id in _UNSTABLE_BUILTINS:
                    return f"{func.id}()"
                if isinstance(func, ast.Attribute) and func.attr == "__repr__":
                    return "__repr__()"
            elif isinstance(sub, ast.Attribute) and sub.attr == "__repr__":
                return "__repr__"
        return None


# ----------------------------------------------------------------------
# SIM004 — unordered iteration feeding order-sensitive sinks
# ----------------------------------------------------------------------

#: Calls whose argument/invocation order is observable in traces or
#: aggregates: the event queue (seq numbers!), heaps, ordered
#: accumulators.
_ORDER_SINKS = frozenset({
    "schedule", "schedule_at", "call_later", "call_at", "heappush",
    "append", "appendleft", "push", "record", "enqueue", "emit", "send",
    "observe", "add_flow",
})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


class Sim004UnorderedIteration(Rule):
    code = "SIM004"
    title = ("don't feed set iteration order into schedule()/ordered "
             "accumulators — wrap the set in sorted()")
    domains = (Domain.SIM,)
    rationale = """
``set`` iteration order depends on insertion history *and* on the
per-process string-hash salt (PYTHONHASHSEED), so two processes — e.g.
a fleet worker and the byte-identical serial fallback — can walk the
same set differently.  Harmless for commutative folds (unions, sums),
fatal when the order reaches an order-sensitive sink: ``schedule()``
assigns tie-breaking sequence numbers in call order, and list-building
(``append``, list comprehensions, ``list(...)``) bakes the order into
aggregates.  ``sorted(the_set)`` makes the order explicit and
deterministic.  Dict iteration is insertion-ordered in Python 3.7+ and
is therefore not flagged.

The check is syntactic: it flags iteration over expressions it can see
are sets (literals, ``set()``/``frozenset()`` calls, set operators on
those, and locals assigned from them) when the loop body calls an
order-sensitive sink, and ``list()``/``tuple()``/list-comprehension
materialization of such sets.
"""
    example_bad = """
for node in failed_nodes:                 # a set
    sim.schedule(delay, node.restart)     # order -> event seq numbers
order = [n.name for n in reachable]       # a set -> ordered list
"""
    example_good = """
for node in sorted(failed_nodes, key=lambda n: n.name):
    sim.schedule(delay, node.restart)
order = sorted(n.name for n in reachable)
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes += [n for n in ast.walk(ctx.tree)
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            set_names = self._set_locals(scope)
            for node in self._scope_nodes(scope):
                yield from self._check_node(ctx, node, set_names)

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function defs."""
        body = scope.body if hasattr(scope, "body") else []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _set_locals(self, scope: ast.AST) -> Set[str]:
        """Names assigned *only* set-typed expressions within ``scope``."""
        assigned: Dict[str, bool] = {}

        def note(name: str, is_set: bool) -> None:
            assigned[name] = assigned.get(name, True) and is_set

        for node in self._scope_nodes(scope):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    note(target.id, self._is_set_expr(value, set()))
        return {name for name, is_set in assigned.items() if is_set}

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (isinstance(func, ast.Attribute) and func.attr in _SET_METHODS
                    and self._is_set_expr(func.value, set_names)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False

    def _check_node(self, ctx: RuleContext, node: ast.AST,
                    set_names: Set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if (self._is_set_expr(node.iter, set_names)
                    and self._body_hits_sink(node.body)):
                yield ctx.finding(
                    self, node,
                    "iterating a set feeds an order-sensitive sink "
                    "(schedule/append/...); wrap the set in sorted()")
        elif isinstance(node, ast.ListComp):
            if any(self._is_set_expr(gen.iter, set_names)
                   for gen in node.generators):
                yield ctx.finding(
                    self, node,
                    "list comprehension over a set bakes hash order into "
                    "an ordered result; use sorted(...)")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id in ("list", "tuple")
                    and len(node.args) == 1 and not node.keywords
                    and self._is_set_expr(node.args[0], set_names)):
                yield ctx.finding(
                    self, node,
                    f"{func.id}(set) materializes hash order; use "
                    "sorted(...) for a deterministic sequence")

    @staticmethod
    def _body_hits_sink(body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if (isinstance(node, ast.Call)
                        and _call_target_name(node) in _ORDER_SINKS):
                    return True
        return False


# ----------------------------------------------------------------------
# SIM005 — float equality on sim time
# ----------------------------------------------------------------------

_TIME_ATTRS = frozenset({"now", "sim_time"})
_TIME_NAMES = frozenset({"now", "sim_time", "t_now"})


class Sim005FloatTimeEquality(Rule):
    code = "SIM005"
    title = "no ==/!= on sim-time floats — use <=, >=, or an epsilon"
    domains = (Domain.SIM,)
    rationale = """
Sim timestamps are floats accumulated through additions
(``now + delay + jitter``); exact equality silently turns into "never
true" the moment a rate or delay changes from a dyadic to a non-dyadic
value, and the guard degrades to an off-by-one-event bug that only
shows up in some scenarios.  Compare with ``<=`` / ``>=`` against a
boundary, or use an explicit epsilon / event-count check when "exactly
at t" is really meant.
"""
    example_bad = """
if self.sim.now == 0.0:        # float equality on accumulated time
    self._bootstrap()
"""
    example_good = """
if self.sim.now <= 0.0:        # boundary comparison, same intent
    self._bootstrap()
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._is_timelike(op) for op in operands):
                yield ctx.finding(
                    self, node,
                    "float ==/!= on a sim-time value; use <=/>= or an "
                    "epsilon comparison")

    @staticmethod
    def _is_timelike(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in _TIME_ATTRS
        if isinstance(node, ast.Name):
            return node.id in _TIME_NAMES
        return False


# ----------------------------------------------------------------------
# SIM006 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


class Sim006MutableDefault(Rule):
    code = "SIM006"
    title = "no mutable default arguments in sim code"
    domains = (Domain.SIM,)
    rationale = """
A mutable default (``def f(x, acc=[])``) is evaluated once at import
and shared by every call — state leaks across simulator instances and
across fleet shards running in one worker process, so shard results
depend on which shards the worker happened to run before.  Use ``None``
and construct inside the function, or ``dataclasses.field(default_factory=...)``.
"""
    example_bad = """
def run(self, hooks=[]):
    hooks.append(self._default_hook)   # grows forever, shared
"""
    example_good = """
def run(self, hooks=None):
    hooks = list(hooks) if hooks else []
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self, default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            return name in _MUTABLE_CALLS
        return False


# ----------------------------------------------------------------------
# Whole-program rules (SIM007–SIM010)
# ----------------------------------------------------------------------
#
# These run against the :class:`~repro.lint.project.Project` model
# (one-parse symbol table + call graph over every linted file) instead
# of a single module, so they can see interprocedural facts the
# per-file rules cannot: who passes a seeded RNG to whom, which two
# call sites can build the same tag string, what a fleet worker can
# reach, and what ends up inside a checkpoint deepcopy.  Each rule
# filters by *module* domain internally (the driver hands them the
# whole project).


class ProjectRule(Rule):
    """Base for whole-program rules; implement :meth:`check_project`."""

    #: Project rules see every module and decide domain relevance per
    #: finding, so the per-file ``applies()`` gate always passes.
    domains = (Domain.SIM, Domain.HARNESS)

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(self, mod, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


class Sim007RngProvenance(ProjectRule):
    code = "SIM007"
    title = ("seeded RNGs must stay seeded — no process-global fallback "
             "in functions that receive a child_rng, no escape into "
             "module-level storage")
    rationale = """
A function that *receives* a seeded RNG (a ``sim.child_rng(tag)``
stream, tracked interprocedurally through assignments, call arguments,
returns and ``self.attr`` stores) has already opted into the
determinism contract — drawing from the process-global ``random``
module in the same body, or constructing a fresh unseeded ``Random()``
as a fallback (``rng = rng or random.Random()``), silently mixes a
nondeterministic stream into a deterministic one.  The second failure
mode is *escape*: binding a seeded RNG into module-level storage (a
module global, a module-level dict, a class attribute at import time)
turns a per-run stream into process state — under the fleet's warm
fork workers, every shard the worker runs afterwards continues the
same stream, so shard results depend on scheduling order.
"""
    example_bad = """
def jitter(rng):                   # callers pass sim.child_rng(...)
    return rng.random() + random.random()   # global fallback

_RNG = random.Random(1234)         # module-level: shared across shards
"""
    example_good = """
def jitter(rng):
    return 2.0 * rng.random()      # only the injected stream

class Link:
    def __init__(self, sim, name):
        self._rng = sim.child_rng(f"link:{name}")   # per-instance
"""

    def check_project(self, project) -> Iterator[Finding]:
        from repro.lint.flow import TaintAnalysis

        taint = TaintAnalysis(project)
        for fn, node, pname, detail in taint.global_random_fallbacks():
            mod = project.modules[fn.module]
            if mod.domain is not Domain.SIM:
                continue
            yield self.project_finding(
                mod, node,
                f"{fn.name}() receives a seeded RNG (parameter {pname!r}) "
                f"but also draws from {detail}; use only the injected "
                "stream")
        for mod, node, desc in taint.module_storage_escapes():
            if mod.domain is not Domain.SIM:
                continue
            yield self.project_finding(mod, node, desc)


class Sim008TagCollision(ProjectRule):
    code = "SIM008"
    title = ("child_rng tags must be collision-free — two call sites "
             "that can build the same tag share one stream")
    rationale = """
``sim.child_rng(tag)`` derives the stream from ``(seed, tag)`` alone,
so two call sites that can construct the *same* tag string get
byte-identical random streams — every draw correlated, silently, with
no crash.  This rule folds each tag expression into a pattern of
literal characters and holes (f-strings, ``+``, ``%``-formatting,
``str.format``, one level of local indirection; holes that are
parameters fold to constants when every resolved call site passes
one), then reports pairs of distinct call sites whose patterns can
intersect.  Namespace your tags: a distinct literal prefix per
subsystem (``"scale.cell.{id}"`` vs ``"scale.promote.{id}"``) is what
keeps the patterns disjoint.  Fully-dynamic tags (a bare parameter)
are never reported — the rule refuses to guess.
"""
    example_bad = """
self.rx_rng = sim.child_rng(f"radio:{cell}")
self.tx_rng = sim.child_rng(f"radio:{cell}")   # same (seed, tag)!
"""
    example_good = """
self.rx_rng = sim.child_rng(f"radio.rx:{cell}")
self.tx_rng = sim.child_rng(f"radio.tx:{cell}")
"""

    def check_project(self, project) -> Iterator[Finding]:
        from repro.lint.flow import TagIndex

        index = TagIndex(project)
        for site_a, site_b in index.collisions():
            mod = project.modules_by_path.get(site_b.path)
            if mod is None:
                continue
            shown = sorted({p.render() for p in site_a.patterns
                            if not p.is_pure_hole()})
            yield Finding(
                path=site_b.path, line=site_b.line, col=site_b.col,
                rule=self.code,
                message=(f"child_rng tag can collide with the call at "
                         f"{site_a.path}:{site_a.line} (pattern "
                         f"{' | '.join(shown)}); colliding tags share one "
                         "RNG stream — add a distinct literal prefix"))


class Sim009ForkSharedState(ProjectRule):
    code = "SIM009"
    title = ("no module-level mutable state mutated from sim code "
             "reachable by fleet workers — warm fork workers leak it "
             "across shards")
    rationale = """
The fleet's warm workers (PR7) run *many* shards per process: anything
a shard writes into module-level storage — a module dict/list, a
mutable class attribute — is still there when the next shard runs, so
results depend on which shards a worker happened to execute first, and
the serial/pool byte-identity gate breaks in ways the per-shard cache
then *preserves*.  This rule walks the call graph from the fleet
worker entry points (``run_shard``, ``_execute_batch``,
``_worker_init``, registered scenario functions) and flags sim-domain
code on those paths that mutates module-level containers or
class-level attributes never rebound per instance.  Import-time
initialization (module body) is exempt — each process imports once,
deterministically.  When a project has no fleet entry points at all
(a standalone file), every function is treated as reachable.
"""
    example_bad = """
_CACHE = {}

def lookup(sim, key):              # reachable from run_shard
    if key not in _CACHE:
        _CACHE[key] = expensive(sim, key)   # leaks across shards
    return _CACHE[key]
"""
    example_good = """
class Catalog:
    def __init__(self):
        self._cache = {}           # per-instance, dies with the shard

    def lookup(self, sim, key): ...
"""

    #: Fleet worker entry points: the functions a pool worker executes.
    WORKER_ENTRY_NAMES = frozenset({
        "run_shard", "_run_shard_inline", "_execute_batch", "_worker_init",
    })
    SCENARIO_DECORATORS = frozenset({"register_scenario"})

    _MUTATORS = frozenset({
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft", "__setitem__",
    })

    def check_project(self, project) -> Iterator[Finding]:
        roots = self._roots(project)
        standalone = not roots
        if standalone:
            reachable = set(project.functions)
        else:
            reachable = project.reachable_from(roots, include_weak=True)
        via = ("any caller (no fleet entry points in scope)" if standalone
               else "a fleet worker entry point")
        for qual in sorted(reachable):
            fn = project.functions.get(qual)
            if fn is None:
                continue
            mod = project.modules[fn.module]
            if mod.domain is not Domain.SIM:
                continue
            yield from self._check_function(project, mod, fn, via)

    def _roots(self, project) -> List[str]:
        roots = []
        for qual, fn in project.functions.items():
            if fn.name in self.WORKER_ENTRY_NAMES:
                roots.append(qual)
            elif set(fn.decorators) & self.SCENARIO_DECORATORS:
                roots.append(qual)
        return sorted(roots)

    def _check_function(self, project, mod, fn, via: str) -> Iterator[Finding]:
        from repro.lint.flow import _assigned_names
        from repro.lint.project import _walk_no_nested

        local_names = _assigned_names(fn.node)
        global_decls: Set[str] = set()
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
        for node in _walk_no_nested(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    desc = self._store_target(project, mod, fn, target,
                                              local_names, global_decls)
                    if desc:
                        yield self.project_finding(
                            mod, node,
                            f"{desc} is mutated here and reachable from "
                            f"{via}; warm fork workers leak it across "
                            "shards — keep state per-instance")
            elif isinstance(node, ast.Call):
                desc = self._mutating_call(project, mod, fn, node,
                                           local_names, global_decls)
                if desc:
                    yield self.project_finding(
                        mod, node,
                        f"{desc} is mutated here and reachable from "
                        f"{via}; warm fork workers leak it across shards "
                        "— keep state per-instance")

    def _store_target(self, project, mod, fn, target: ast.AST,
                      local_names: Set[str],
                      global_decls: Set[str]) -> Optional[str]:
        if isinstance(target, ast.Name):
            if target.id in global_decls:
                gvar = mod.globals.get(target.id)
                qual = gvar.qual if gvar else f"{mod.module}.{target.id}"
                return f"module global {qual}"
            return None
        if isinstance(target, ast.Subscript):
            return self._container_base(project, mod, fn, target.value,
                                        local_names, global_decls,
                                        "[...]")
        return None

    def _mutating_call(self, project, mod, fn, call: ast.Call,
                       local_names: Set[str],
                       global_decls: Set[str]) -> Optional[str]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in self._MUTATORS):
            return None
        return self._container_base(project, mod, fn, func.value,
                                    local_names, global_decls,
                                    f".{func.attr}(...)")

    def _container_base(self, project, mod, fn, base: ast.AST,
                        local_names: Set[str], global_decls: Set[str],
                        op: str) -> Optional[str]:
        if isinstance(base, ast.Name):
            name = base.id
            if name in fn.params:
                return None
            if name in local_names and name not in global_decls:
                return None
            gvar = project.global_for_name(mod, name)
            if gvar is not None and gvar.mutable:
                return f"module-level container {gvar.qual}{op}"
            return None
        if isinstance(base, ast.Attribute) and isinstance(base.value,
                                                          ast.Name):
            owner = base.value.id
            attr = base.attr
            if owner == "self":
                cinfo = project.owning_class(fn)
                if (cinfo is not None and attr in cinfo.class_attrs
                        and cinfo.class_attrs[attr].mutable
                        and attr not in cinfo.instance_attrs):
                    return (f"class-level container "
                            f"{cinfo.qual}.{attr}{op}")
                return None
            resolved = project.resolve_local(mod, (owner,))
            cinfo = project.class_of(resolved) if resolved else None
            if (cinfo is not None and attr in cinfo.class_attrs
                    and cinfo.class_attrs[attr].mutable):
                return f"class-level container {cinfo.qual}.{attr}{op}"
        return None


class Sim010CheckpointSafety(ProjectRule):
    code = "SIM010"
    title = ("no generators, open files, locks, or deepcopy-dropped "
             "controller types on classes inside Checkpoint deepcopy "
             "roots")
    rationale = """
``Checkpoint(sim, roots)`` snapshots with ``copy.deepcopy`` — so every
field on every class reachable from the roots must survive a deepcopy
*and mean the same thing afterwards*.  Three ways that fails:
generators / ``iter(...)`` results and open OS resources (files,
sockets, locks) either crash the deepcopy or alias live state into the
snapshot; and a type that some reachable class's ``__deepcopy__``
deliberately *drops* (PR6's ``ReplayController`` bug class) silently
vanishes on restore — assign such a type anywhere *except* the field
designed to drop it, and a restored run diverges from the recorded
one.  The rule resolves checkpoint root classes from
``*.checkpoint(...)`` / ``Checkpoint(...)`` call sites (through
return types, including a name-based fallback for dynamic harness
dispatch), closes over field types, and checks every field store.
``itertools.count()`` is deliberately allowed: it deepcopies and
pickles fine (the engine's own event sequencer uses one).
"""
    example_bad = """
class Session:                      # reachable from checkpoint roots
    def __init__(self, sim, frames):
        self._pending = (f for f in frames)    # generator: deepcopy
        self._log = open("session.log", "w")   # crashes or aliases
"""
    example_good = """
class Session:
    def __init__(self, sim, frames):
        self._pending = list(frames)           # plain data snapshots
        self._log_path = "session.log"         # reopen on demand
"""

    _RESOURCE_CALLS = {
        "open": "an open file",
        "io.open": "an open file",
        "io.FileIO": "an open file",
        "io.BufferedReader": "an open file",
        "io.BufferedWriter": "an open file",
        "io.TextIOWrapper": "an open file",
        "socket.socket": "a live socket",
        "socket.create_connection": "a live socket",
        "tempfile.TemporaryFile": "an open temp file",
        "tempfile.NamedTemporaryFile": "an open temp file",
        "tempfile.SpooledTemporaryFile": "an open temp file",
        "threading.Lock": "a lock",
        "threading.RLock": "a lock",
        "threading.Condition": "a lock",
        "threading.Semaphore": "a lock",
        "threading.BoundedSemaphore": "a lock",
        "threading.Event": "a lock-backed event",
        "multiprocessing.Lock": "a lock",
        "multiprocessing.RLock": "a lock",
    }

    def check_project(self, project) -> Iterator[Finding]:
        roots = self._root_classes(project)
        if not roots:
            return
        closure = self._field_closure(project, roots)
        dropped, excluded = self._deepcopy_exclusions(project, closure)
        for cls_qual in sorted(closure):
            cinfo = project.class_of(cls_qual)
            if cinfo is None:
                continue
            mod = project.modules[cinfo.module]
            for method in cinfo.methods.values():
                yield from self._check_stores(
                    project, mod, method, cinfo, dropped, excluded)
        # Exterior stores: obj.field = Excluded(...) where obj's class
        # is in the closure.
        yield from self._check_exterior_stores(
            project, closure, dropped, excluded)

    # -- roots ---------------------------------------------------------
    def _root_classes(self, project) -> Set[str]:
        from repro.lint.project import _walk_no_nested

        roots: Set[str] = set()
        for fn in project.functions.values():
            mod = project.modules[fn.module]
            env = project._local_env(fn)
            for node in _walk_no_nested(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_checkpoint_call(project, mod, node):
                    for arg in node.args:
                        roots |= self._arg_classes(project, mod, fn, env,
                                                   arg)
        return roots

    def _is_checkpoint_call(self, project, mod, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "checkpoint":
            return True
        if isinstance(func, ast.Name):
            origin = mod.imports.get(func.id, "")
            if origin.endswith(".Checkpoint") or func.id == "Checkpoint":
                return True
        return False

    def _arg_classes(self, project, mod, fn, env, arg: ast.AST) -> Set[str]:
        from repro.lint.project import _walk_no_nested

        out: Set[str] = set()
        if isinstance(arg, ast.Name):
            out |= env.get(arg.id, set())
            if not out:
                # The local env only sees constructor/annotation types;
                # trace the name to its assignment for the dynamic
                # cases (world = harness.make_world(seed)).
                for node in _walk_no_nested(fn.node):
                    if (isinstance(node, ast.Assign)
                            and any(isinstance(t, ast.Name)
                                    and t.id == arg.id
                                    for t in node.targets)
                            and isinstance(node.value, ast.Call)):
                        out |= self._arg_classes(project, mod, fn, env,
                                                 node.value)
        elif isinstance(arg, (ast.Tuple, ast.List)):
            for elt in arg.elts:
                out |= self._arg_classes(project, mod, fn, env, elt)
        elif isinstance(arg, ast.Call):
            out |= project._constructed_classes(mod, arg)
            if not out:
                # Dynamic dispatch (harness.make_world(...)): name-based
                # fallback over every project method with that name.
                func = arg.func
                if isinstance(func, ast.Attribute):
                    for mq in project._methods_by_name.get(func.attr, ()):
                        out |= project._return_classes(mq)
        elif isinstance(arg, ast.Attribute):
            if (isinstance(arg.value, ast.Name) and arg.value.id == "self"
                    and fn.class_qual):
                cinfo = project.class_of(fn.class_qual)
                if cinfo:
                    out |= cinfo.attr_types.get(arg.attr, set())
        return out

    # -- closure & exclusions ------------------------------------------
    def _field_closure(self, project, roots: Set[str]) -> Set[str]:
        seen: Set[str] = set()
        queue = sorted(roots)
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            cinfo = project.class_of(qual)
            if cinfo is None:
                continue
            for types in cinfo.attr_types.values():
                for t in types:
                    if t not in seen:
                        queue.append(t)
        return seen

    def _deepcopy_exclusions(self, project, closure: Set[str]):
        """``(dropped, excluded)``: fields a ``__deepcopy__`` never
        carries over, and the types stored in those fields."""
        from repro.lint.project import _walk_no_nested

        dropped: Set[tuple] = set()       # (class qual, attr)
        excluded: Dict[str, str] = {}     # type qual -> dropping "C.attr"
        for qual in sorted(closure):
            cinfo = project.class_of(qual)
            if cinfo is None or "__deepcopy__" not in cinfo.methods:
                continue
            body = cinfo.methods["__deepcopy__"].node
            mentioned: Set[str] = set()
            for node in _walk_no_nested(body):
                if isinstance(node, ast.Attribute):
                    mentioned.add(node.attr)
                elif isinstance(node, ast.Constant) and isinstance(
                        node.value, str):
                    mentioned.add(node.value)
            for attr in sorted(set(cinfo.instance_attrs)
                               | set(cinfo.attr_types)):
                if attr not in mentioned:
                    dropped.add((qual, attr))
                    for t in cinfo.attr_types.get(attr, ()):
                        excluded.setdefault(t, f"{cinfo.name}.{attr}")
        return dropped, excluded

    # -- field stores --------------------------------------------------
    def _check_stores(self, project, mod, method, cinfo,
                      dropped, excluded) -> Iterator[Finding]:
        from repro.lint.project import _walk_no_nested

        for node in _walk_no_nested(method.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                yield from self._judge_store(
                    project, mod, method, cinfo.qual, cinfo.name,
                    target.attr, node, dropped, excluded)

    def _check_exterior_stores(self, project, closure,
                               dropped, excluded) -> Iterator[Finding]:
        from repro.lint.project import _walk_no_nested

        for qual in sorted(project.functions):
            fn = project.functions[qual]
            mod = project.modules[fn.module]
            env = project._local_env(fn)
            for node in _walk_no_nested(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    owners = self._owner_classes(project, fn, env,
                                                 target.value)
                    for owner in sorted(owners & closure):
                        cinfo = project.class_of(owner)
                        if cinfo is None or fn.class_qual == owner:
                            continue
                        yield from self._judge_store(
                            project, mod, fn, owner, cinfo.name,
                            target.attr, node, dropped, excluded)

    def _owner_classes(self, project, fn, env, base: ast.AST) -> Set[str]:
        if isinstance(base, ast.Name):
            return set(env.get(base.id, set()))
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)):
            for owner in env.get(base.value.id, set()):
                cinfo = project.class_of(owner)
                if cinfo is not None:
                    return set(cinfo.attr_types.get(base.attr, set()))
        return set()

    def _judge_store(self, project, mod, fn, cls_qual, cls_name, attr,
                     node: ast.Assign, dropped,
                     excluded) -> Iterator[Finding]:
        if (cls_qual, attr) in dropped:
            # Stores into the dropping field itself are the designed
            # opt-out: __deepcopy__ intentionally does not carry it.
            return
        desc = self._unsafe_value(project, mod, fn, node.value, excluded)
        if desc:
            yield self.project_finding(
                mod, node,
                f"field {cls_name}.{attr} is reachable from a Checkpoint "
                f"deepcopy root but holds {desc}; checkpoint/restore "
                "will fail or silently diverge")

    def _unsafe_value(self, project, mod, fn, value: ast.AST,
                      excluded: Dict[str, str]) -> Optional[str]:
        if isinstance(value, ast.GeneratorExp):
            return "a generator expression (deepcopy cannot snapshot it)"
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name) and func.id == "iter":
            return "a live iterator (iter(...))"
        qual = qualified_name(func, mod.imports)
        if qual is None and isinstance(func, ast.Name):
            qual = func.id if func.id == "open" else None
        if qual in self._RESOURCE_CALLS:
            return self._RESOURCE_CALLS[qual]
        # Calls to project generator functions.
        env = project._local_env(fn)
        for callee in project._resolve_call(fn, env, value) or ():
            target = project.function_of(callee)
            if target is not None and target.has_yield:
                return (f"a generator (call to yield-function "
                        f"{target.name}())")
        # Deepcopy-excluded types.
        chain = None
        from repro.lint.project import attribute_chain
        chain = attribute_chain(func)
        if chain:
            resolved = project.resolve_local(mod, chain)
            if resolved in excluded:
                dropper = excluded[resolved]
                return (f"an instance of {resolved.rsplit('.', 1)[-1]}, "
                        f"which {dropper}'s __deepcopy__ drops — it "
                        "vanishes on restore")
        return None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_RULE_CLASSES: List[Type[Rule]] = [
    Sim001GlobalRandom,
    Sim002WallClock,
    Sim003UnstableRngTag,
    Sim004UnorderedIteration,
    Sim005FloatTimeEquality,
    Sim006MutableDefault,
    Sim007RngProvenance,
    Sim008TagCollision,
    Sim009ForkSharedState,
    Sim010CheckpointSafety,
]

RULES: Dict[str, Rule] = {cls.code: cls() for cls in _RULE_CLASSES}

#: Codes of the whole-program rules (driven once per project, not per
#: file).
PROJECT_RULE_CODES = frozenset(
    cls.code for cls in _RULE_CLASSES if issubclass(cls, ProjectRule))


def all_rules() -> List[Rule]:
    return [RULES[code] for code in sorted(RULES)]
