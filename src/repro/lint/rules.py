"""The SIM rule set: determinism and simulation-safety checks.

Each rule is a class with a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  Rules are registered in
:data:`RULES` and documented twice: a one-line ``title`` for listings
and a longer ``rationale`` (with a bad/good example pair) printed by
``python -m repro lint --explain SIMxxx``.

Design notes
------------
The rules are *syntactic*.  There is no type inference beyond a small
per-scope propagation of "this local is set-typed" for SIM004, so each
rule is written to keep false positives near zero on idiomatic code and
to be suppressible (``# simlint: disable=SIMxxx``) where the remaining
ambiguity is judged acceptable.  Python dict iteration is
insertion-ordered (3.7+) and therefore deterministic; only ``set`` /
``frozenset`` iteration order depends on ``PYTHONHASHSEED``, which is
why SIM004 targets sets even though unordered-container bugs are
colloquially blamed on "dict ordering".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Type

from repro.lint.domains import Domain
from repro.lint.findings import Finding

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to dotted origins for every import in ``tree``.

    ``import numpy as np``            → ``{"np": "numpy"}``
    ``from random import Random``     → ``{"Random": "random.Random"}``
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never shadow stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def qualified_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted name through the imports.

    Returns ``None`` when the base is not an imported name (locals,
    ``self`` attributes, call results) — the rules only judge what they
    can resolve.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _call_target_name(node: ast.Call) -> Optional[str]:
    """The bare attribute/function name a call dispatches to."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class RuleContext:
    """Everything a rule needs to inspect one module."""

    def __init__(self, path: str, domain: Domain, tree: ast.Module,
                 source: str) -> None:
        self.path = path
        self.domain = domain
        self.tree = tree
        self.source = source
        self.imports = build_import_map(tree)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.code,
            message=message,
        )


class Rule:
    """Base class; subclasses set the metadata and implement check()."""

    code: str = ""
    title: str = ""
    domains: Iterable[Domain] = (Domain.SIM,)
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def applies(self, domain: Domain) -> bool:
        return domain in tuple(self.domains)

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        lines = [f"{cls.code}: {cls.title}", "", cls.rationale.strip()]
        if cls.example_bad:
            lines += ["", "Bad:", _indent(cls.example_bad)]
        if cls.example_good:
            lines += ["", "Good:", _indent(cls.example_good)]
        return "\n".join(lines) + "\n"


def _indent(block: str) -> str:
    return "\n".join(f"    {line}" for line in block.strip().splitlines())


# ----------------------------------------------------------------------
# SIM001 — process-global / unseeded RNGs
# ----------------------------------------------------------------------

#: Seeded construction is fine; these numpy entry points are the modern
#: seeded API and are exempt when called with arguments.
_NUMPY_SEEDED = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
    "Philox", "MT19937", "SFC64", "BitGenerator",
})


class Sim001GlobalRandom(Rule):
    code = "SIM001"
    title = ("no process-global or unseeded RNGs in sim code — draw from "
             "sim.child_rng(tag) or an injected/seeded Random")
    domains = (Domain.SIM,)
    rationale = """
Module-level ``random.*`` calls draw from one hidden process-global
stream, so any unrelated draw (another subsystem, a library, a test
running first) shifts every later value and the trace diverges.  Bare
``random.Random()`` / ``numpy.random.default_rng()`` seed from OS
entropy and differ on every run; ``random.SystemRandom`` is
nondeterministic by design.  The engine's ``sim.child_rng(tag)``
derives an independent stream as a pure function of ``(seed, tag)`` —
use it, or accept an explicitly seeded RNG as a parameter.
"""
    example_bad = """
import random
delay = random.uniform(0.0, jitter)      # global stream
rng = random.Random()                    # OS-entropy seed
"""
    example_good = """
self._rng = sim.child_rng(f"link:{name}")
delay = self._rng.uniform(0.0, jitter)
rng = random.Random(f"{seed}:{tag}")     # explicit seed: reproducible
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_name(node.func, ctx.imports)
            if qual is None:
                continue
            if qual == "random.Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self, node,
                        "bare random.Random() seeds from OS entropy; pass an "
                        "explicit seed or use sim.child_rng(tag)")
            elif qual == "random.SystemRandom":
                yield ctx.finding(
                    self, node,
                    "random.SystemRandom is nondeterministic by design; "
                    "sim code must use a seeded RNG")
            elif qual.startswith("random."):
                yield ctx.finding(
                    self, node,
                    f"{qual}() draws from the process-global RNG; use "
                    "sim.child_rng(tag) or an injected random.Random(seed)")
            elif qual.startswith("numpy.random."):
                attr = qual.rsplit(".", 1)[1]
                if attr in _NUMPY_SEEDED:
                    if attr == "default_rng" and not node.args and not node.keywords:
                        yield ctx.finding(
                            self, node,
                            "numpy.random.default_rng() without a seed is "
                            "fresh OS entropy per call; pass a seed")
                else:
                    yield ctx.finding(
                        self, node,
                        f"{qual}() uses numpy's process-global RNG; use "
                        "numpy.random.default_rng(seed)")


# ----------------------------------------------------------------------
# SIM002 — wall-clock time
# ----------------------------------------------------------------------

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class Sim002WallClock(Rule):
    code = "SIM002"
    title = ("no wall-clock reads in sim code — all time flows from "
             "sim.now (harness dirs fleet/, cli.py, benchmarks/ exempt)")
    domains = (Domain.SIM,)
    rationale = """
Simulated time is ``sim.now``, full stop.  A wall-clock read inside the
sim domain couples results to host speed and scheduling: traces stop
replaying, fleet shard caches (content-addressed by campaign spec, not
by machine) go stale silently, and byte-identical serial/pool
aggregation breaks.  Harness code — the CLI's progress/ETA line, the
fleet pool's worker timeouts, benchmarks — measures real elapsed time
on purpose and lives on an allowlist (see repro.lint.domains).
"""
    example_bad = """
t0 = time.monotonic()          # host-dependent
stamp = datetime.now()         # differs every run
"""
    example_good = """
t0 = self.sim.now              # simulated seconds, reproducible
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_name(node.func, ctx.imports)
            if qual in _WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"{qual}() reads the wall clock; sim code must use "
                    "sim.now (harness code belongs under fleet/, cli.py or "
                    "benchmarks/)")


# ----------------------------------------------------------------------
# SIM003 — nondeterministic child_rng tags
# ----------------------------------------------------------------------

_UNSTABLE_BUILTINS = frozenset({"id", "hash", "repr", "vars", "dir"})


class Sim003UnstableRngTag(Rule):
    code = "SIM003"
    title = ("child_rng tags must be stable strings — id()/hash()/repr() "
             "vary across processes")
    domains = (Domain.SIM, Domain.HARNESS)
    rationale = """
``sim.child_rng(tag)`` makes the stream a pure function of
``(seed, tag)`` — but only if the tag itself is stable.  ``id(obj)`` is
a memory address, ``hash(str)`` is salted per process
(PYTHONHASHSEED), and a default ``repr`` embeds the id; a tag built
from any of these gives every process (and every rerun) a different
stream, which is exactly the bug the discipline exists to prevent.
This applies in the harness too: the fleet runner derives shard seeds
with the same ``(seed, tag)`` recipe.
"""
    example_bad = """
rng = sim.child_rng(f"flow:{id(self)}")
rng = sim.child_rng(str(hash(name)))
"""
    example_good = """
rng = sim.child_rng(f"flow:{self.name}")    # stable, human-readable
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_target_name(node) != "child_rng":
                continue
            pieces: List[ast.AST] = list(node.args)
            pieces += [kw.value for kw in node.keywords]
            for arg in pieces:
                culprit = self._unstable_part(arg)
                if culprit is not None:
                    yield ctx.finding(
                        self, node,
                        f"child_rng tag depends on {culprit}, which varies "
                        "across processes/runs; build tags from stable names")
                    break

    @staticmethod
    def _unstable_part(arg: ast.AST) -> Optional[str]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Name) and func.id in _UNSTABLE_BUILTINS:
                    return f"{func.id}()"
                if isinstance(func, ast.Attribute) and func.attr == "__repr__":
                    return "__repr__()"
            elif isinstance(sub, ast.Attribute) and sub.attr == "__repr__":
                return "__repr__"
        return None


# ----------------------------------------------------------------------
# SIM004 — unordered iteration feeding order-sensitive sinks
# ----------------------------------------------------------------------

#: Calls whose argument/invocation order is observable in traces or
#: aggregates: the event queue (seq numbers!), heaps, ordered
#: accumulators.
_ORDER_SINKS = frozenset({
    "schedule", "schedule_at", "call_later", "call_at", "heappush",
    "append", "appendleft", "push", "record", "enqueue", "emit", "send",
    "observe", "add_flow",
})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


class Sim004UnorderedIteration(Rule):
    code = "SIM004"
    title = ("don't feed set iteration order into schedule()/ordered "
             "accumulators — wrap the set in sorted()")
    domains = (Domain.SIM,)
    rationale = """
``set`` iteration order depends on insertion history *and* on the
per-process string-hash salt (PYTHONHASHSEED), so two processes — e.g.
a fleet worker and the byte-identical serial fallback — can walk the
same set differently.  Harmless for commutative folds (unions, sums),
fatal when the order reaches an order-sensitive sink: ``schedule()``
assigns tie-breaking sequence numbers in call order, and list-building
(``append``, list comprehensions, ``list(...)``) bakes the order into
aggregates.  ``sorted(the_set)`` makes the order explicit and
deterministic.  Dict iteration is insertion-ordered in Python 3.7+ and
is therefore not flagged.

The check is syntactic: it flags iteration over expressions it can see
are sets (literals, ``set()``/``frozenset()`` calls, set operators on
those, and locals assigned from them) when the loop body calls an
order-sensitive sink, and ``list()``/``tuple()``/list-comprehension
materialization of such sets.
"""
    example_bad = """
for node in failed_nodes:                 # a set
    sim.schedule(delay, node.restart)     # order -> event seq numbers
order = [n.name for n in reachable]       # a set -> ordered list
"""
    example_good = """
for node in sorted(failed_nodes, key=lambda n: n.name):
    sim.schedule(delay, node.restart)
order = sorted(n.name for n in reachable)
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes += [n for n in ast.walk(ctx.tree)
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            set_names = self._set_locals(scope)
            for node in self._scope_nodes(scope):
                yield from self._check_node(ctx, node, set_names)

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function defs."""
        body = scope.body if hasattr(scope, "body") else []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _set_locals(self, scope: ast.AST) -> Set[str]:
        """Names assigned *only* set-typed expressions within ``scope``."""
        assigned: Dict[str, bool] = {}

        def note(name: str, is_set: bool) -> None:
            assigned[name] = assigned.get(name, True) and is_set

        for node in self._scope_nodes(scope):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    note(target.id, self._is_set_expr(value, set()))
        return {name for name, is_set in assigned.items() if is_set}

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (isinstance(func, ast.Attribute) and func.attr in _SET_METHODS
                    and self._is_set_expr(func.value, set_names)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False

    def _check_node(self, ctx: RuleContext, node: ast.AST,
                    set_names: Set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if (self._is_set_expr(node.iter, set_names)
                    and self._body_hits_sink(node.body)):
                yield ctx.finding(
                    self, node,
                    "iterating a set feeds an order-sensitive sink "
                    "(schedule/append/...); wrap the set in sorted()")
        elif isinstance(node, ast.ListComp):
            if any(self._is_set_expr(gen.iter, set_names)
                   for gen in node.generators):
                yield ctx.finding(
                    self, node,
                    "list comprehension over a set bakes hash order into "
                    "an ordered result; use sorted(...)")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id in ("list", "tuple")
                    and len(node.args) == 1 and not node.keywords
                    and self._is_set_expr(node.args[0], set_names)):
                yield ctx.finding(
                    self, node,
                    f"{func.id}(set) materializes hash order; use "
                    "sorted(...) for a deterministic sequence")

    @staticmethod
    def _body_hits_sink(body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if (isinstance(node, ast.Call)
                        and _call_target_name(node) in _ORDER_SINKS):
                    return True
        return False


# ----------------------------------------------------------------------
# SIM005 — float equality on sim time
# ----------------------------------------------------------------------

_TIME_ATTRS = frozenset({"now", "sim_time"})
_TIME_NAMES = frozenset({"now", "sim_time", "t_now"})


class Sim005FloatTimeEquality(Rule):
    code = "SIM005"
    title = "no ==/!= on sim-time floats — use <=, >=, or an epsilon"
    domains = (Domain.SIM,)
    rationale = """
Sim timestamps are floats accumulated through additions
(``now + delay + jitter``); exact equality silently turns into "never
true" the moment a rate or delay changes from a dyadic to a non-dyadic
value, and the guard degrades to an off-by-one-event bug that only
shows up in some scenarios.  Compare with ``<=`` / ``>=`` against a
boundary, or use an explicit epsilon / event-count check when "exactly
at t" is really meant.
"""
    example_bad = """
if self.sim.now == 0.0:        # float equality on accumulated time
    self._bootstrap()
"""
    example_good = """
if self.sim.now <= 0.0:        # boundary comparison, same intent
    self._bootstrap()
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._is_timelike(op) for op in operands):
                yield ctx.finding(
                    self, node,
                    "float ==/!= on a sim-time value; use <=/>= or an "
                    "epsilon comparison")

    @staticmethod
    def _is_timelike(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in _TIME_ATTRS
        if isinstance(node, ast.Name):
            return node.id in _TIME_NAMES
        return False


# ----------------------------------------------------------------------
# SIM006 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


class Sim006MutableDefault(Rule):
    code = "SIM006"
    title = "no mutable default arguments in sim code"
    domains = (Domain.SIM,)
    rationale = """
A mutable default (``def f(x, acc=[])``) is evaluated once at import
and shared by every call — state leaks across simulator instances and
across fleet shards running in one worker process, so shard results
depend on which shards the worker happened to run before.  Use ``None``
and construct inside the function, or ``dataclasses.field(default_factory=...)``.
"""
    example_bad = """
def run(self, hooks=[]):
    hooks.append(self._default_hook)   # grows forever, shared
"""
    example_good = """
def run(self, hooks=None):
    hooks = list(hooks) if hooks else []
"""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self, default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            return name in _MUTABLE_CALLS
        return False


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_RULE_CLASSES: List[Type[Rule]] = [
    Sim001GlobalRandom,
    Sim002WallClock,
    Sim003UnstableRngTag,
    Sim004UnorderedIteration,
    Sim005FloatTimeEquality,
    Sim006MutableDefault,
]

RULES: Dict[str, Rule] = {cls.code: cls() for cls in _RULE_CLASSES}


def all_rules() -> List[Rule]:
    return [RULES[code] for code in sorted(RULES)]
