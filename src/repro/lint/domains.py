"""Sim-domain vs harness classification.

The determinism rules only make sense inside the *simulation domain*:
code whose behaviour must be a pure function of ``(scenario, seed)``.
Harness code — the CLI, the fleet process-pool runner, benchmarks,
tests — legitimately reads wall clocks (progress/ETA lines) and may use
OS-level entropy, so SIM001/SIM002 exempt it.

The split is by path, mirroring the package layout:

- ``fleet/`` — multi-process campaign harness (wall-clock ETA, worker
  timeouts);
- ``cli.py`` / ``__main__.py`` — user-facing entry points;
- ``benchmarks/``, ``tests/``, ``examples/`` — measurement and test
  harnesses outside the package;
- ``lint/`` — this tool itself.

Everything else under ``src/repro`` (simnet, wireless, transport, core,
mar, vision, edge, analysis, obs, check, scale) is sim-domain.
**scale** — the hybrid-fidelity city layer — is sim-domain end to end:
its fluid cell processes draw from ``sim.child_rng`` tags and its shard
runners are ordinary fleet scenario functions, so a 10^5-user city
campaign must fingerprint identically across runs.  **check** —
the state-space explorer — must be sim-domain: an exploration run is a
pure function of ``(harness, seed, budget)``, so its budgets are event
counts, never wall time (the CLI, ``check/cli.py``, is harness by
filename and may time states/sec).  Note that **obs** —
the observability layer — is deliberately sim-domain even though it
produces operator-facing artifacts: traces and metrics must be a pure
function of ``(scenario, seed)`` (byte-identical double-run exports are
a hard CI gate), so its timestamps come from ``sim.now``, never a wall
clock.
"""

from __future__ import annotations

import enum
import pathlib
from typing import Union


class Domain(enum.Enum):
    SIM = "sim"
    HARNESS = "harness"


#: Any path containing one of these directory components is harness.
HARNESS_DIR_PARTS = frozenset({
    "fleet", "lint", "benchmarks", "tests", "examples", "scripts", "docs",
})

#: Sim-domain packages, listed explicitly so adding a subsystem is a
#: deliberate classification decision (``classify`` still treats any
#: unlisted, non-harness path as sim — fail closed toward the stricter
#: domain).
SIM_DIR_PARTS = frozenset({
    "simnet", "wireless", "transport", "core", "mar", "vision", "edge",
    "analysis", "obs", "check", "scale",
})

#: Files that are harness regardless of location.
HARNESS_FILENAMES = frozenset({
    "cli.py", "__main__.py", "conftest.py", "setup.py",
})


def classify(path: Union[str, pathlib.PurePath]) -> Domain:
    """Classify a (repo-relative or absolute) path into a domain."""
    pure = pathlib.PurePosixPath(str(path).replace("\\", "/"))
    if pure.name in HARNESS_FILENAMES:
        return Domain.HARNESS
    if any(part in HARNESS_DIR_PARTS for part in pure.parts):
        return Domain.HARNESS
    return Domain.SIM
