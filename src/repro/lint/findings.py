"""The :class:`Finding` record shared by every simlint rule.

A finding is a frozen value object so rules can emit them freely and
the driver can sort, deduplicate, serialize and compare them against a
baseline without worrying about identity.  The *baseline key* is
``(path, rule, line)`` — column and message are advisory (messages may
be reworded between versions without invalidating a checked-in
baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is stored repo-relative with forward slashes so findings
    (and therefore baselines) are stable across machines and operating
    systems.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, int]:
        """Identity used for baseline matching: ``(path, rule, line)``."""
        return (self.path, self.rule, self.line)

    def render(self) -> str:
        """GCC-style one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),            # type: ignore[arg-type]
            col=int(data.get("col", 0)),       # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data.get("message", "")),
        )
