"""``--diff <ref>`` support: changed-line sets from ``git diff -U0``.

Diff mode reports only findings whose line was added or modified
relative to a git ref, so the whole-program rules can roll out across
a large tree without a baseline-churn flag day: untouched legacy lines
stay silent, anything you edit is held to the full rule set.  The
tradeoff against baselines is documented in docs/LINT.md — in short, a
baseline is an explicit owned debt list, diff mode is an implicit one.

The parser is pure stdlib over unified-diff text (``-U0`` hunks carry
no context lines, so the ``+`` side of each hunk header *is* the
changed-line set); running git is isolated in :func:`changed_lines` so
tests can feed diff text directly.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
from typing import Dict, Optional, Set

_FILE_RE = re.compile(r"^\+\+\+ (?:b/)?(.+?)\s*$")
_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


class DiffError(RuntimeError):
    """git could not produce a diff (bad ref, not a repo, ...)."""


def parse_unified_diff(text: str) -> Dict[str, Set[int]]:
    """Map each changed file to its set of added/modified line numbers.

    Expects ``git diff -U0`` output: ``+++ b/<path>`` headers followed
    by ``@@ -a[,b] +c[,d] @@`` hunks; the new-side range ``c..c+d-1``
    is the changed-line set (``d`` omitted means 1; ``d == 0`` is a
    pure deletion and contributes no lines).  Deleted files
    (``+++ /dev/null``) are skipped.
    """
    changed: Dict[str, Set[int]] = {}
    current: Optional[str] = None
    for line in text.splitlines():
        file_match = _FILE_RE.match(line)
        if file_match:
            target = file_match.group(1)
            if target == "/dev/null":
                current = None
            else:
                current = pathlib.PurePosixPath(target).as_posix()
                changed.setdefault(current, set())
            continue
        hunk_match = _HUNK_RE.match(line)
        if hunk_match and current is not None:
            start = int(hunk_match.group(1))
            count = int(hunk_match.group(2) or 1)
            changed[current].update(range(start, start + count))
    return {path: lines for path, lines in changed.items() if lines}


def changed_lines(ref: str,
                  cwd: Optional[pathlib.Path] = None) -> Dict[str, Set[int]]:
    """Changed-line sets for the working tree vs ``ref``."""
    command = ["git", "diff", "-U0", "--no-color", ref, "--", "*.py"]
    try:
        proc = subprocess.run(
            command, cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, check=False)
    except OSError as exc:
        raise DiffError(f"cannot run git: {exc}") from exc
    if proc.returncode not in (0, 1):
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise DiffError(f"git diff {ref} failed: {detail}")
    return parse_unified_diff(proc.stdout)


__all__ = ["DiffError", "changed_lines", "parse_unified_diff"]
