"""File walking and rule driving (per-file and whole-program).

:func:`lint_source` is the single-module entry point (and the unit-test
workhorse): parse, classify, run every applicable per-file rule, then
run the whole-program rules against a one-module project so fixtures
exercise SIM007–SIM010 too.  :func:`lint_paths` maps the per-file pass
over files and directories — serially, or across ``usable_cpus()``
fork workers with byte-identical output — and then runs the
whole-program rules once against the full project model.

Parallel design: workers run only the per-file rules and return plain
:class:`Finding` values (cheap pickles); the driver parses everything
once more for the project model, which measures *cheaper* than
shipping pickled ASTs back (unpickling an AST costs more than parsing
the source).  Findings are sorted at the end, so serial and parallel
runs are byte-identical by construction.
"""

from __future__ import annotations

import ast
import os
import pathlib
import warnings
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.domains import Domain, classify
from repro.lint.findings import Finding
from repro.lint.rules import (
    PROJECT_RULE_CODES,
    RULES,
    ProjectRule,
    RuleContext,
)
from repro.lint.suppress import Suppressions

#: Rule code reserved for files the parser rejects.  Parse errors are
#: never suppressible — a file that does not parse cannot be reasoned
#: about at all.
PARSE_ERROR_RULE = "SIM000"

#: Below this many files a worker pool costs more than it saves.
PARALLEL_THRESHOLD = 24


def _parse(source: str, path: str) -> Tuple[Optional[ast.Module],
                                            Optional[Finding]]:
    try:
        return ast.parse(source, filename=path), None
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = (getattr(exc, "offset", 1) or 1)
        msg = exc.msg if hasattr(exc, "msg") else str(exc)
        return None, Finding(path=path, line=line, col=col,
                             rule=PARSE_ERROR_RULE,
                             message=f"could not parse: {msg}")


def _file_findings(tree: ast.Module, source: str, path: str,
                   domain: Domain,
                   selected: Sequence[str]) -> List[Finding]:
    """Run the per-file rules over one parsed module."""
    suppressions = Suppressions.from_source(source)
    for code in sorted(suppressions.mentioned - set(RULES)):
        warnings.warn(
            f"{path}: suppression names unknown rule {code} "
            f"(known: {', '.join(sorted(RULES))})",
            stacklevel=2)
    ctx = RuleContext(path, domain, tree, source)
    findings: List[Finding] = []
    for code in selected:
        rule = RULES[code]
        if isinstance(rule, ProjectRule) or not rule.applies(domain):
            continue
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return findings


def _project_findings(entries: Sequence[Tuple[str, str, ast.Module]],
                      selected: Sequence[str]) -> List[Finding]:
    """Run the whole-program rules once over all parsed modules."""
    codes = [c for c in selected if c in PROJECT_RULE_CODES]
    if not codes or not entries:
        return []
    from repro.lint.project import Project

    project = Project.build(entries)
    findings: List[Finding] = []
    for code in codes:
        rule = RULES[code]
        assert isinstance(rule, ProjectRule)
        for finding in rule.check_project(project):
            mod = project.modules_by_path.get(finding.path)
            if mod is not None and mod.suppressions.is_suppressed(
                    finding.rule, finding.line):
                continue
            findings.append(finding)
    return findings


def lint_source(source: str, path: str,
                rules: Optional[Iterable[str]] = None,
                domain: Optional[Domain] = None) -> List[Finding]:
    """Lint one module given as a string.

    ``path`` determines the domain (unless ``domain`` overrides it) and
    is recorded verbatim in findings.  ``rules`` restricts checking to
    the given codes.  The whole-program rules run against a one-module
    project, so single-file callers (tests, the CI seeded-violation
    gate) still exercise SIM007–SIM010.
    """
    norm = pathlib.PurePath(path).as_posix()
    tree, error = _parse(source, norm)
    if tree is None:
        assert error is not None
        return [error]
    if domain is None:
        domain = classify(norm)
    selected = sorted(rules) if rules is not None else sorted(RULES)
    findings = _file_findings(tree, source, norm, domain, selected)
    findings.extend(_project_findings([(norm, source, tree)], selected))
    findings.sort()
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[pathlib.Path]:
    """Expand files and directories into a sorted stream of .py files."""
    seen = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py")
                                if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                yield candidate


def display_path(path: pathlib.Path, root: Optional[pathlib.Path] = None) -> str:
    """Repo-relative posix path for findings and baselines."""
    root = root or pathlib.Path.cwd()
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = pathlib.Path(os.path.relpath(path, root))
    return rel.as_posix()


def default_jobs(file_count: int) -> int:
    """Worker count for a run: 1 (serial) unless the file count clears
    :data:`PARALLEL_THRESHOLD` and the machine has cores to spare."""
    if file_count < PARALLEL_THRESHOLD:
        return 1
    return max(1, _usable_cpus())


def _usable_cpus() -> int:
    try:
        from repro.fleet.workers import usable_cpus
        return usable_cpus()
    except Exception:
        return os.cpu_count() or 1


def _lint_file_task(args: Tuple[str, str, Tuple[str, ...]]) -> List[Finding]:
    """Worker task: per-file rules for one file (project pass is the
    driver's job).  Module-level so it pickles under spawn too."""
    file_path, rel, selected = args
    source = pathlib.Path(file_path).read_text(encoding="utf-8")
    tree, error = _parse(source, rel)
    if tree is None:
        assert error is not None
        return [error]
    return _file_findings(tree, source, rel, classify(rel), list(selected))


def lint_paths(paths: Sequence[str],
               rules: Optional[Iterable[str]] = None,
               root: Optional[pathlib.Path] = None,
               jobs: Optional[int] = None,
               ) -> Tuple[List[Finding], int]:
    """Lint every python file under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by
    ``(path, line, col, rule)`` so output and baselines are stable.
    ``jobs`` sets the per-file worker count (``None`` = auto: serial
    below :data:`PARALLEL_THRESHOLD` files, ``usable_cpus()`` above;
    ``1`` forces serial).  Serial and parallel runs produce identical
    findings — the whole-program rules always run once, in the driver.
    """
    selected = sorted(rules) if rules is not None else sorted(RULES)
    files = [(file_path, display_path(file_path, root))
             for file_path in iter_python_files(paths)]
    if jobs is None:
        jobs = default_jobs(len(files))

    findings: List[Finding] = []
    entries: List[Tuple[str, str, ast.Module]] = []

    if jobs > 1 and len(files) > 1:
        findings.extend(_parallel_file_pass(files, selected, jobs))
        # Driver-side parse for the project model (measured cheaper
        # than round-tripping pickled ASTs from the workers).
        for file_path, rel in files:
            source = file_path.read_text(encoding="utf-8")
            tree, _ = _parse(source, rel)
            if tree is not None:
                entries.append((rel, source, tree))
    else:
        for file_path, rel in files:
            source = file_path.read_text(encoding="utf-8")
            tree, error = _parse(source, rel)
            if tree is None:
                assert error is not None
                findings.append(error)
                continue
            entries.append((rel, source, tree))
            findings.extend(_file_findings(tree, source, rel,
                                           classify(rel), selected))

    findings.extend(_project_findings(entries, selected))
    findings.sort()
    return findings, len(files)


def _parallel_file_pass(files: Sequence[Tuple[pathlib.Path, str]],
                        selected: Sequence[str],
                        jobs: int) -> List[Finding]:
    import concurrent.futures
    import multiprocessing

    tasks = [(str(file_path), rel, tuple(selected))
             for file_path, rel in files]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context("spawn")
    out: List[Finding] = []
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(tasks)),
                mp_context=context) as pool:
            chunk = max(1, len(tasks) // (4 * jobs))
            for result in pool.map(_lint_file_task, tasks,
                                   chunksize=chunk):
                out.extend(result)
    except (OSError, RuntimeError):
        # Pool could not start (restricted environments): fall back to
        # in-process execution — identical findings by construction.
        out = []
        for task in tasks:
            out.extend(_lint_file_task(task))
    return out
