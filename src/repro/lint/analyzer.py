"""File walking and per-module rule driving.

:func:`lint_source` is the core (and the unit-test entry point): parse
one module, classify its domain, run every applicable rule, drop
suppressed findings.  :func:`lint_paths` maps that over files and
directories, producing a sorted, stable finding list.
"""

from __future__ import annotations

import ast
import os
import pathlib
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.domains import Domain, classify
from repro.lint.findings import Finding
from repro.lint.rules import RULES, RuleContext
from repro.lint.suppress import Suppressions

#: Rule code reserved for files the parser rejects.  Parse errors are
#: never suppressible — a file that does not parse cannot be reasoned
#: about at all.
PARSE_ERROR_RULE = "SIM000"


def lint_source(source: str, path: str,
                rules: Optional[Iterable[str]] = None,
                domain: Optional[Domain] = None) -> List[Finding]:
    """Lint one module given as a string.

    ``path`` determines the domain (unless ``domain`` overrides it) and
    is recorded verbatim in findings.  ``rules`` restricts checking to
    the given codes.
    """
    norm = pathlib.PurePath(path).as_posix()
    try:
        tree = ast.parse(source, filename=norm)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = (getattr(exc, "offset", 1) or 1)
        return [Finding(path=norm, line=line, col=col, rule=PARSE_ERROR_RULE,
                        message=f"could not parse: {exc.msg if hasattr(exc, 'msg') else exc}")]
    if domain is None:
        domain = classify(norm)
    suppressions = Suppressions.from_source(source)
    ctx = RuleContext(norm, domain, tree, source)
    selected = sorted(rules) if rules is not None else sorted(RULES)
    findings: List[Finding] = []
    for code in selected:
        rule = RULES[code]
        if not rule.applies(domain):
            continue
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort()
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[pathlib.Path]:
    """Expand files and directories into a sorted stream of .py files."""
    seen = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py")
                                if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                yield candidate


def display_path(path: pathlib.Path, root: Optional[pathlib.Path] = None) -> str:
    """Repo-relative posix path for findings and baselines."""
    root = root or pathlib.Path.cwd()
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = pathlib.Path(os.path.relpath(path, root))
    return rel.as_posix()


def lint_paths(paths: Sequence[str],
               rules: Optional[Iterable[str]] = None,
               root: Optional[pathlib.Path] = None,
               ) -> Tuple[List[Finding], int]:
    """Lint every python file under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by
    ``(path, line, col, rule)`` so output and baselines are stable.
    """
    findings: List[Finding] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        source = file_path.read_text(encoding="utf-8")
        rel = display_path(file_path, root)
        findings.extend(lint_source(source, rel, rules=rules))
    findings.sort()
    return findings, checked
