"""Suppression comments: ``# simlint: disable=SIM001``.

Two scopes:

- **line**: a trailing (or standalone) comment on the physical line a
  finding points at suppresses the named rules on that line only::

      t = time.monotonic()  # simlint: disable=SIM002 -- harness timer

  ``# simlint: disable`` with no rule list suppresses every rule on
  that line.

- **file**: a standalone comment anywhere in the file (conventionally
  near the top) suppresses the named rules for the whole file::

      # simlint: disable-file=SIM004

  File-level suppression *requires* an explicit rule list; there is no
  blanket ``disable-file`` — a file that needs every rule off should be
  moved to the harness allowlist instead (see :mod:`repro.lint.domains`).

Anything after the rule list is ignored, so a ``-- reason`` note is
encouraged.  Suppressions are parsed with :mod:`tokenize`, so comments
inside strings do not count.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

#: Sentinel meaning "all rules" for a line-level blanket disable.
ALL_RULES = "*"

_LINE_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+?))?\s*(?:--.*)?$"
)
_FILE_RE = re.compile(
    r"#\s*simlint:\s*disable-file=(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:--.*)?$"
)


def _parse_rules(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return frozenset({ALL_RULES})
    rules = frozenset(r.strip().upper() for r in raw.split(",") if r.strip())
    return rules or frozenset({ALL_RULES})


class Suppressions:
    """Parsed suppression state for one source file."""

    def __init__(self) -> None:
        self.file_rules: FrozenSet[str] = frozenset()
        self.line_rules: Dict[int, FrozenSet[str]] = {}
        #: Every rule code any suppression comment named (for
        #: unknown-rule warnings; blanket disables contribute nothing).
        self.mentioned: FrozenSet[str] = frozenset()

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        sup = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                file_m = _FILE_RE.search(tok.string)
                if file_m:
                    rules = _parse_rules(file_m.group("rules"))
                    sup.file_rules |= rules
                    sup.mentioned |= rules - {ALL_RULES}
                    continue
                line_m = _LINE_RE.search(tok.string)
                if line_m:
                    line = tok.start[0]
                    existing = sup.line_rules.get(line, frozenset())
                    rules = _parse_rules(line_m.group("rules"))
                    sup.line_rules[line] = existing | rules
                    sup.mentioned |= rules - {ALL_RULES}
        except tokenize.TokenError:
            # The AST parse will report the real problem; suppressions
            # found before the tokenizer gave up still apply.
            pass
        return sup

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule in rules
