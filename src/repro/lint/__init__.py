"""simlint: AST-based determinism & simulation-safety analysis.

The reproduction's headline guarantees — replayable traces,
byte-identical serial/pool fleet aggregates, content-addressed shard
caching — all reduce to one invariant: sim-domain code is a pure
function of ``(scenario, seed)``.  This package enforces that invariant
mechanically over the package's own source, run in CI as a hard gate:
six per-file rules (SIM001–SIM006) plus four whole-program rules
(SIM007–SIM010) driven by an interprocedural project model
(:mod:`repro.lint.project`: one-parse symbol table, import resolution,
call graph) and a dataflow layer (:mod:`repro.lint.flow`: seeded-RNG
taint, ``child_rng`` tag-pattern folding).  See ``docs/LINT.md`` for
the rule catalogue and ``python -m repro lint --explain SIM007`` for
rationale.

Public surface: :func:`lint_source` / :func:`lint_paths` for
programmatic use (tests), :class:`Finding`, the :data:`RULES`
registry, the baseline helpers, the :class:`Project` model, and the
SARIF / diff-mode helpers.
"""

from repro.lint.analyzer import PARSE_ERROR_RULE, lint_paths, lint_source
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.domains import Domain, classify
from repro.lint.findings import Finding
from repro.lint.gitdiff import DiffError, changed_lines, parse_unified_diff
from repro.lint.project import Project
from repro.lint.rules import (
    PROJECT_RULE_CODES,
    RULES,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.lint.sarif import render_github, to_sarif
from repro.lint.suppress import Suppressions

__all__ = [
    "DiffError",
    "Domain",
    "Finding",
    "PARSE_ERROR_RULE",
    "PROJECT_RULE_CODES",
    "Project",
    "ProjectRule",
    "RULES",
    "Rule",
    "Suppressions",
    "all_rules",
    "apply_baseline",
    "changed_lines",
    "classify",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_unified_diff",
    "render_github",
    "to_sarif",
    "write_baseline",
]
