"""simlint: AST-based determinism & simulation-safety analysis.

The reproduction's headline guarantees — replayable traces,
byte-identical serial/pool fleet aggregates, content-addressed shard
caching — all reduce to one invariant: sim-domain code is a pure
function of ``(scenario, seed)``.  This package enforces that invariant
mechanically with six rules (SIM001–SIM006) over the package's own
source, run in CI as a hard gate.  See ``docs/LINT.md`` for the rule
catalogue and ``python -m repro lint --explain SIM001`` for rationale.

Public surface: :func:`lint_source` / :func:`lint_paths` for
programmatic use (tests), :class:`Finding`, the :data:`RULES`
registry, and the baseline helpers.
"""

from repro.lint.analyzer import PARSE_ERROR_RULE, lint_paths, lint_source
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.domains import Domain, classify
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule, all_rules
from repro.lint.suppress import Suppressions

__all__ = [
    "Domain",
    "Finding",
    "PARSE_ERROR_RULE",
    "RULES",
    "Rule",
    "Suppressions",
    "all_rules",
    "apply_baseline",
    "classify",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
