"""Whole-program project model: symbol table, imports, call graph.

The per-file rules (SIM001–SIM006) judge one module at a time.  The
whole-program rules (SIM007–SIM010) need to see *across* modules: which
function receives a seeded RNG from which caller, which two call sites
can build the same ``child_rng`` tag, which module-level dict is
mutated by code a fleet worker can reach, which classes end up inside a
:class:`~repro.simnet.engine.Checkpoint` deepcopy.  This module builds
the shared substrate for those questions from **one parse per file**:

- a :class:`ModuleInfo` per source file (tree, domain, import map,
  suppressions);
- a project-wide symbol table (:attr:`Project.functions`,
  :attr:`Project.classes`, :attr:`Project.module_globals`) keyed by
  dotted qualnames (``repro.scale.population.CellProcess._step``);
- a call graph over module functions *and* methods, resolved through
  class definitions: ``self.method()`` through the enclosing class and
  its project bases, ``obj.method()`` through a light local type
  inference (constructor assignments, parameter annotations, and
  one-level interprocedural return types), and — as a last resort — a
  name-based CHA fallback (``x.make_world()`` resolves to every project
  class defining ``make_world``);
- reachability (:meth:`Project.reachable_from`) for "can a fleet
  worker execute this?" style queries.

Everything here is conservative in the direction each rule needs:
unresolvable calls simply contribute no edges (rules document what that
means for their precision), and resolution never guesses outside the
project.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.domains import Domain, classify
from repro.lint.suppress import Suppressions

#: Bare names treated as "constructs a mutable container" when deciding
#: whether a module-level/class-level assignment is shared mutable state.
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/scale/population.py`` → ``repro.scale.population``;
    ``__init__.py`` names the package itself.  Paths outside a ``src``
    layout (fixtures, tmp dirs) are dotted verbatim so single-file
    projects still get stable qualnames.
    """
    pure = pathlib.PurePosixPath(str(path).replace("\\", "/"))
    parts = [p for p in pure.parts if p not in (".", "/")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if not parts:
        return pure.stem
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or pure.stem


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in MUTABLE_CONSTRUCTORS
    return False


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` → ``("a", "b", "c")``; None for non-name bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


@dataclass
class GlobalVar:
    """A module-level binding (the SIM009 'shared storage' candidates)."""

    name: str
    qual: str
    module: str
    lineno: int
    mutable: bool


@dataclass
class ClassAttr:
    """A class-body binding (``class C: cache = {}``)."""

    name: str
    lineno: int
    mutable: bool


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qual: str                        # repro.pkg.mod.[Class.]name
    name: str
    module: str                      # owning module's dotted name
    node: ast.AST                    # FunctionDef | AsyncFunctionDef
    class_qual: Optional[str] = None
    params: Tuple[str, ...] = ()
    has_yield: bool = False
    decorators: Tuple[str, ...] = ()
    #: classes (quals) this function can return instances of (memoized
    #: lazily by Project._return_classes).
    _returns: Optional[Set[str]] = None


@dataclass
class ClassInfo:
    """One class definition plus what resolution needs from it."""

    qual: str
    name: str
    module: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()      # raw dotted names, resolved lazily
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    class_attrs: Dict[str, ClassAttr] = field(default_factory=dict)
    #: attr name -> class quals assigned to it (``self.x = D(...)`` in
    #: any method, including inside list/tuple literals), for field-type
    #: closure and attribute-chain call resolution.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: attrs assigned on instances anywhere in the class (``self.x = ...``);
    #: a class_attr *not* in here is genuinely class-level shared state.
    instance_attrs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    module: str
    tree: ast.Module
    source: str
    domain: Domain
    imports: Dict[str, str] = field(default_factory=dict)
    suppressions: Suppressions = field(default_factory=Suppressions)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


class CallSite:
    """One call, with enough context for interprocedural questions."""

    __slots__ = ("caller", "node", "callees", "weak")

    def __init__(self, caller: str, node: ast.Call,
                 callees: Tuple[str, ...], weak: bool) -> None:
        self.caller = caller          # FunctionInfo.qual (or module qual)
        self.node = node
        self.callees = callees        # resolved FunctionInfo quals
        #: True when resolution fell back to name-based CHA.
        self.weak = weak


class Project:
    """The whole-program view the SIM007–SIM010 rules analyze."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}          # by dotted name
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qual -> CallSite list (module bodies use the module's
        #: dotted name + ".<module>" as the caller qual).
        self.calls: Dict[str, List[CallSite]] = {}
        #: callee qual -> set of caller quals (derived, both edge kinds).
        self._callers: Dict[str, Set[str]] = {}
        #: methods by bare name, for the CHA fallback.
        self._methods_by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, entries: Sequence[Tuple[str, str, ast.Module]]) -> "Project":
        """Build from ``(path, source, tree)`` triples (one parse/file)."""
        project = cls()
        for path, source, tree in entries:
            project._add_module(path, source, tree)
        project._index_classes()
        project._build_call_graph()
        return project

    def _add_module(self, path: str, source: str, tree: ast.Module) -> None:
        from repro.lint.rules import build_import_map

        mod = ModuleInfo(
            path=path, module=module_name_for(path), tree=tree,
            source=source, domain=classify(path),
            imports=build_import_map(tree),
            suppressions=Suppressions.from_source(source),
        )
        self.modules[mod.module] = mod
        self.modules_by_path[path] = mod
        for stmt in tree.body:
            self._index_top_level(mod, stmt)

    def _index_top_level(self, mod: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = self._function_info(mod, stmt, class_qual=None)
            mod.functions[stmt.name] = info
            self.functions[info.qual] = info
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(mod, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            if value is None:
                return
            for target in targets:
                if isinstance(target, ast.Name):
                    gvar = GlobalVar(
                        name=target.id,
                        qual=f"{mod.module}.{target.id}",
                        module=mod.module,
                        lineno=stmt.lineno,
                        mutable=_is_mutable_value(value),
                    )
                    mod.globals[target.id] = gvar
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING / ImportError guards: index their bodies too.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._index_top_level(mod, sub)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        cls_qual = f"{mod.module}.{node.name}"
        bases = []
        for base in node.bases:
            chain = attribute_chain(base)
            if chain:
                bases.append(".".join(chain))
        cinfo = ClassInfo(qual=cls_qual, name=node.name, module=mod.module,
                          node=node, bases=tuple(bases))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(mod, stmt, class_qual=cls_qual)
                cinfo.methods[stmt.name] = info
                self.functions[info.qual] = info
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                if stmt.value is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        cinfo.class_attrs[target.id] = ClassAttr(
                            name=target.id, lineno=stmt.lineno,
                            mutable=_is_mutable_value(stmt.value))
        mod.classes[node.name] = cinfo
        self.classes[cls_qual] = cinfo

    def _function_info(self, mod: ModuleInfo, node, class_qual) -> FunctionInfo:
        prefix = class_qual or mod.module
        params: List[str] = []
        args = node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            params.append(a.arg)
        has_yield = any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                        for sub in _walk_no_nested(node))
        decorators = []
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            chain = attribute_chain(target)
            if chain:
                decorators.append(chain[-1])
        return FunctionInfo(
            qual=f"{prefix}.{node.name}", name=node.name, module=mod.module,
            node=node, class_qual=class_qual, params=tuple(params),
            has_yield=has_yield, decorators=tuple(decorators))

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, dotted: str, hops: int = 2) -> Optional[str]:
        """Resolve a dotted name to a project function/class/global qual.

        Follows one re-export hop: ``repro.fleet.run_campaign`` resolves
        through ``repro/fleet/__init__.py``'s own import of
        ``repro.fleet.workers.run_campaign``.
        """
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in mod.functions:
                return mod.functions[head].qual
            if head in mod.classes:
                qual = mod.classes[head].qual
                if len(rest) >= 2:
                    return self._resolve_method(qual, rest[1])
                return qual
            if head in mod.globals:
                return mod.globals[head].qual
            if hops > 0 and head in mod.imports:
                target = mod.imports[head] + "".join("." + r for r in rest[1:])
                return self.resolve_dotted(target, hops - 1)
            return None
        return None

    def resolve_local(self, mod: ModuleInfo, chain: Tuple[str, ...],
                      hops: int = 2) -> Optional[str]:
        """Resolve a name chain as seen from inside ``mod``."""
        head = chain[0]
        if head in mod.imports:
            return self.resolve_dotted(
                mod.imports[head] + "".join("." + c for c in chain[1:]), hops)
        if head in mod.functions and len(chain) == 1:
            return mod.functions[head].qual
        if head in mod.classes:
            qual = mod.classes[head].qual
            if len(chain) >= 2:
                return self._resolve_method(qual, chain[1])
            return qual
        if head in mod.globals and len(chain) == 1:
            return mod.globals[head].qual
        return None

    def _resolve_method(self, class_qual: str, name: str,
                        ) -> Optional[str]:
        """Look ``name`` up on a class and its project bases (MRO-ish)."""
        seen: Set[str] = set()
        queue = [class_qual]
        while queue:
            qual = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cinfo = self.classes.get(qual)
            if cinfo is None:
                continue
            if name in cinfo.methods:
                return cinfo.methods[name].qual
            mod = self.modules.get(cinfo.module)
            for base in cinfo.bases:
                resolved = (self.resolve_local(mod, tuple(base.split(".")))
                            if mod else None)
                if resolved:
                    queue.append(resolved)
        return None

    def class_of(self, qual: str) -> Optional[ClassInfo]:
        return self.classes.get(qual)

    def function_of(self, qual: str) -> Optional[FunctionInfo]:
        return self.functions.get(qual)

    def owning_class(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        return self.classes.get(fn.class_qual) if fn.class_qual else None

    # ------------------------------------------------------------------
    # Attribute types (phase B): ``self.x = D(...)`` field inference
    # ------------------------------------------------------------------
    def _index_classes(self) -> None:
        for cinfo in self.classes.values():
            mod = self.modules[cinfo.module]
            for method in cinfo.methods.values():
                for node in _walk_no_nested(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            cinfo.instance_attrs.add(target.attr)
                            for qual in self._constructed_classes(
                                    mod, node.value):
                                cinfo.attr_types.setdefault(
                                    target.attr, set()).add(qual)
            # Annotated fields: ``x: SomeClass`` in the class body.
            for stmt in cinfo.node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    chain = attribute_chain(stmt.annotation)
                    if chain:
                        resolved = self.resolve_local(mod, chain)
                        if resolved in self.classes:
                            cinfo.attr_types.setdefault(
                                stmt.target.id, set()).add(resolved)
        for cinfo in self.classes.values():
            for name in cinfo.methods:
                self._methods_by_name.setdefault(name, []).append(
                    cinfo.methods[name].qual)

    def _constructed_classes(self, mod: ModuleInfo,
                             value: ast.AST) -> Set[str]:
        """Class quals an expression can evaluate to (shallow)."""
        out: Set[str] = set()
        if isinstance(value, ast.Call):
            chain = attribute_chain(value.func)
            if chain:
                resolved = self.resolve_local(mod, chain)
                if resolved in self.classes:
                    out.add(resolved)
                elif resolved in self.functions:
                    out |= self._return_classes(resolved)
        elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for elt in value.elts:
                out |= self._constructed_classes(mod, elt)
        return out

    def _return_classes(self, qual: str,
                        _stack: Optional[Set[str]] = None) -> Set[str]:
        """Classes a project function can return instances of."""
        fn = self.functions.get(qual)
        if fn is None:
            return set()
        if fn._returns is not None:
            return fn._returns
        stack = _stack or set()
        if qual in stack:
            return set()
        stack.add(qual)
        mod = self.modules[fn.module]
        env = self._local_env(fn, stack)
        out: Set[str] = set()
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                out |= self._constructed_classes(mod, node.value)
                if isinstance(node.value, ast.Name):
                    out |= env.get(node.value.id, set())
        fn._returns = out
        return out

    def _local_env(self, fn: FunctionInfo,
                   _stack: Optional[Set[str]] = None) -> Dict[str, Set[str]]:
        """var name -> class quals, from constructors and annotations."""
        mod = self.modules[fn.module]
        env: Dict[str, Set[str]] = {}
        args = fn.node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            if a.annotation is not None:
                chain = attribute_chain(a.annotation)
                if chain:
                    resolved = self.resolve_local(mod, chain)
                    if resolved in self.classes:
                        env.setdefault(a.arg, set()).add(resolved)
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    quals = self._constructed_classes(mod, node.value)
                    if not quals and isinstance(node.value, ast.Call):
                        callee = self._resolve_call(fn, env, node.value)
                        for c in callee or ():
                            quals |= self._return_classes(c, _stack)
                    if quals:
                        env.setdefault(target.id, set()).update(quals)
        return env

    # ------------------------------------------------------------------
    # Call graph (phase C)
    # ------------------------------------------------------------------
    def _build_call_graph(self) -> None:
        for mod in self.modules.values():
            # Module body as a pseudo-caller.
            body_caller = f"{mod.module}.<module>"
            for node in _module_body_nodes(mod.tree):
                if isinstance(node, ast.Call):
                    self._add_call(body_caller, mod, None, {}, node)
        for fn in list(self.functions.values()):
            env = self._local_env(fn)
            for node in _walk_no_nested(fn.node):
                if isinstance(node, ast.Call):
                    self._add_call(fn.qual, self.modules[fn.module],
                                   fn, env, node)

    def _resolve_call(self, fn: Optional[FunctionInfo],
                      env: Dict[str, Set[str]],
                      call: ast.Call) -> Optional[List[str]]:
        """Strongly resolve a call's project callees (no CHA); None when
        nothing resolved."""
        mod = self.modules[fn.module] if fn else None
        chain = attribute_chain(call.func)
        if chain is None or mod is None:
            return None
        out: List[str] = []
        # self.method() and self.attr.method() chains.
        if chain[0] == "self" and fn is not None and fn.class_qual:
            resolved = self._resolve_self_chain(fn, chain[1:])
            if resolved:
                out.extend(resolved)
        elif len(chain) == 1:
            resolved = self.resolve_local(mod, chain)
            if resolved in self.functions:
                out.append(resolved)
            elif resolved in self.classes:
                init = self._resolve_method(resolved, "__init__")
                if init:
                    out.append(init)
        else:
            # obj.method() through the local env, imports, or classes.
            base_classes = env.get(chain[0], set())
            for cq in base_classes:
                resolved = self._walk_attr_types(cq, chain[1:])
                out.extend(resolved)
            if not out:
                resolved = self.resolve_local(mod, chain)
                if resolved in self.functions:
                    out.append(resolved)
                elif resolved in self.classes:
                    init = self._resolve_method(resolved, "__init__")
                    if init:
                        out.append(init)
        return out or None

    def _resolve_self_chain(self, fn: FunctionInfo,
                            rest: Tuple[str, ...]) -> List[str]:
        cinfo = self.classes.get(fn.class_qual or "")
        if cinfo is None or not rest:
            return []
        if len(rest) == 1:
            method = self._resolve_method(cinfo.qual, rest[0])
            return [method] if method else []
        quals = cinfo.attr_types.get(rest[0], set())
        out: List[str] = []
        for cq in quals:
            out.extend(self._walk_attr_types(cq, rest[1:]))
        return out

    def _walk_attr_types(self, class_qual: str,
                         rest: Tuple[str, ...]) -> List[str]:
        """Walk ``attr.attr.method`` through attr_types to a method."""
        if not rest:
            return []
        if len(rest) == 1:
            method = self._resolve_method(class_qual, rest[0])
            return [method] if method else []
        cinfo = self.classes.get(class_qual)
        if cinfo is None:
            return []
        out: List[str] = []
        for cq in cinfo.attr_types.get(rest[0], set()):
            out.extend(self._walk_attr_types(cq, rest[1:]))
        return out

    def _add_call(self, caller: str, mod: ModuleInfo,
                  fn: Optional[FunctionInfo],
                  env: Dict[str, Set[str]], call: ast.Call) -> None:
        callees = self._resolve_call(fn, env, call) if fn is not None else None
        weak = False
        if callees is None and fn is None:
            # Module-body call: resolve through the module namespace only.
            chain = attribute_chain(call.func)
            if chain is not None:
                resolved = self.resolve_local(mod, chain)
                if resolved in self.functions:
                    callees = [resolved]
                elif resolved in self.classes:
                    init = self._resolve_method(resolved, "__init__")
                    callees = [init] if init else None
        if callees is None:
            # CHA fallback: a method call we cannot type resolves to
            # every project class defining that method name.
            chain = attribute_chain(call.func)
            if chain is not None and len(chain) > 1:
                candidates = self._methods_by_name.get(chain[-1], [])
                if candidates:
                    callees = list(candidates)
                    weak = True
        if not callees:
            return
        site = CallSite(caller, call, tuple(sorted(set(callees))), weak)
        self.calls.setdefault(caller, []).append(site)
        for callee in site.callees:
            self._callers.setdefault(callee, set()).add(caller)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def call_sites_of(self, callee: str,
                      include_weak: bool = False) -> List[CallSite]:
        """Every call site that can dispatch to ``callee``."""
        out: List[CallSite] = []
        for caller in sorted(self._callers.get(callee, ())):
            for site in self.calls.get(caller, []):
                if callee in site.callees and (include_weak or not site.weak):
                    out.append(site)
        return out

    def reachable_from(self, roots: Iterable[str],
                       include_weak: bool = True) -> Set[str]:
        """Function quals reachable from ``roots`` over the call graph."""
        seen: Set[str] = set()
        queue = [r for r in roots]
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for site in self.calls.get(qual, []):
                if site.weak and not include_weak:
                    continue
                for callee in site.callees:
                    if callee not in seen:
                        queue.append(callee)
        return seen

    def global_for_name(self, mod: ModuleInfo,
                        name: str) -> Optional[GlobalVar]:
        """Resolve a bare name to a module-level global, through imports."""
        if name in mod.globals:
            return mod.globals[name]
        origin = mod.imports.get(name)
        if origin is None:
            return None
        resolved = self.resolve_dotted(origin)
        if resolved is None:
            return None
        for other in self.modules.values():
            for gvar in other.globals.values():
                if gvar.qual == resolved:
                    return gvar
        return None


def _walk_no_nested(fn_node: ast.AST):
    """Walk a function body without descending into nested defs/classes."""
    body = getattr(fn_node, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _module_body_nodes(tree: ast.Module):
    """Walk module-level statements without entering defs/classes."""
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


__all__ = [
    "CallSite",
    "ClassAttr",
    "ClassInfo",
    "FunctionInfo",
    "GlobalVar",
    "ModuleInfo",
    "MUTABLE_CONSTRUCTORS",
    "Project",
    "attribute_chain",
    "module_name_for",
]
