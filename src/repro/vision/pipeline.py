"""The assembled AR vision pipeline with compute-cost accounting.

:class:`ArPipeline` chains detection → description → matching →
robust homography against a reference (database) image, and reports a
:class:`StageCosts` breakdown in *megacycles* for every frame.  The
cost model is deterministic and proportional to the actual work done
(pixels filtered, descriptors built, pairs compared, RANSAC iterations
run), so the offloading models in :mod:`repro.mar` can convert it to
wall-clock time on any device of Table I via its clock rate — exactly
the p(a) term of the paper's execution-time equations.

Cycle constants are calibrated to the common wisdom that full
feature-based recognition of a 320x240 frame costs on the order of
hundreds of milliseconds on a mobile-class core (the reason offloading
exists at all) and a few milliseconds of tracking (the reason Glimpse
works).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional

import numpy as np

from repro.vision.features import Keypoint, describe, descriptor_size_bytes, detect_corners
from repro.vision.homography import ransac_homography
from repro.vision.matching import Match, match_descriptors, match_points
from repro.vision.tracking import Tracker

# Cycle-cost constants (cycles per unit of work).
CYCLES_PER_PIXEL_DETECT = 450.0       # gradients + 3 gaussian filters + NMS
CYCLES_PER_KEYPOINT_DESCRIBE = 25_000.0
CYCLES_PER_MATCH_PAIR = 48.0          # 32-byte XOR + popcount + bookkeeping
CYCLES_PER_RANSAC_ITER = 9_000.0      # 4-point DLT + error for all pairs
CYCLES_PER_TRACKED_POINT = 60_000.0   # SSD search window
CYCLES_PER_PIXEL_ENCODE = 35.0        # software video encode (uplink prep)
CYCLES_PER_PIXEL_RENDER = 18.0        # overlay composition


@dataclass
class StageCosts:
    """Per-stage compute cost of one frame, in megacycles."""

    detect: float = 0.0
    describe: float = 0.0
    match: float = 0.0
    ransac: float = 0.0
    track: float = 0.0
    encode: float = 0.0
    render: float = 0.0

    @property
    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def __add__(self, other: "StageCosts") -> "StageCosts":
        return StageCosts(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def split(self, local_stages: List[str]) -> Dict[str, float]:
        """Partition into local vs remote megacycles by stage name."""
        local = sum(getattr(self, name) for name in local_stages)
        return {"local": local, "remote": self.total - local}

    def as_dict(self) -> Dict[str, float]:
        """Stage-name → megacycles, in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def scaled_to(self, total_megacycles: float) -> "StageCosts":
        """Rescale proportionally so the stages sum to a given total.

        Lets an estimated stage *shape* (from :func:`estimate_stage_costs`)
        be fitted to a known aggregate budget — e.g. annotating a server
        compute span whose total p(a) comes from the application model.
        """
        current = self.total
        if current <= 0.0:
            return StageCosts()
        factor = total_megacycles / current
        return StageCosts(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )


@dataclass
class FrameResult:
    """Outcome of fully processing one frame."""

    homography: Optional[np.ndarray]
    keypoints: List[Keypoint]
    matches: List[Match]
    n_inliers: int
    costs: StageCosts
    feature_bytes: int

    @property
    def recognized(self) -> bool:
        return self.homography is not None

    def pose(self, intrinsics: Optional[np.ndarray] = None):
        """Camera pose relative to the reference plane, or None.

        The renderer's actual input: decomposes the frame→reference
        homography with the given (or default) camera intrinsics.
        """
        if self.homography is None:
            return None
        from repro.vision.pose import decompose_homography, default_intrinsics

        k = intrinsics if intrinsics is not None else default_intrinsics()
        # The recognition homography maps frame→reference; the pose of
        # the camera relative to the reference plane uses the inverse.
        h = np.linalg.inv(self.homography)
        return decompose_homography(h / h[2, 2], k)


class ArPipeline:
    """Feature-based recognition against one reference image.

    Parameters
    ----------
    reference:
        The database image virtual content is anchored to.
    max_corners:
        Detection budget per frame (more corners → better robustness,
        linearly more descriptor/matching cost — the knob MAR browsers
        turn when degrading gracefully).
    """

    def __init__(self, reference: np.ndarray, max_corners: int = 300, seed: int = 0) -> None:
        self.reference = np.asarray(reference, dtype=np.float64)
        self.max_corners = max_corners
        self.seed = seed
        self.ref_keypoints = detect_corners(self.reference, max_corners=max_corners)
        self.ref_descriptors = describe(self.reference, self.ref_keypoints)
        self.ref_xy = np.array([[kp.x, kp.y] for kp in self.ref_keypoints])
        self.tracker = Tracker()
        self.frames_processed = 0

    # ------------------------------------------------------------------
    def process_frame(self, frame: np.ndarray, max_corners: Optional[int] = None) -> FrameResult:
        """Full recognition of one frame (the expensive, offloadable path)."""
        frame = np.asarray(frame, dtype=np.float64)
        budget = max_corners if max_corners is not None else self.max_corners
        costs = StageCosts()
        n_pixels = frame.size

        keypoints = detect_corners(frame, max_corners=budget)
        costs.detect = n_pixels * CYCLES_PER_PIXEL_DETECT / 1e6

        descriptors = describe(frame, keypoints)
        costs.describe = len(keypoints) * CYCLES_PER_KEYPOINT_DESCRIBE / 1e6

        matches = match_descriptors(descriptors, self.ref_descriptors)
        costs.match = len(keypoints) * len(self.ref_keypoints) * CYCLES_PER_MATCH_PAIR / 1e6

        homography = None
        n_inliers = 0
        if len(matches) >= 4:
            pairs = match_points(
                matches,
                np.array([[kp.x, kp.y] for kp in keypoints]),
                self.ref_xy,
            )
            result = ransac_homography(pairs[:, :2], pairs[:, 2:], seed=self.seed)
            costs.ransac = result.iterations * CYCLES_PER_RANSAC_ITER / 1e6
            if result.success:
                homography = result.homography
                n_inliers = result.n_inliers
                self.tracker.set_keyframe(frame, keypoints)

        costs.render = n_pixels * CYCLES_PER_PIXEL_RENDER / 1e6
        self.frames_processed += 1
        return FrameResult(
            homography=homography,
            keypoints=keypoints,
            matches=matches,
            n_inliers=n_inliers,
            costs=costs,
            feature_bytes=descriptor_size_bytes(len(keypoints)),
        )

    # ------------------------------------------------------------------
    def track_frame(self, frame: np.ndarray) -> tuple:
        """Cheap Glimpse-style tracking path.

        Returns ``(TrackResult, StageCosts)``; callers combine
        :meth:`Tracker.should_trigger` with their offloading policy.
        """
        if not self.tracker.has_keyframe:
            raise RuntimeError("tracking requires a processed keyframe first")
        result = self.tracker.track(frame)
        n_points = len(result.points)
        costs = StageCosts(
            track=n_points * CYCLES_PER_TRACKED_POINT / 1e6,
            render=frame.size * CYCLES_PER_PIXEL_RENDER / 1e6,
        )
        return result, costs

    # ------------------------------------------------------------------
    @staticmethod
    def encode_cost(frame_pixels: int) -> StageCosts:
        """Cost of software-encoding a frame for network upload."""
        return StageCosts(encode=frame_pixels * CYCLES_PER_PIXEL_ENCODE / 1e6)


def estimate_stage_costs(n_pixels: int, n_keypoints: int = 300,
                         n_ref_keypoints: int = 300,
                         ransac_iters: int = 400) -> StageCosts:
    """Analytic per-stage cost of full recognition, without running it.

    Applies the module's cycle constants to nominal workload sizes —
    the same arithmetic :meth:`ArPipeline.process_frame` performs on
    measured quantities, usable where no pixels exist (observability
    annotations, capacity planning).  Combine with
    :meth:`StageCosts.scaled_to` to fit the stage *shape* to a known
    total p(a).
    """
    return StageCosts(
        detect=n_pixels * CYCLES_PER_PIXEL_DETECT / 1e6,
        describe=n_keypoints * CYCLES_PER_KEYPOINT_DESCRIBE / 1e6,
        match=n_keypoints * n_ref_keypoints * CYCLES_PER_MATCH_PAIR / 1e6,
        ransac=ransac_iters * CYCLES_PER_RANSAC_ITER / 1e6,
        render=n_pixels * CYCLES_PER_PIXEL_RENDER / 1e6,
    )
