"""Descriptor matching: Hamming distance with ratio and mutual tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)


@dataclass(frozen=True)
class Match:
    """A putative correspondence: query index, train index, distance (bits)."""

    query: int
    train: int
    distance: int


def hamming_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between packed-bit descriptor arrays.

    ``a`` is ``(Na, B)`` uint8, ``b`` is ``(Nb, B)`` uint8; the result is
    ``(Na, Nb)`` uint16.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("descriptor arrays must be 2-D with equal byte width")
    xor = np.bitwise_xor(a[:, None, :], b[None, :, :])
    return _POPCOUNT[xor].sum(axis=2)


def match_descriptors(
    query: np.ndarray,
    train: np.ndarray,
    max_distance: int = 64,
    ratio: float = 0.8,
    mutual: bool = True,
) -> List[Match]:
    """Lowe-style matching.

    A query descriptor matches its nearest train descriptor when the
    distance is below ``max_distance``, beats the second-nearest by the
    ``ratio`` test, and (if ``mutual``) the train descriptor's nearest
    query is the same pair.
    """
    if len(query) == 0 or len(train) == 0:
        return []
    dist = hamming_matrix(query, train)
    nearest = np.argmin(dist, axis=1)
    best = dist[np.arange(len(query)), nearest]

    matches: List[Match] = []
    reverse_nearest = np.argmin(dist, axis=0) if mutual else None
    for qi in range(len(query)):
        ti = int(nearest[qi])
        d = int(best[qi])
        if d > max_distance:
            continue
        if len(train) > 1:
            row = dist[qi].copy()
            row[ti] = np.iinfo(row.dtype).max
            second = int(row.min())
            if second > 0 and d > ratio * second:
                continue
        if mutual and int(reverse_nearest[ti]) != qi:
            continue
        matches.append(Match(qi, ti, d))
    return matches


def match_points(
    matches: List[Match],
    query_xy: np.ndarray,
    train_xy: np.ndarray,
) -> np.ndarray:
    """Stack matched coordinates into an ``(N, 4)`` array [qx qy tx ty]."""
    if not matches:
        return np.zeros((0, 4))
    q = query_xy[[m.query for m in matches]]
    t = train_xy[[m.train for m in matches]]
    return np.hstack([q, t])
