"""Harris corner detection and binary patch descriptors.

These are the "feature extraction" stage CloudRidAR runs locally on the
device (Section III-B): corners via the Harris structure-tensor
response with non-maximum suppression, and 256-bit BRIEF-like binary
descriptors sampled from a smoothed patch so matching is a cheap
Hamming distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage

#: Descriptor length in bits.
DESCRIPTOR_BITS = 256

#: Half-width of the descriptor sampling patch.
PATCH_RADIUS = 15


@dataclass(frozen=True)
class Keypoint:
    """A detected corner: position (x, y) and Harris response."""

    x: float
    y: float
    response: float

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=np.float64)


def harris_response(img: np.ndarray, sigma: float = 1.5, k: float = 0.05) -> np.ndarray:
    """Harris corner response map ``det(M) - k * trace(M)^2``."""
    img = np.asarray(img, dtype=np.float64)
    gy, gx = np.gradient(img)
    ixx = ndimage.gaussian_filter(gx * gx, sigma)
    iyy = ndimage.gaussian_filter(gy * gy, sigma)
    ixy = ndimage.gaussian_filter(gx * gy, sigma)
    det = ixx * iyy - ixy * ixy
    trace = ixx + iyy
    return det - k * trace * trace


def detect_corners(
    img: np.ndarray,
    max_corners: int = 300,
    quality: float = 0.01,
    min_distance: int = 7,
    border: int = PATCH_RADIUS + 1,
) -> List[Keypoint]:
    """Top Harris corners with non-maximum suppression.

    ``quality`` is the response threshold relative to the global
    maximum; ``min_distance`` enforces spatial spread via a maximum
    filter; corners within ``border`` pixels of the edge are discarded
    so descriptors always have a full patch.
    """
    response = harris_response(img)
    threshold = quality * response.max() if response.max() > 0 else np.inf
    local_max = ndimage.maximum_filter(response, size=2 * min_distance + 1)
    mask = (response == local_max) & (response > threshold)
    mask[:border, :] = False
    mask[-border:, :] = False
    mask[:, :border] = False
    mask[:, -border:] = False
    ys, xs = np.nonzero(mask)
    if len(xs) == 0:
        return []
    responses = response[ys, xs]
    order = np.argsort(-responses)[:max_corners]
    return [Keypoint(float(xs[i]), float(ys[i]), float(responses[i])) for i in order]


def _sampling_pattern(seed: int = 42) -> Tuple[np.ndarray, np.ndarray]:
    """The fixed BRIEF point-pair pattern (shared by all descriptors)."""
    rng = np.random.default_rng(seed)
    pts_a = rng.integers(-PATCH_RADIUS, PATCH_RADIUS + 1, size=(DESCRIPTOR_BITS, 2))
    pts_b = rng.integers(-PATCH_RADIUS, PATCH_RADIUS + 1, size=(DESCRIPTOR_BITS, 2))
    return pts_a, pts_b


_PATTERN = _sampling_pattern()


def describe(img: np.ndarray, keypoints: List[Keypoint], smooth_sigma: float = 2.0) -> np.ndarray:
    """256-bit binary descriptors for each keypoint.

    Returns a ``(len(keypoints), 32)`` uint8 array (bits packed).  The
    image is pre-smoothed so individual pixel comparisons are stable
    under noise, as in BRIEF.
    """
    if not keypoints:
        return np.zeros((0, DESCRIPTOR_BITS // 8), dtype=np.uint8)
    smooth = ndimage.gaussian_filter(np.asarray(img, dtype=np.float64), smooth_sigma)
    height, width = smooth.shape
    pts_a, pts_b = _PATTERN
    descriptors = np.zeros((len(keypoints), DESCRIPTOR_BITS), dtype=bool)
    for i, kp in enumerate(keypoints):
        x, y = int(round(kp.x)), int(round(kp.y))
        ax = np.clip(x + pts_a[:, 0], 0, width - 1)
        ay = np.clip(y + pts_a[:, 1], 0, height - 1)
        bx = np.clip(x + pts_b[:, 0], 0, width - 1)
        by = np.clip(y + pts_b[:, 1], 0, height - 1)
        descriptors[i] = smooth[ay, ax] < smooth[by, bx]
    return np.packbits(descriptors, axis=1)


def descriptor_size_bytes(n_keypoints: int) -> int:
    """Wire size of a feature payload: packed bits + 2 float32 coords."""
    return n_keypoints * (DESCRIPTOR_BITS // 8 + 8)
