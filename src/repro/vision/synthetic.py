"""Synthetic scenes and ground-truth homographies.

The reproduction has no camera, so frames are synthesized: a textured
background (smoothed noise) with high-contrast rectangles and discs
provides corner-rich content, and successive "camera" frames are
produced by warping the scene with small random homographies whose
ground truth is known — letting tests assert estimator accuracy
exactly.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import ndimage


def make_scene(
    height: int = 240,
    width: int = 320,
    n_shapes: int = 24,
    seed: int = 0,
    texture_sigma: float = 3.0,
) -> np.ndarray:
    """A corner-rich grayscale scene in [0, 1], shape ``(height, width)``."""
    rng = np.random.default_rng(seed)
    img = ndimage.gaussian_filter(rng.random((height, width)), texture_sigma)
    # Stretch the smoothed noise back to a decent contrast range.
    img = (img - img.min()) / max(float(img.max() - img.min()), 1e-9)
    for _ in range(n_shapes):
        shade = rng.uniform(0.0, 1.0)
        if rng.random() < 0.5:
            h = int(rng.integers(8, height // 4))
            w = int(rng.integers(8, width // 4))
            y = int(rng.integers(0, height - h))
            x = int(rng.integers(0, width - w))
            img[y : y + h, x : x + w] = shade
        else:
            r = int(rng.integers(5, min(height, width) // 8))
            cy = int(rng.integers(r, height - r))
            cx = int(rng.integers(r, width - r))
            yy, xx = np.ogrid[:height, :width]
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
            img[mask] = shade
    return img.astype(np.float64)


def random_homography(
    seed: int = 0,
    max_rotation: float = 0.08,
    max_translation: float = 12.0,
    max_scale: float = 0.06,
    max_perspective: float = 1.5e-4,
    center: Tuple[float, float] = (160.0, 120.0),
) -> np.ndarray:
    """A small random homography (3x3, normalized ``H[2,2] == 1``).

    Composed as translation ∘ rotation ∘ scale ∘ perspective about
    ``center`` so warps look like modest camera motion between frames.
    """
    rng = np.random.default_rng(seed)
    angle = rng.uniform(-max_rotation, max_rotation)
    scale = 1.0 + rng.uniform(-max_scale, max_scale)
    tx, ty = rng.uniform(-max_translation, max_translation, size=2)
    px, py = rng.uniform(-max_perspective, max_perspective, size=2)
    cx, cy = center

    cos_a, sin_a = math.cos(angle), math.sin(angle)
    similarity = np.array(
        [
            [scale * cos_a, -scale * sin_a, tx],
            [scale * sin_a, scale * cos_a, ty],
            [0.0, 0.0, 1.0],
        ]
    )
    perspective = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [px, py, 1.0]])
    to_center = np.array([[1.0, 0.0, -cx], [0.0, 1.0, -cy], [0.0, 0.0, 1.0]])
    from_center = np.array([[1.0, 0.0, cx], [0.0, 1.0, cy], [0.0, 0.0, 1.0]])
    h = from_center @ similarity @ perspective @ to_center
    return h / h[2, 2]


def apply_homography(h: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Map ``(N, 2)`` xy points through a 3x3 homography."""
    points = np.asarray(points, dtype=np.float64)
    ones = np.ones((points.shape[0], 1))
    homo = np.hstack([points, ones]) @ h.T
    return homo[:, :2] / homo[:, 2:3]


def warp_image(img: np.ndarray, h: np.ndarray, fill: float = 0.0) -> np.ndarray:
    """Warp ``img`` so output(x') = img(H^-1 x') with bilinear sampling."""
    height, width = img.shape
    h_inv = np.linalg.inv(h)
    ys, xs = np.mgrid[0:height, 0:width]
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
    src = apply_homography(h_inv, coords)
    sx = src[:, 0].reshape(height, width)
    sy = src[:, 1].reshape(height, width)

    x0 = np.floor(sx).astype(int)
    y0 = np.floor(sy).astype(int)
    fx = sx - x0
    fy = sy - y0
    valid = (x0 >= 0) & (x0 < width - 1) & (y0 >= 0) & (y0 < height - 1)
    x0c = np.clip(x0, 0, width - 2)
    y0c = np.clip(y0, 0, height - 2)

    top = img[y0c, x0c] * (1 - fx) + img[y0c, x0c + 1] * fx
    bottom = img[y0c + 1, x0c] * (1 - fx) + img[y0c + 1, x0c + 1] * fx
    out = top * (1 - fy) + bottom * fy
    out[~valid] = fill
    return out
