"""Camera pose from a plane homography.

The point of computing a homography in MAR (Section III-B) is to anchor
virtual content: the homography between a known planar reference and
the camera view decomposes into the camera's rotation and translation
relative to that plane (Malis & Vargas / Zhang's method for the
calibrated case), which is what the renderer actually consumes.

Given intrinsics ``K`` and a homography ``H`` mapping reference-plane
coordinates to image coordinates::

    H ∝ K [r1 r2 t]

so ``K^-1 H`` yields the first two rotation columns and the
translation, up to scale.  :func:`decompose_homography` recovers them,
orthonormalizing the rotation via SVD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def default_intrinsics(width: int = 320, height: int = 240,
                       fov_deg: float = 65.0) -> np.ndarray:
    """A plausible pinhole camera matrix for a given image size/FOV."""
    focal = (width / 2) / np.tan(np.radians(fov_deg) / 2)
    return np.array(
        [[focal, 0.0, width / 2.0],
         [0.0, focal, height / 2.0],
         [0.0, 0.0, 1.0]]
    )


@dataclass(frozen=True)
class Pose:
    """A rigid camera pose relative to the reference plane."""

    rotation: np.ndarray      # 3x3, orthonormal, det +1
    translation: np.ndarray   # 3-vector, unit-normalized plane distance

    @property
    def yaw_pitch_roll(self) -> Tuple[float, float, float]:
        """ZYX Euler angles in radians."""
        r = self.rotation
        pitch = -np.arcsin(np.clip(r[2, 0], -1.0, 1.0))
        roll = np.arctan2(r[2, 1], r[2, 2])
        yaw = np.arctan2(r[1, 0], r[0, 0])
        return float(yaw), float(pitch), float(roll)

    def angle_to(self, other: "Pose") -> float:
        """Geodesic rotation distance in radians."""
        relative = self.rotation.T @ other.rotation
        cos_angle = (np.trace(relative) - 1.0) / 2.0
        return float(np.arccos(np.clip(cos_angle, -1.0, 1.0)))


def homography_from_pose(k: np.ndarray, rotation: np.ndarray,
                         translation: np.ndarray) -> np.ndarray:
    """Forward model: H ∝ K [r1 r2 t], normalized to H[2,2] = 1."""
    h = k @ np.column_stack([rotation[:, 0], rotation[:, 1], translation])
    if abs(h[2, 2]) < 1e-12:
        raise ValueError("degenerate pose (plane through camera center)")
    return h / h[2, 2]


def decompose_homography(h: np.ndarray, k: np.ndarray) -> Pose:
    """Recover the camera pose from a plane homography.

    Returns the pose with the camera in front of the plane
    (``t_z > 0``); raises ``ValueError`` on degenerate input.
    """
    h = np.asarray(h, dtype=np.float64)
    a = np.linalg.inv(k) @ h
    # Scale: the rotation columns are unit length.
    norm = (np.linalg.norm(a[:, 0]) + np.linalg.norm(a[:, 1])) / 2.0
    if norm < 1e-12:
        raise ValueError("degenerate homography")
    a = a / norm
    r1, r2, t = a[:, 0], a[:, 1], a[:, 2]
    r3 = np.cross(r1, r2)
    rough = np.column_stack([r1, r2, r3])
    # Orthonormalize: nearest rotation in Frobenius norm.
    u, _, vt = np.linalg.svd(rough)
    rotation = u @ vt
    if np.linalg.det(rotation) < 0:
        u[:, -1] = -u[:, -1]
        rotation = u @ vt
    if t[2] < 0:
        # The other sign solution: camera behind the plane — flip.
        rotation = np.column_stack([-rotation[:, 0], -rotation[:, 1], rotation[:, 2]])
        t = -t
    return Pose(rotation=rotation, translation=t)


def rotation_about(axis: str, angle: float) -> np.ndarray:
    """Convenience rotation matrices for tests and examples."""
    c, s = np.cos(angle), np.sin(angle)
    if axis == "x":
        return np.array([[1, 0, 0], [0, c, -s], [0, s, c]], dtype=float)
    if axis == "y":
        return np.array([[c, 0, s], [0, 1, 0], [-s, 0, c]], dtype=float)
    if axis == "z":
        return np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]], dtype=float)
    raise ValueError(f"unknown axis {axis!r}")
