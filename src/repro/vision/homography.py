"""Homography estimation: normalized DLT inside RANSAC.

This is the alignment step of Section III-B ("matching the feature
points of the environment against the ones with a perfectly aligned
image of the objects ... namely homography").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def _normalize(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Hartley normalization: zero centroid, mean distance sqrt(2)."""
    centroid = points.mean(axis=0)
    shifted = points - centroid
    mean_dist = np.sqrt((shifted**2).sum(axis=1)).mean()
    scale = np.sqrt(2.0) / max(mean_dist, 1e-12)
    transform = np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )
    normalized = shifted * scale
    return normalized, transform


def estimate_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Direct linear transform from ≥4 correspondences.

    ``src`` and ``dst`` are ``(N, 2)`` arrays; returns the 3x3 H with
    ``H[2, 2] == 1`` mapping src → dst (least squares for N > 4).
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.shape[0] < 4 or src.shape != dst.shape:
        raise ValueError("need at least 4 matched point pairs")
    src_n, t_src = _normalize(src)
    dst_n, t_dst = _normalize(dst)

    n = src_n.shape[0]
    a = np.zeros((2 * n, 9))
    for i in range(n):
        x, y = src_n[i]
        u, v = dst_n[i]
        a[2 * i] = [-x, -y, -1, 0, 0, 0, u * x, u * y, u]
        a[2 * i + 1] = [0, 0, 0, -x, -y, -1, v * x, v * y, v]
    _, _, vt = np.linalg.svd(a)
    h_n = vt[-1].reshape(3, 3)
    h = np.linalg.inv(t_dst) @ h_n @ t_src
    if abs(h[2, 2]) < 1e-12:
        raise np.linalg.LinAlgError("degenerate homography")
    return h / h[2, 2]


def reprojection_error(h: np.ndarray, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Per-point Euclidean error of mapping src through H versus dst."""
    src = np.asarray(src, dtype=np.float64)
    ones = np.ones((src.shape[0], 1))
    mapped = np.hstack([src, ones]) @ h.T
    w = mapped[:, 2:3]
    w = np.where(np.abs(w) < 1e-12, 1e-12, w)
    mapped = mapped[:, :2] / w
    return np.sqrt(((mapped - dst) ** 2).sum(axis=1))


@dataclass
class RansacResult:
    """Output of robust estimation."""

    homography: Optional[np.ndarray]
    inliers: np.ndarray  # boolean mask over the input correspondences
    iterations: int

    @property
    def n_inliers(self) -> int:
        return int(self.inliers.sum())

    @property
    def success(self) -> bool:
        return self.homography is not None


def ransac_homography(
    src: np.ndarray,
    dst: np.ndarray,
    threshold: float = 3.0,
    max_iterations: int = 500,
    confidence: float = 0.995,
    min_inliers: int = 8,
    seed: int = 0,
) -> RansacResult:
    """RANSAC around :func:`estimate_homography`.

    Early-terminates when the adaptive iteration bound (from the
    current inlier ratio at the requested ``confidence``) is reached.
    The final model is re-fit on all inliers.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    n = src.shape[0]
    if n < 4:
        return RansacResult(None, np.zeros(n, dtype=bool), 0)
    rng = np.random.default_rng(seed)
    best_mask = np.zeros(n, dtype=bool)
    best_count = 0
    needed = max_iterations
    iteration = 0
    while iteration < min(needed, max_iterations):
        iteration += 1
        sample = rng.choice(n, size=4, replace=False)
        try:
            h = estimate_homography(src[sample], dst[sample])
        except np.linalg.LinAlgError:
            continue
        errors = reprojection_error(h, src, dst)
        mask = errors < threshold
        count = int(mask.sum())
        if count > best_count:
            best_count = count
            best_mask = mask
            ratio = count / n
            if 0 < ratio < 1:
                denom = np.log(max(1e-12, 1 - ratio**4))
                needed = int(np.ceil(np.log(1 - confidence) / denom)) if denom < 0 else 1
            else:
                needed = iteration  # all inliers — stop
    if best_count < max(min_inliers, 4):
        return RansacResult(None, np.zeros(n, dtype=bool), iteration)
    try:
        refined = estimate_homography(src[best_mask], dst[best_mask])
    except np.linalg.LinAlgError:
        return RansacResult(None, best_mask, iteration)
    return RansacResult(refined, best_mask, iteration)
