"""Pure-numpy computer-vision substrate for the MAR workload.

Vision-based MAR applications (Section III-B) match feature points of
the camera view against a database of reference images and compute a
homography to align virtual objects with the physical world.  This
package implements that pipeline from scratch:

- :mod:`~repro.vision.synthetic` — textured synthetic scenes and
  ground-truth homography warps (stand-in for camera frames);
- :mod:`~repro.vision.features` — Harris corner detection and binary
  (BRIEF-like) patch descriptors;
- :mod:`~repro.vision.matching` — Hamming-distance descriptor matching
  with ratio and mutual-consistency tests;
- :mod:`~repro.vision.homography` — normalized DLT inside RANSAC;
- :mod:`~repro.vision.tracking` — Glimpse-style lightweight inter-frame
  tracking that decides when a keyframe must be (re-)processed;
- :mod:`~repro.vision.pipeline` — the assembled AR pipeline with
  per-stage compute-cost accounting (megacycles) consumed by the
  offloading models of :mod:`repro.mar`.
"""

from repro.vision.synthetic import make_scene, random_homography, warp_image
from repro.vision.features import detect_corners, describe, Keypoint
from repro.vision.matching import match_descriptors, Match
from repro.vision.homography import estimate_homography, ransac_homography, reprojection_error
from repro.vision.tracking import Tracker, TrackResult
from repro.vision.pipeline import ArPipeline, FrameResult, StageCosts
from repro.vision.pose import Pose, decompose_homography, default_intrinsics, homography_from_pose
from repro.vision.overlay import PanningCamera, acceptable_latency, misalignment_profile, misalignment_px

__all__ = [
    "make_scene",
    "random_homography",
    "warp_image",
    "detect_corners",
    "describe",
    "Keypoint",
    "match_descriptors",
    "Match",
    "estimate_homography",
    "ransac_homography",
    "reprojection_error",
    "Tracker",
    "TrackResult",
    "ArPipeline",
    "FrameResult",
    "StageCosts",
    "Pose",
    "decompose_homography",
    "default_intrinsics",
    "homography_from_pose",
    "PanningCamera",
    "acceptable_latency",
    "misalignment_profile",
    "misalignment_px",
]
