"""Virtual-overlay alignment under latency (the paper's core motivation).

Section III-B: "due to several complications such as the alignment of
the virtual layer on the physical world, a seamless experience is
characterized by notably lower latencies" — Abrash's ≤20 ms with a
"holy grail" near 7 ms.  This module turns that claim into numbers:

A virtual object is anchored to the reference plane.  The renderer
draws it using the *last computed* homography — which, with end-to-end
(motion-to-photon) latency L, describes the camera as it was L seconds
ago.  While the camera moves, the drawn overlay and the true anchor
position diverge by a measurable pixel offset:

    misalignment(t, L) = || project(H(t), anchor) − project(H(t−L), anchor) ||

:class:`PanningCamera` provides a smooth, realistic head-turn motion
(sinusoidal yaw plus translation sway); :func:`misalignment_px`
evaluates the registration error; :func:`misalignment_profile` sweeps
latency and returns the error curve the E10 benchmark reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.vision.pose import default_intrinsics, homography_from_pose, rotation_about
from repro.vision.synthetic import apply_homography

#: Default virtual object: a 20 cm square "card" centred on the
#: reference plane (plane coordinates are metres; the camera sits
#: ~2 m away, so the card spans ~25 px on a 320 px frame).
DEFAULT_ANCHOR = np.array(
    [[-0.1, -0.1], [0.1, -0.1], [0.1, 0.1], [-0.1, 0.1]]
)


@dataclass
class PanningCamera:
    """A smoothly panning/swaying camera over the reference plane.

    ``yaw_amplitude`` (radians) and ``period`` give a sinusoidal head
    turn; peak angular velocity is ``2π·A/T`` — the default is ~34°/s,
    a calm look-around.  ``sway`` adds a small translation oscillation.
    """

    yaw_amplitude: float = 0.25
    period: float = 2.5
    sway: float = 0.08
    distance: float = 2.0
    intrinsics: np.ndarray = field(default_factory=default_intrinsics)

    def pose_at(self, t: float) -> Tuple[np.ndarray, np.ndarray]:
        """Pose of the (static) plane in the moving camera's frame.

        A camera pan by ``yaw`` rotates *everything* in the camera
        frame — both the plane's orientation and its position — which
        is what sweeps the projected anchor across the image (unlike
        rotating the plane about its own axis, which barely moves its
        centre).
        """
        phase = 2 * math.pi * t / self.period
        yaw = self.yaw_amplitude * math.sin(phase)
        camera_rotation = rotation_about("y", yaw)
        plane_position = np.array(
            [self.sway * math.sin(phase * 0.7), 0.02 * math.cos(phase), self.distance]
        )
        rotation = camera_rotation.T            # plane orientation in camera frame
        translation = camera_rotation.T @ plane_position
        return rotation, translation

    def homography_at(self, t: float) -> np.ndarray:
        rotation, translation = self.pose_at(t)
        return homography_from_pose(self.intrinsics, rotation, translation)

    @property
    def peak_angular_velocity_deg(self) -> float:
        return math.degrees(2 * math.pi * self.yaw_amplitude / self.period)


def misalignment_px(
    h_current: np.ndarray,
    h_stale: np.ndarray,
    anchor: np.ndarray = DEFAULT_ANCHOR,
) -> float:
    """Mean corner displacement (pixels) between the overlay's true and
    rendered positions."""
    true_px = apply_homography(h_current, anchor)
    drawn_px = apply_homography(h_stale, anchor)
    return float(np.linalg.norm(true_px - drawn_px, axis=1).mean())


def misalignment_profile(
    camera: PanningCamera,
    latencies: Sequence[float],
    duration: float = 5.0,
    dt: float = 1.0 / 60.0,
    anchor: np.ndarray = DEFAULT_ANCHOR,
) -> List[Tuple[float, float, float]]:
    """(latency, mean_error_px, p95_error_px) over a motion episode.

    Samples the camera at display rate; for each latency L the renderer
    uses the homography from t − L.
    """
    out: List[Tuple[float, float, float]] = []
    times = np.arange(max(latencies), duration, dt)
    for latency in latencies:
        errors = [
            misalignment_px(
                camera.homography_at(t), camera.homography_at(t - latency), anchor
            )
            for t in times
        ]
        errors.sort()
        mean_error = sum(errors) / len(errors)
        p95 = errors[min(len(errors) - 1, int(0.95 * (len(errors) - 1)))]
        out.append((latency, mean_error, p95))
    return out


def acceptable_latency(
    camera: PanningCamera,
    max_error_px: float = 5.0,
    resolution: float = 0.001,
    ceiling: float = 0.5,
) -> float:
    """Largest motion-to-photon latency keeping mean error ≤ threshold.

    Binary-searches the misalignment profile; 5 px on a 320-wide frame
    is roughly the registration error users start noticing.
    """
    lo, hi = 0.0, ceiling
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        (_, mean_error, _), = misalignment_profile(camera, [mid], duration=3.0)
        if mean_error <= max_error_px:
            lo = mid
        else:
            hi = mid
    return lo
