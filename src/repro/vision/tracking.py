"""Glimpse-style lightweight inter-frame tracking.

Glimpse (Chen et al., SenSys '15 — cited as [25]) keeps the full
recognition pipeline on the server but runs cheap *tracking* on the
device, offloading only "trigger" frames.  :class:`Tracker` follows
that split: it propagates keypoints from the last processed keyframe by
local patch search (SSD over a small window) and reports the fraction
of lost points, which the application uses to decide when a new
keyframe must be shipped to the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.vision.features import Keypoint


@dataclass
class TrackResult:
    """Outcome of tracking one frame against the current keyframe."""

    points: np.ndarray          # (N, 2) tracked positions (NaN when lost)
    lost_fraction: float
    mean_residual: float

    @property
    def ok(self) -> bool:
        return not np.isnan(self.points).all()


class Tracker:
    """Patch-SSD point tracker.

    Parameters
    ----------
    patch_radius:
        Half-size of the template patch taken around each keypoint.
    search_radius:
        Half-size of the search window in the new frame.
    max_residual:
        Mean-SSD threshold above which a point is declared lost.
    """

    def __init__(
        self,
        patch_radius: int = 6,
        search_radius: int = 10,
        max_residual: float = 0.02,
    ) -> None:
        self.patch_radius = patch_radius
        self.search_radius = search_radius
        self.max_residual = max_residual
        self._keyframe: Optional[np.ndarray] = None
        self._points: Optional[np.ndarray] = None

    def set_keyframe(self, img: np.ndarray, keypoints: List[Keypoint]) -> None:
        """Install a new keyframe (typically after server recognition)."""
        self._keyframe = np.asarray(img, dtype=np.float64)
        self._points = np.array([[kp.x, kp.y] for kp in keypoints], dtype=np.float64)

    @property
    def has_keyframe(self) -> bool:
        return self._keyframe is not None and self._points is not None and len(self._points) > 0

    def track(self, frame: np.ndarray) -> TrackResult:
        """Locate each keyframe point in ``frame`` by local SSD search."""
        if not self.has_keyframe:
            raise RuntimeError("no keyframe installed")
        frame = np.asarray(frame, dtype=np.float64)
        height, width = frame.shape
        pr, sr = self.patch_radius, self.search_radius
        out = np.full_like(self._points, np.nan)
        residuals: List[float] = []
        for i, (x0, y0) in enumerate(self._points):
            xi, yi = int(round(x0)), int(round(y0))
            if not (pr <= xi < width - pr and pr <= yi < height - pr):
                continue
            template = self._keyframe[yi - pr : yi + pr + 1, xi - pr : xi + pr + 1]
            best = (np.inf, xi, yi)
            y_lo, y_hi = max(pr, yi - sr), min(height - pr - 1, yi + sr)
            x_lo, x_hi = max(pr, xi - sr), min(width - pr - 1, xi + sr)
            for yy in range(y_lo, y_hi + 1, 2):
                for xx in range(x_lo, x_hi + 1, 2):
                    patch = frame[yy - pr : yy + pr + 1, xx - pr : xx + pr + 1]
                    ssd = float(((patch - template) ** 2).mean())
                    if ssd < best[0]:
                        best = (ssd, xx, yy)
            if best[0] <= self.max_residual:
                out[i] = (best[1], best[2])
                residuals.append(best[0])
        lost = float(np.isnan(out[:, 0]).mean()) if len(out) else 1.0
        mean_res = float(np.mean(residuals)) if residuals else float("inf")
        return TrackResult(points=out, lost_fraction=lost, mean_residual=mean_res)

    def should_trigger(self, result: TrackResult, max_lost: float = 0.4) -> bool:
        """Glimpse trigger rule: re-offload when too many points are lost."""
        return result.lost_fraction > max_lost
