"""repro — reproduction of "Future Networking Challenges: The Case of
Mobile Augmented Reality" (Braud et al., ICDCS 2017).

The package provides:

- :mod:`repro.simnet` — a discrete-event network simulator (links,
  queues, routing, tracing) used as the substrate for every experiment.
- :mod:`repro.transport` — UDP, TCP (NewReno), DCCP-like and RTP-like
  transports running over the simulator.
- :mod:`repro.core` — **MARTP**, a concrete realization of the paper's
  proposed AR-oriented transport protocol: classful traffic, graceful
  degradation, selective reliability/FEC, multipath, and distributed
  offloading sessions.
- :mod:`repro.wireless` — HSPA+/LTE/WiFi/5G access-network models, the
  802.11 performance anomaly, D2D links, coverage/handover and mobility.
- :mod:`repro.vision` — a pure-numpy computer-vision pipeline (corners,
  descriptors, matching, RANSAC homography, tracking) providing the MAR
  workload.
- :mod:`repro.mar` — device models, application models, execution-cost
  equations and offloading strategies from Section III of the paper.
- :mod:`repro.edge` — edge-datacenter placement (Section VI-F).
- :mod:`repro.analysis` — statistics and report rendering helpers.
"""

__version__ = "1.0.0"

from repro.simnet.engine import Simulator

__all__ = ["Simulator", "__version__"]
