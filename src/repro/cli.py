"""Command-line interface: quick demos, fleet campaigns, report browsing.

Usage (also via ``python -m repro``):

    python -m repro list                 # demos, campaigns, saved reports
    python -m repro demo quickstart      # run a built-in demo
    python -m repro demo anomaly
    python -m repro demo table2
    python -m repro fleet                # run the default (256-shard) campaign
    python -m repro fleet smoke -w 2     # a named campaign on 2 workers
    python -m repro scale                # hybrid-fidelity city campaign
    python -m repro scale --budget metro # the 10^6-user tier
    python -m repro show T2              # print a saved benchmark report
    python -m repro show cell256         # fleet reports are found too
    python -m repro lint src             # simlint determinism checks
    python -m repro selftest             # double-run trace-fingerprint diff
    python -m repro obs                  # traced run -> Perfetto/qlog artifacts

The demos are self-contained, seconds-long simulations over the public
API; the full experiment suite lives in ``benchmarks/`` (run with
``pytest benchmarks/ --benchmark-only``) and saves its rendered reports
under ``benchmarks/results/`` where ``show`` finds them.  ``fleet``
runs a sharded multi-process campaign (see ``docs/FLEET.md``) and
saves its report under ``benchmarks/results/fleet/``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

from repro.analysis.report import ascii_table, fleet_report, format_rate, format_time

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
FLEET_RESULTS_DIR = RESULTS_DIR / "fleet"


# ----------------------------------------------------------------------
# Demos
# ----------------------------------------------------------------------
def demo_quickstart() -> str:
    """A 10 s MARTP session over cloud WiFi."""
    from repro.core import OffloadSession, ScenarioBuilder, mos_score

    scenario = ScenarioBuilder(seed=7).single_path(rtt=0.036, up_bps=12e6)
    session = OffloadSession(scenario)
    report = session.run(10.0)
    rows = [
        [r.name, f"{r.delivery_ratio:.1%}", f"{r.in_time_ratio:.1%}",
         format_time(r.mean_latency)]
        for r in report.per_class.values()
    ]
    table = ascii_table(["stream", "delivered", "in time", "mean latency"], rows,
                        title="MARTP over cloud-WiFi (36 ms RTT, 12 Mb/s up)")
    return (f"{table}\n\nvideo quality {report.mean_video_quality:.0%}, "
            f"MOS {mos_score(report):.2f}/5")


def demo_anomaly() -> str:
    """The 802.11 performance anomaly in five simulated seconds."""
    from repro.simnet.engine import Simulator
    from repro.wireless.wifi import WifiCell, WifiStation, anomaly_throughput

    sim = Simulator(seed=1)
    cell = WifiCell(sim)
    a = cell.add_station(WifiStation("A", 54e6))
    b = cell.add_station(WifiStation("B", 54e6))
    sim.run(until=5.0)
    cell.set_rate("B", 18e6)
    sim.run(until=10.0)
    rows = [
        ["both at 54 Mb/s", format_rate(a.throughput_bps(0, 5)),
         format_rate(b.throughput_bps(0, 5)),
         format_rate(anomaly_throughput([54e6, 54e6])[0])],
        ["B at 18 Mb/s", format_rate(a.throughput_bps(5, 10)),
         format_rate(b.throughput_bps(5, 10)),
         format_rate(anomaly_throughput([54e6, 18e6])[0])],
    ]
    return ascii_table(["phase", "station A", "station B", "analytic"], rows,
                       title="802.11 performance anomaly (Figure 2)")


def demo_table2() -> str:
    """The four CloudRidAR offloading scenarios of Table II."""
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.devices import CLOUD, SMARTPHONE
    from repro.mar.offload import FeatureOffload, OffloadExecutor
    from repro.simnet.engine import Simulator
    from repro.simnet.network import Network

    rows = []
    for name, rtt in (("local server / WiFi", 0.008),
                      ("cloud server / WiFi", 0.036),
                      ("university / WiFi", 0.072),
                      ("cloud server / LTE", 0.120)):
        sim = Simulator(seed=11)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", 80e6, 40e6, delay=rtt / 2)
        net.build_routes()
        executor = OffloadExecutor(net, "client", "server",
                                   APP_ARCHETYPES["orientation"],
                                   FeatureOffload(), SMARTPHONE,
                                   server_device=CLOUD)
        result = executor.run(n_frames=100)
        rows.append([name, format_time(rtt), format_time(result.mean_link_rtt),
                     format_time(result.mean_offloaded_latency)])
    return ascii_table(
        ["scenario", "paper RTT", "measured RTT", "frame latency"], rows,
        title="Table II — CloudRidAR offloading scenarios")


DEMOS: Dict[str, Callable[[], str]] = {
    "quickstart": demo_quickstart,
    "anomaly": demo_anomaly,
    "table2": demo_table2,
}


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_list(_args: argparse.Namespace) -> int:
    from repro.fleet import demo_campaigns

    print("demos (python -m repro demo <name>):")
    for name, fn in DEMOS.items():
        print(f"  {name:<12} {fn.__doc__.strip().splitlines()[0]}")
    print("\nfleet campaigns (python -m repro fleet <name>):")
    for name, c in demo_campaigns().items():
        print(f"  {name:<12} {c.n_shards} shards of {c.scenario}")
    print("\nsaved experiment reports (python -m repro show <id>):")
    saved = sorted(RESULTS_DIR.glob("*.txt")) if RESULTS_DIR.is_dir() else []
    saved += sorted(FLEET_RESULTS_DIR.glob("*.txt")) \
        if FLEET_RESULTS_DIR.is_dir() else []
    if saved:
        for path in saved:
            kind = "fleet" if path.parent.name == "fleet" else "bench"
            print(f"  {path.stem:<12} [{kind}]")
    else:
        print("  (none — run `pytest benchmarks/ --benchmark-only` "
              "or `python -m repro fleet` first)")
    print("\ntooling:")
    print("  lint         simlint determinism & simulation-safety checks "
          "(docs/LINT.md)")
    print("  selftest     determinism smoke: double-run one shard, diff "
          "trace fingerprints")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    fn = DEMOS.get(args.name)
    if fn is None:
        print(f"unknown demo {args.name!r}; try: {', '.join(DEMOS)}",
              file=sys.stderr)
        return 2
    print(fn())
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    matches = sorted(RESULTS_DIR.glob(f"{args.experiment}*.txt")) \
        if RESULTS_DIR.is_dir() else []
    matches += sorted(FLEET_RESULTS_DIR.glob(f"{args.experiment}*.txt")) \
        if FLEET_RESULTS_DIR.is_dir() else []
    if not matches:
        print(f"no saved report matching {args.experiment!r} under "
              f"{RESULTS_DIR}", file=sys.stderr)
        return 2
    for path in matches:
        print(f"== {path.stem} ==")
        print(path.read_text().rstrip())
        print()
    return 0


def _fleet_progress(done: int, total: int, elapsed: float) -> None:
    """One-line progress/ETA on stderr (stdout stays report-only)."""
    eta = (elapsed / done) * (total - done) if done else float("inf")
    eta_s = f"{eta:5.1f}s" if eta != float("inf") else "   ??"
    rate = done / elapsed if elapsed > 0 else 0.0
    sys.stderr.write(f"\r[fleet] {done}/{total} shards "
                     f"({done / total:4.0%})  {rate:6.1f} shards/s  "
                     f"elapsed {elapsed:5.1f}s  eta {eta_s}")
    sys.stderr.flush()
    if done == total:
        sys.stderr.write("\n")


def _emit_telemetry(result, out_dir: pathlib.Path, quiet: bool) -> int:
    """Write + validate the telemetry artifacts for a finished campaign.

    Emits ``campaign_telemetry.json`` (canonical document) and
    ``campaign_timeline.trace.json`` (Chrome trace-event worker
    timelines, validated with the obs exporter's validator), prints the
    telemetry table, and returns non-zero if the timeline fails schema
    validation.
    """
    import json as _json

    from repro.analysis.report import fleet_telemetry_table
    from repro.fleet import worker_timeline_json, write_campaign_telemetry
    from repro.obs import validate_chrome_trace

    doc = result.telemetry
    out_dir.mkdir(parents=True, exist_ok=True)
    tel_path = write_campaign_telemetry(
        out_dir / "campaign_telemetry.json", doc)
    timeline = worker_timeline_json(doc)
    timeline_path = out_dir / "campaign_timeline.trace.json"
    timeline_path.write_text(timeline + "\n")
    problems = validate_chrome_trace(_json.loads(timeline))
    print()
    print(fleet_telemetry_table(doc))
    if not quiet:
        print(f"[fleet] telemetry: {tel_path} · timeline: {timeline_path}",
              file=sys.stderr)
    if problems:
        for p in problems:
            print(f"[fleet] TELEMETRY TIMELINE INVALID: {p}", file=sys.stderr)
        return 1
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (FaultInjection, ResultCache, TelemetryCollector,
                             demo_campaigns, run_campaign, run_shard,
                             usable_cpus)

    campaigns = demo_campaigns()
    campaign = campaigns.get(args.campaign)
    if campaign is None:
        print(f"unknown campaign {args.campaign!r}; "
              f"try: {', '.join(campaigns)}", file=sys.stderr)
        return 2
    if args.seeds:
        campaign.seeds = args.seeds

    if args.replay:
        agg = run_shard(campaign, args.replay)
        print(agg.to_json())
        return 0

    # Default to CPUs the process may *run on* (affinity/cgroup mask),
    # not the machine's core count — oversubscribing a restricted box
    # makes parallel runs slower than serial.
    workers = args.workers if args.workers is not None \
        else max(1, usable_cpus())
    cache = None if args.no_cache else ResultCache()
    faults = None
    if args.inject_fault:
        # Persistently kill the second shard's worker: exercises the
        # broken-pool retry path end-to-end and must end in quarantine.
        # The *second* shard so that, under multi-shard batches, the
        # dying worker has already fired engine events for its
        # batch-mate — the flight-recorder spill it leaves is non-empty.
        shards = campaign.shards()
        victim = shards[1 if len(shards) > 1 else 0].tag
        faults = FaultInjection(tags=(victim,), mode="kill")
    telemetry = TelemetryCollector() if args.telemetry else None
    flight_dir = pathlib.Path(args.flight_dir) if args.flight_dir else None
    if flight_dir is None and (args.expect_flight or args.inject_fault):
        # A fault-injection smoke without an explicit flight dir still
        # gets a recorder: the post-mortem artifact is the point.
        flight_dir = FLEET_RESULTS_DIR / "flight" / campaign.name

    t0 = time.monotonic()
    result = run_campaign(
        campaign, workers=workers, cache=cache, faults=faults,
        batch_size=args.batch_size,
        progress=None if args.quiet else _fleet_progress,
        telemetry=telemetry, flight_dir=flight_dir)
    text = fleet_report(result)

    FLEET_RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = FLEET_RESULTS_DIR / f"{campaign.name}.txt"
    out.write_text(text + "\n")
    print(text)
    status = 0
    if telemetry is not None:
        status = _emit_telemetry(result, FLEET_RESULTS_DIR, args.quiet)
    if cache is not None:
        print(f"[fleet] cache: {result.cache_hits} hits / "
              f"{result.cache_misses} misses "
              f"({result.cache_hits / max(1, len(result.outcomes)):.0%} hit rate)",
              file=sys.stderr)
    print(f"[fleet] {workers} worker(s), {time.monotonic() - t0:.1f}s wall, "
          f"report saved to {out}", file=sys.stderr)
    if args.expect_quarantine and not result.quarantined:
        print("[fleet] ERROR: expected the quarantine path to fire, "
              "but no shard was quarantined", file=sys.stderr)
        return 1
    if args.expect_flight:
        from repro.fleet import read_flight_dump

        quarantined = [o for o in result.outcomes
                       if o.status == "quarantined"]
        dumps = [read_flight_dump(o.flight) for o in quarantined if o.flight]
        if not dumps or any(d is None for d in dumps):
            print("[fleet] ERROR: expected a flight-recorder dump for every "
                  "quarantined shard, got "
                  f"{len(dumps)}/{len(quarantined)} readable", file=sys.stderr)
            return 1
        if not any(d.get("ring") for d in dumps):
            print("[fleet] ERROR: every flight-recorder dump has an empty "
                  "event ring — the recorder saw no engine events",
                  file=sys.stderr)
            return 1
        print(f"[fleet] flight recorder: {len(dumps)} quarantine dump(s) "
              f"verified (non-empty ring) under {flight_dir}", file=sys.stderr)
    return status


def cmd_scale(args: argparse.Namespace) -> int:
    """Run a hybrid-fidelity city campaign (see docs/SCALE.md).

    ``city_coverage`` fans a whole metro area out as city → cell →
    cohort fleet shards at a named ``--budget`` tier; each shard runs
    its cell's fluid background population plus one event-level
    foreground session under that background's pressure.
    ``cell_contention`` sweeps one cell across offered-load factors.
    ``--double-run`` executes the campaign twice and compares merged
    aggregate fingerprints — the CI scale-smoke determinism gate.
    """
    import hashlib

    from repro.fleet import (ResultCache, TelemetryCollector, run_campaign,
                             usable_cpus)
    from repro.scale.shards import (CITY_BUDGETS, campaign_telemetry_meta,
                                    cell_contention_campaign,
                                    city_coverage_campaign, city_users)

    if args.campaign == "city_coverage":
        campaign = city_coverage_campaign(args.budget,
                                          city_seed=args.city_seed)
    elif args.campaign == "cell_contention":
        campaign = cell_contention_campaign()
    else:
        print(f"unknown scale campaign {args.campaign!r}; "
              f"try: city_coverage, cell_contention", file=sys.stderr)
        return 2

    workers = args.workers if args.workers is not None \
        else max(1, usable_cpus())
    runs = 2 if args.double_run else 1
    digests = []
    result = None
    t0 = time.monotonic()
    for attempt in range(1, runs + 1):
        # The double-run gate must recompute, so caching is only
        # enabled for plain single runs.
        cache = ResultCache() if not (args.no_cache or args.double_run) \
            else None
        telemetry = TelemetryCollector() if args.telemetry else None
        if telemetry is not None:
            telemetry.meta.update(campaign_telemetry_meta(campaign))
        result = run_campaign(
            campaign, workers=workers, cache=cache,
            progress=None if args.quiet else _fleet_progress,
            telemetry=telemetry)
        digest = hashlib.sha256(
            result.aggregate.to_json().encode("utf-8")).hexdigest()
        digests.append(digest)
        if args.double_run:
            print(f"[scale] run {attempt}: fingerprint {digest[:16]}",
                  file=sys.stderr)
    wall = time.monotonic() - t0

    text = fleet_report(result)
    FLEET_RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = FLEET_RESULTS_DIR / f"{campaign.name}.txt"
    out.write_text(text + "\n")
    print(text)
    if args.telemetry:
        status = _emit_telemetry(result, FLEET_RESULTS_DIR, args.quiet)
        if status:
            return status

    users = city_users(result.aggregate)
    budget_note = f" budget={args.budget} ({CITY_BUDGETS[args.budget].n_cells} cells)" \
        if args.campaign == "city_coverage" else ""
    print(f"[scale] {users} background users simulated{budget_note}, "
          f"{workers} worker(s), {wall:.1f}s wall "
          f"({users * runs / max(wall, 1e-9):,.0f} users/s), "
          f"report saved to {out}", file=sys.stderr)
    if args.double_run:
        if digests[0] != digests[1]:
            print("[scale] FAIL: identical campaign produced different "
                  "aggregate fingerprints — determinism is broken",
                  file=sys.stderr)
            return 1
        print("[scale] OK: byte-identical aggregates across two runs",
              file=sys.stderr)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as lint_run

    return lint_run(args)


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check.cli import run as check_run

    return check_run(args)


def cmd_obs(args: argparse.Namespace) -> int:
    """Run an instrumented scenario and export its observability artifacts.

    Emits three files under ``benchmarks/results/obs/`` (or ``--out``):
    a Perfetto-loadable Chrome trace, a qlog-schema JSON-lines stream,
    and a canonical metrics-registry dump — then prints the critical-
    path breakdown table and headline summary.  ``--profile`` attaches
    the deterministic engine profiler (wall clock injected here, in
    harness code) and prints the handler hotspot table — the evidence
    base for macro-event batching.  ``--check`` validates the trace
    schema and the stage-sum reconciliation invariant — and, with
    ``--profile``, that a second profiled run reproduces identical
    handler counts — exiting non-zero on any problem (the CI obs-smoke
    gate).
    """
    from repro.analysis.report import obs_breakdown_table, profile_hotspot_table
    from repro.obs import (EngineProfiler, OBS_SCENARIOS, chrome_trace_json,
                           qlog_lines, reconcile_frame_spans,
                           run_obs_scenario, snapshot, validate_chrome_trace)

    if args.scenario not in OBS_SCENARIOS:
        print(f"unknown obs scenario {args.scenario!r}; "
              f"try: {', '.join(OBS_SCENARIOS)}", file=sys.stderr)
        return 2

    profiler = EngineProfiler(clock=time.perf_counter) if args.profile \
        else None
    run = run_obs_scenario(args.scenario, seed=args.seed, frames=args.frames,
                           profiler=profiler)
    trace = chrome_trace_json(run.tracer)
    qlog = qlog_lines(tracer=run.tracer, log=run.event_log,
                      registry=run.registry)
    metrics = run.registry.to_json()

    out_dir = pathlib.Path(args.out) if args.out else RESULTS_DIR / "obs"
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{args.scenario}-seed{args.seed}"
    (out_dir / f"{stem}.trace.json").write_text(trace + "\n")
    (out_dir / f"{stem}.qlog.jsonl").write_text(qlog + "\n")
    (out_dir / f"{stem}.metrics.json").write_text(metrics + "\n")

    if run.breakdowns:
        print(obs_breakdown_table(
            run.breakdowns,
            title=f"{args.scenario} (seed {args.seed}) critical path"))
        print()
    if profiler is not None:
        print(profile_hotspot_table(profiler))
        print()
    snap = snapshot(run.registry, run.tracer)
    frames = snap.get("frames", {})
    print("summary: " + ", ".join(
        f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
        for k, v in sorted(run.summary.items())))
    if frames:
        print(f"spans: {frames['spans']} total, {frames['traced']} frame "
              f"trees, {frames['unfinished']} unfinished")
    print(f"[obs] artifacts: {out_dir / stem}.{{trace.json,qlog.jsonl,"
          f"metrics.json}}", file=sys.stderr)

    if args.check:
        problems = validate_chrome_trace(trace)
        reconciled = bool(run.breakdowns)
        if reconciled:
            problems += reconcile_frame_spans(run.tracer)
        if profiler is not None:
            # Counts must be a pure function of (scenario, seed, frames):
            # re-run with a fresh clockless profiler and compare the
            # deterministic export (wall times are telemetry, excluded).
            rerun_prof = EngineProfiler()
            run_obs_scenario(args.scenario, seed=args.seed,
                             frames=args.frames, profiler=rerun_prof)
            if rerun_prof.to_dict() != profiler.to_dict():
                problems.append(
                    "profiler handler counts differ between identical runs")
        if problems:
            for p in problems:
                print(f"[obs] CHECK FAIL: {p}", file=sys.stderr)
            return 1
        print("[obs] check OK: trace schema valid" + (
            ", stage sums reconcile with frame latency (±1 µs)"
            if reconciled else "") + (
            ", profiler counts deterministic" if profiler is not None else ""))
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """Determinism smoke: run one shard twice, diff trace fingerprints.

    This is the check behind simlint's claim that "a clean tree is
    reproducible": the campaign shard exercises the engine, links,
    transports and aggregation end to end, and the two runs must hash
    to the same canonical JSON.  The fingerprint also covers the
    observability layer: each run re-traces an instrumented offload
    scenario and hashes its Chrome-trace export plus metrics registry,
    so a wall-clock leak into spans or counters fails here too.  CI
    runs it next to the lint gate.
    """
    import hashlib

    from repro.fleet import demo_campaigns, run_shard
    from repro.obs import chrome_trace_json, run_obs_scenario

    campaigns = demo_campaigns()
    campaign = campaigns.get(args.campaign)
    if campaign is None:
        print(f"unknown campaign {args.campaign!r}; "
              f"try: {', '.join(campaigns)}", file=sys.stderr)
        return 2
    shard = campaign.shards()[0]
    digests = []
    for attempt in (1, 2):
        payload = run_shard(campaign, shard.tag).to_json()
        obs_run = run_obs_scenario("cell_offload", seed=11, frames=20)
        payload += chrome_trace_json(obs_run.tracer)
        payload += obs_run.registry.to_json()
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        digests.append(digest)
        print(f"[selftest] run {attempt}: shard {shard.tag} + obs trace "
              f"fingerprint {digest[:16]}")
    if digests[0] != digests[1]:
        print("[selftest] FAIL: identical (campaign, seed, shard) produced "
              "different aggregates or traces — determinism is broken",
              file=sys.stderr)
        return 1
    print("[selftest] OK: byte-identical aggregates and trace exports "
          "across two runs")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAR networking reproduction: demos and reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list demos and saved reports").set_defaults(
        func=cmd_list)
    demo = sub.add_parser("demo", help="run a built-in demo")
    demo.add_argument("name")
    demo.set_defaults(func=cmd_demo)
    show = sub.add_parser("show", help="print a saved benchmark report")
    show.add_argument("experiment", help="experiment id prefix, e.g. T2 or F4")
    show.set_defaults(func=cmd_show)
    fleet = sub.add_parser(
        "fleet", help="run a sharded multi-process campaign")
    fleet.add_argument("campaign", nargs="?", default="cell256",
                       help="campaign name (default: cell256; "
                            "see `repro list`)")
    fleet.add_argument("--batch-size", type=int, default=None,
                       help="shards per worker task (default: auto-tuned "
                            "from the scenario cost hint; 1 = unbatched)")
    fleet.add_argument("-w", "--workers", type=int, default=None,
                       help="worker processes (default: usable CPUs per "
                            "the scheduling affinity; 1 = serial fallback)")
    fleet.add_argument("--seeds", type=int, default=None,
                       help="override seed replicas per grid point")
    fleet.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result cache")
    fleet.add_argument("--replay", metavar="TAG", default=None,
                       help="replay one shard by tag and print its "
                            "aggregate JSON")
    fleet.add_argument("--inject-fault", action="store_true",
                       help="kill the first shard's worker on every "
                            "attempt (CI smoke: exercises quarantine)")
    fleet.add_argument("--expect-quarantine", action="store_true",
                       help="exit non-zero unless a shard was quarantined")
    fleet.add_argument("--telemetry", action="store_true",
                       help="collect wall-clock runtime telemetry; writes "
                            "campaign_telemetry.json + a Chrome trace of "
                            "worker timelines and prints the report table")
    fleet.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="arm the crash flight recorder, writing ring "
                            "spills/dumps under DIR (implied for "
                            "--inject-fault / --expect-flight)")
    fleet.add_argument("--expect-flight", action="store_true",
                       help="exit non-zero unless every quarantined shard "
                            "has a readable flight-recorder dump")
    fleet.add_argument("--quiet", action="store_true",
                       help="suppress the progress/ETA line")
    fleet.set_defaults(func=cmd_fleet)
    scale = sub.add_parser(
        "scale", help="run a hybrid-fidelity city campaign "
                      "(fluid background + event-level foreground)")
    scale.add_argument("campaign", nargs="?", default="city_coverage",
                       help="city_coverage (default) or cell_contention")
    scale.add_argument("--budget", default="small",
                       choices=("smoke", "small", "metro"),
                       help="city size tier for city_coverage "
                            "(default: small, the >=1e5-user CI tier)")
    scale.add_argument("--city-seed", type=int, default=7,
                       help="seed the city layout derives from "
                            "(default: 7)")
    scale.add_argument("-w", "--workers", type=int, default=None,
                       help="worker processes (default: usable CPUs; "
                            "1 = serial fallback)")
    scale.add_argument("--double-run", action="store_true",
                       help="run twice and require byte-identical "
                            "aggregate fingerprints (CI determinism gate)")
    scale.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result cache")
    scale.add_argument("--telemetry", action="store_true",
                       help="collect wall-clock runtime telemetry "
                            "(campaign_telemetry.json + worker timeline "
                            "trace + report table)")
    scale.add_argument("--quiet", action="store_true",
                       help="suppress the progress/ETA line")
    scale.set_defaults(func=cmd_scale)
    lint = sub.add_parser(
        "lint", help="simlint: determinism & simulation-safety checks")
    from repro.lint.cli import configure_parser as _configure_lint
    _configure_lint(lint)
    lint.set_defaults(func=cmd_lint)
    obs = sub.add_parser(
        "obs", help="run an instrumented scenario; export Perfetto trace, "
                    "qlog lines and metrics")
    obs.add_argument("--scenario", default="cell_offload",
                     help="obs scenario name (default: cell_offload; "
                          "also: martp_session)")
    obs.add_argument("--seed", type=int, default=11,
                     help="simulation seed (default: 11)")
    obs.add_argument("--frames", type=int, default=60,
                     help="frames to trace (default: 60)")
    obs.add_argument("--out", default=None,
                     help="output directory (default: "
                          "benchmarks/results/obs/)")
    obs.add_argument("--profile", action="store_true",
                     help="attach the engine profiler and print the handler "
                          "hotspot table (counts deterministic, wall times "
                          "telemetry-only)")
    obs.add_argument("--check", action="store_true",
                     help="validate trace schema + stage-sum reconciliation "
                          "(and, with --profile, count determinism); "
                          "exit non-zero on problems")
    obs.set_defaults(func=cmd_obs)
    check = sub.add_parser(
        "check", help="bounded state-space explorer: enumerate event "
                      "orderings and fault placements, assert protocol "
                      "invariants, export replayable counterexamples")
    from repro.check.cli import configure_parser as _configure_check
    _configure_check(check)
    check.set_defaults(func=cmd_check)
    selftest = sub.add_parser(
        "selftest", help="determinism smoke: run one shard twice and "
                         "diff trace fingerprints")
    selftest.add_argument("campaign", nargs="?", default="smoke",
                          help="campaign whose first shard to double-run "
                               "(default: smoke)")
    selftest.set_defaults(func=cmd_selftest)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
