"""Discrete-event simulation engine.

A :class:`Simulator` owns a priority queue of timestamped events.  Every
other component (links, transports, applications) schedules callbacks on
it.  Events fire in non-decreasing time order; ties break in scheduling
order so runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled with
    :meth:`cancel` (or :meth:`Simulator.cancel`).  A cancelled event
    stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All
        stochastic components in the reproduction draw from
        :attr:`rng` (or a child RNG derived from it) so a run is a pure
        function of its seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args, **kwargs)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time, next(self._seq), fn, args, kwargs)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given the clock is advanced to exactly
        ``until`` at the end of the run even if the last event fired
        earlier, so back-to-back ``run(until=...)`` calls behave like a
        continuous timeline.
        """
        fired = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until
        return fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    def child_rng(self, tag: str) -> random.Random:
        """Derive a named, reproducible RNG for a subsystem.

        Using per-subsystem RNGs keeps component randomness independent
        of the order in which other components draw.  The child stream
        is a pure function of ``(seed, tag)``.
        """
        return random.Random(f"{self.seed}:{tag}")
