"""Discrete-event simulation engine.

A :class:`Simulator` owns a priority queue of timestamped events.  Every
other component (links, transports, applications) schedules callbacks on
it.  Events fire in non-decreasing time order; ties break in scheduling
order so runs are fully deterministic for a fixed seed.

Hot-path design notes
---------------------

The heap stores ``(time, seq, event)`` tuples so ``heapq`` compares
plain tuples in C instead of calling a Python ``__lt__`` per sift.
Cancellation is *lazy*: a cancelled event keeps its heap entry and is
skipped when popped, but the simulator counts dead entries and compacts
the heap (filter + heapify) once they exceed both ``compact_min`` and
``compact_ratio`` of the heap — so long ``run(until=...)`` window loops
no longer accumulate cancelled timers (TCP/QUIC RTO re-arms, heartbeat
deadlines) across windows.  Compaction never reorders firings: pop
order is the total order ``(time, seq)`` regardless of the heap's
internal array layout.

Timers that move *later* (the overwhelmingly common RTO/PTO re-arm
pattern) should use :meth:`Simulator.reschedule`, which defers the
event in place: the existing heap entry stays where it is and is
re-pushed at the new deadline only when it surfaces.  A reschedule
allocates a fresh sequence number at call time — exactly what a
cancel+push would have done — so tie-breaking, and therefore the whole
run, is bit-identical to the naive implementation.

Clock semantics of :meth:`Simulator.run` (all three exit paths):

- **drain** (no events left): the clock rests at the last fired event,
  then advances to ``until`` if one was given;
- **until reached** (next event is later than ``until``): the clock
  advances to exactly ``until`` so back-to-back ``run(until=...)``
  calls behave like a continuous timeline;
- **max_events tripped**: the clock stays at the last fired event
  whenever events at or before ``until`` remain unfired — jumping
  ahead of unfired work would make the clock run backwards on the next
  call.  If nothing remains at or before ``until``, it advances as in
  the drain case.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple

# Event lifecycle states (int enum kept flat for hot-path speed).
_PENDING = 0
_CANCELLED = 1
_FIRED = 2

#: Process-wide default per-fire hook: every *new* Simulator seeds its
#: ``trace_hook`` from this.  Only harness code assigns it (the fleet
#: flight recorder installs its ring-buffer hook per worker process);
#: sim code never mutates it, and a hook only observes fired events, so
#: results stay a pure function of ``(scenario, seed)`` either way.
default_trace_hook: Optional[Callable[["Event"], None]] = None


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled with
    :meth:`cancel` (or :meth:`Simulator.cancel`).  A cancelled event
    stays in the heap but is skipped when popped; the owning simulator
    compacts the heap when too many dead entries accumulate.

    ``time``/``seq`` are the *effective* firing key.  The heap entry
    carries its own frozen ``(time, seq)`` copy; when the two disagree
    the event has been rescheduled and the entry is re-pushed at the
    new deadline instead of firing.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "_sim", "_state")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: Optional[dict],
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        # The zero-kwarg fast path stores None instead of materialising
        # (and retaining) an empty dict per event.
        self.kwargs = kwargs
        self._sim = sim
        self._state = _PENDING

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def fired(self) -> bool:
        return self._state == _FIRED

    def cancel(self) -> None:
        """Mark this event so it will not fire.  Idempotent; a no-op on
        an event that already fired."""
        if self._state == _PENDING:
            self._state = _CANCELLED
            if self._sim is not None:
                self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("pending", "cancelled", "fired")[self._state]
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Checkpoint:
    """A frozen deep snapshot of a simulator and its attached model roots.

    This generalises the per-link snapshot machinery of
    :mod:`repro.simnet.faults` to the *whole world*: the simulator (its
    clock, heap, counters and RNG) is deep-copied **together** with the
    caller-supplied ``roots`` object in one :func:`copy.deepcopy` call,
    so every shared reference — events whose callbacks are bound methods
    of model objects, model objects holding the simulator — lands in one
    consistent copied object graph.

    :meth:`restore` materialises a live ``(sim, roots)`` pair from the
    frozen snapshot.  Each call yields an *independent* world, so one
    checkpoint supports arbitrarily many restores — the primitive the
    :mod:`repro.check` bounded explorer forks execution with.  Pass
    ``consume=True`` on the final restore to hand back the frozen copy
    itself and skip one deepcopy (the checkpoint must not be restored
    again afterwards).

    Caveat: deepcopy treats plain functions and lambdas as atomic, so a
    callback that *closes over* model state keeps pointing at the
    original objects across a restore.  Schedule bound methods (or
    callables on copyable objects) in any world that will be
    checkpointed; the stock simnet/transport/core components already do.
    """

    __slots__ = ("_frozen", "_consumed")

    def __init__(self, sim: "Simulator", roots: Any = None) -> None:
        self._frozen: Optional[Tuple["Simulator", Any]] = copy.deepcopy((sim, roots))
        self._consumed = False

    def restore(self, consume: bool = False) -> Tuple["Simulator", Any]:
        """Return a live ``(sim, roots)`` copy of the frozen world."""
        if self._frozen is None:
            raise RuntimeError("checkpoint already consumed")
        if consume:
            frozen = self._frozen
            self._frozen = None
            return frozen
        return copy.deepcopy(self._frozen)

    @property
    def consumed(self) -> bool:
        return self._frozen is None


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All
        stochastic components in the reproduction draw from
        :attr:`rng` (or a child RNG derived from it) so a run is a pure
        function of its seed.
    compact_min:
        Never compact while fewer than this many cancelled entries sit
        in the heap (compaction is O(n); tiny heaps are not worth it).
    compact_ratio:
        Compact once cancelled entries exceed this fraction of the
        heap.
    """

    def __init__(self, seed: int = 0, compact_min: int = 64,
                 compact_ratio: float = 0.5) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self._heap: list = []  # entries: (time, seq, Event)
        self._seq = itertools.count()
        self._running = False
        self._pending = 0      # live (not cancelled, not fired) events
        self._cancelled = 0    # cancelled entries still in the heap
        self.compact_min = compact_min
        self.compact_ratio = compact_ratio
        # Counters (cheap; exposed for benchmarks and tests).
        self.events_scheduled = 0
        self.events_fired = 0
        self.compactions = 0
        #: optional per-fire hook ``hook(event)`` for trace capture;
        #: costs one None-check per fired event when unset.  Seeded from
        #: the module-level ``default_trace_hook`` so a harness (the
        #: fleet flight recorder) can observe every simulator a worker
        #: process creates without threading a parameter through every
        #: scenario runner.
        self.trace_hook: Optional[Callable[[Event], None]] = default_trace_hook
        #: optional :class:`repro.obs.profile.EngineProfiler`; when set,
        #: :meth:`_fire` bumps ``profiler.counts[fn]`` per dispatch and,
        #: if the profiler carries an injected clock, attributes handler
        #: wall time to ``profiler.wall[fn]``.
        self.profiler = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args, **kwargs)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = next(self._seq)
        event = Event(time, seq, fn, args, kwargs or None, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._pending += 1
        self.events_scheduled += 1
        return event

    def reschedule(self, event: Event, delay: float) -> Event:
        """Move ``event`` to ``delay`` seconds from now; returns the
        (possibly new) event the caller must hold on to."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.reschedule_at(event, self.now + delay)

    def reschedule_at(self, event: Event, time: float) -> Event:
        """Move a timer to absolute ``time`` without churning the heap.

        The common re-arm pattern (RTO/PTO/heartbeat deadlines pushed
        *later*) is O(1): the event's effective key is updated in place
        and its existing heap entry is recycled when it surfaces.
        Moving a timer *earlier* — or rescheduling an event that
        already fired or was cancelled — falls back to a fresh entry.
        Exactly one sequence number is consumed either way, matching
        cancel+push semantics bit-for-bit.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if event._state != _PENDING:
            # Fired or cancelled: start a fresh timer with the same callback.
            kw = event.kwargs
            if kw is None:
                return self.schedule_at(time, event.fn, *event.args)
            return self.schedule_at(time, event.fn, *event.args, **kw)
        seq = next(self._seq)
        if time >= event.time:
            # Defer in place: the stale heap entry re-pushes itself on pop.
            event.time = time
            event.seq = seq
            return event
        # Earlier deadline: the lazy entry sits too late in the heap —
        # retire it and push a replacement.
        event._state = _CANCELLED
        self._note_cancel()
        new = Event(time, seq, event.fn, event.args, event.kwargs, self)
        heapq.heappush(self._heap, (time, seq, new))
        self._pending += 1
        self.events_scheduled += 1
        return new

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    # ------------------------------------------------------------------
    # Heap maintenance
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._pending -= 1
        self._cancelled += 1
        if (self._cancelled >= self.compact_min
                and self._cancelled >= self.compact_ratio * len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  Firing order is
        unaffected: pops follow the total order ``(time, seq)``."""
        # In-place: run() holds a local reference to this list.
        self._heap[:] = [entry for entry in self._heap if entry[2]._state != _CANCELLED]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def _next_entry(self):
        """Surface the next live heap entry (skimming dead and deferred
        entries off the top), or None when the heap is drained."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            state = event._state
            if state == _CANCELLED:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if event.seq != entry[1]:
                # Deferred by reschedule(): recycle the entry at the
                # event's effective deadline.
                heapq.heappop(heap)
                heapq.heappush(heap, (event.time, event.seq, event))
                continue
            return entry
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _fire(self, event: Event) -> None:
        event._state = _FIRED
        self._pending -= 1
        self.now = event.time
        self.events_fired += 1
        if self.trace_hook is not None:
            self.trace_hook(event)
        fn = event.fn
        prof = self.profiler
        if prof is not None:
            # Profiling is inlined here rather than delegated: a method
            # call per event would alone cost more than the whole
            # counts path.  Keys are the raw callables — equal bound
            # methods collapse in the dict; names resolve at export.
            # Wall attribution times every ``stride``-th occurrence per
            # handler (scaled back at export), so the injected clock is
            # read on a deterministic sample, not on every dispatch.
            counts = prof.counts
            n = counts[fn] + 1
            counts[fn] = n
            clock = prof.clock
            if clock is not None and not n % prof.stride:
                kw = event.kwargs
                t0 = clock()
                try:
                    if kw is None:
                        fn(*event.args)
                    else:
                        fn(*event.args, **kw)
                finally:
                    prof.wall[fn] += clock() - t0
                return
        kw = event.kwargs
        if kw is None:
            fn(*event.args)
        else:
            fn(*event.args, **kw)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        entry = self._next_entry()
        if entry is None:
            return False
        heapq.heappop(self._heap)
        self._fire(entry[2])
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired
        (cancelled entries that are popped and discarded do not count).

        See the module docstring for the exact clock semantics of each
        exit path.
        """
        fired = 0
        stopped_by_max = False
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        self._running = True
        try:
            while heap:
                if max_events is not None and fired >= max_events:
                    stopped_by_max = True
                    break
                time, seq, event = heap[0]
                state = event._state
                if state == _CANCELLED:
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                if event.seq != seq:
                    heappop(heap)
                    heappush(heap, (event.time, event.seq, event))
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                self._fire(event)
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            if not stopped_by_max:
                self.now = until
            else:
                # Only jump the clock past unfired work if there is none
                # at or before the horizon.
                head = self._next_entry()
                if head is None or head[0] > until:
                    self.now = until
        return fired

    # ------------------------------------------------------------------
    # Exploration hooks (repro.check)
    # ------------------------------------------------------------------
    def checkpoint(self, roots: Any = None) -> Checkpoint:
        """Deep-snapshot this simulator plus the given model roots.

        ``roots`` is any object (typically a dict or a harness "world")
        reachable alongside the simulator; it is copied in the same
        deepcopy pass so shared references stay consistent.  See
        :class:`Checkpoint`.
        """
        return Checkpoint(self, roots)

    def pending_ties(self) -> List[Event]:
        """All live events sharing the earliest deadline.

        These are exactly the firing candidates of the next :meth:`step`:
        the engine always picks the lowest sequence number, but any
        permutation of same-timestamp events is a legal execution of the
        modelled system — the bounded explorer enumerates them via
        :meth:`fire_event`.  Sorted by ``(time, seq)``, so index 0 is
        the event the default engine order would fire.
        """
        head = self._next_entry()
        if head is None:
            return []
        t = head[0]
        ties = [
            event
            for (entry_time, _seq, event) in self._heap
            if entry_time == t and event._state == _PENDING and event.time == t
        ]
        ties.sort(key=lambda e: e.seq)
        return ties

    def fire_event(self, event: Event) -> None:
        """Fire a specific pending event *now* (explorer hook).

        The event must be due — its deadline may not precede other
        pending work only in the sense the caller guarantees by choosing
        from :meth:`pending_ties`; the engine enforces that the clock
        never runs backwards.  Its heap entry is removed eagerly (O(n),
        fine at explorer scale) so the normal pop path never sees a
        fired event.
        """
        if event._state != _PENDING:
            raise ValueError(f"cannot fire non-pending event {event!r}")
        if event.time < self.now:
            raise ValueError(
                f"cannot fire event in the past: {event.time} < {self.now}")
        heap = self._heap
        for i, entry in enumerate(heap):
            if entry[2] is event:
                del heap[i]
                break
        else:  # pragma: no cover - corrupted bookkeeping
            raise ValueError("event not owned by this simulator")
        heapq.heapify(heap)
        self._fire(event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._pending

    @property
    def heap_size(self) -> int:
        """Raw heap length, including lazily-cancelled entries."""
        return len(self._heap)

    @property
    def cancelled_in_heap(self) -> int:
        """Cancelled entries awaiting pop or compaction."""
        return self._cancelled

    @property
    def next_event_time(self) -> Optional[float]:
        """Deadline of the next live event, or None when drained."""
        entry = self._next_entry()
        return entry[0] if entry is not None else None

    def child_rng(self, tag: str) -> random.Random:
        """Derive a named, reproducible RNG for a subsystem.

        Using per-subsystem RNGs keeps component randomness independent
        of the order in which other components draw.  The child stream
        is a pure function of ``(seed, tag)``.
        """
        return random.Random(f"{self.seed}:{tag}")
