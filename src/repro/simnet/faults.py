"""Declarative fault injection for simulated networks (Section VI-B).

The paper's robustness guideline — "an AR application should ideally
function with degraded performance even if no network connectivity is
available" — needs failures to be first-class inputs, not ad-hoc
``link.loss`` pokes inside tests.  This module provides:

- :class:`FaultEvent` — one timed fault (link blackout, loss burst,
  bandwidth crush, delay spike / reorder window, server crash/restart,
  handover stall) with explicit targets and severity;
- :class:`FaultPlan` — an ordered collection of events with builder
  classmethods for the common fault shapes;
- :class:`FaultInjector` — schedules a plan on the :class:`Simulator`,
  applies each event when it starts and restores the *complete* prior
  state when it expires.

State restoration is snapshot-based: the first fault touching a link
snapshots every mutable field (``loss``, ``rate_bps``, ``delay``,
``jitter``); the effective state while any fault is active is computed
by composing all active faults over that snapshot, and the last expiry
restores the snapshot verbatim.  This closes the latent bug class where
a blackout implemented as ``loss = 0.999999`` silently leaked a jitter
or rate mutation past its window.  Overlapping faults compose:

- loss probabilities combine independently
  (``1 - (1-base)·∏(1-loss_i)``),
- rate factors multiply,
- extra delay and jitter add.

Node faults (server crash) flip :attr:`Node.down`; a crashed node drops
everything delivered to it, so heartbeats and frames time out exactly as
they would against a dead edge server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.simnet.link import Link
from repro.simnet.network import Network
from repro.simnet.node import Node

#: Blackouts set the composed loss to exactly 1.0: `Link` only validates
#: the constructor argument, and ``rng.random() < 1.0`` always drops.
BLACKOUT_LOSS = 1.0

LinkRef = Union[str, Link]
NodeRef = Union[str, Node]


class FaultPlanError(ValueError):
    """A fault plan that would silently misfire mid-run."""


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    ``kind`` is informational (it names the builder that produced the
    event); behaviour is fully determined by the severity fields.  A
    ``duration`` of ``None`` means the fault never expires on its own
    (a permanent crash or a link cut that outlives the run).
    """

    kind: str
    start: float
    duration: Optional[float]
    links: Tuple[str, ...] = ()
    nodes: Tuple[str, ...] = ()
    #: extra independent drop probability while active (1.0 = blackout)
    loss: float = 0.0
    #: multiplier on the link's serialization rate (1.0 = untouched)
    rate_factor: float = 1.0
    #: additive propagation delay in seconds
    extra_delay: float = 0.0
    #: additive jitter in seconds (opens a reorder/late-delivery window)
    extra_jitter: float = 0.0

    def __post_init__(self) -> None:
        # Reject malformed events at construction: a NaN start would
        # pass a plain ``< 0`` test and then scramble the plan's sort
        # order, an infinite duration would schedule an expiry that
        # never fires, and a negative extra_delay could drive the
        # composed link delay negative — all of which previously
        # misfired silently mid-run instead of failing here.
        if not math.isfinite(self.start) or self.start < 0:
            raise ValueError("fault start must be finite and >= 0")
        if self.duration is not None and (
                not math.isfinite(self.duration) or self.duration <= 0):
            raise ValueError(
                "fault duration must be finite and positive (or None for "
                "a permanent fault)")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss must be in [0, 1]")
        if not math.isfinite(self.rate_factor) or self.rate_factor <= 0:
            raise ValueError("rate_factor must be finite and positive")
        if not math.isfinite(self.extra_delay) or self.extra_delay < 0:
            raise ValueError("extra_delay must be finite and >= 0")
        if not math.isfinite(self.extra_jitter) or self.extra_jitter < 0:
            raise ValueError("extra_jitter must be finite and >= 0")
        if not self.links and not self.nodes:
            raise ValueError("a fault needs at least one link or node target")

    @property
    def end(self) -> Optional[float]:
        return None if self.duration is None else self.start + self.duration

    # ------------------------------------------------------------------
    # Serialization (counterexample artifacts, repro.check)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "links": list(self.links),
            "nodes": list(self.nodes),
            "loss": self.loss,
            "rate_factor": self.rate_factor,
            "extra_delay": self.extra_delay,
            "extra_jitter": self.extra_jitter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            start=data["start"],
            duration=data["duration"],
            links=tuple(data.get("links", ())),
            nodes=tuple(data.get("nodes", ())),
            loss=data.get("loss", 0.0),
            rate_factor=data.get("rate_factor", 1.0),
            extra_delay=data.get("extra_delay", 0.0),
            extra_jitter=data.get("extra_jitter", 0.0),
        )

    # ------------------------------------------------------------------
    # Builders — the fault vocabulary of the robustness scenarios.
    # ------------------------------------------------------------------
    @staticmethod
    def _link_names(links: Iterable[LinkRef]) -> Tuple[str, ...]:
        return tuple(l if isinstance(l, str) else l.name for l in links)

    @staticmethod
    def _node_names(nodes: Iterable[NodeRef]) -> Tuple[str, ...]:
        return tuple(n if isinstance(n, str) else n.name for n in nodes)

    @classmethod
    def blackout(cls, start: float, duration: Optional[float],
                 links: Iterable[LinkRef]) -> "FaultEvent":
        """Total radio silence on the given links."""
        return cls(kind="blackout", start=start, duration=duration,
                   links=cls._link_names(links), loss=BLACKOUT_LOSS)

    @classmethod
    def loss_burst(cls, start: float, duration: Optional[float],
                   links: Iterable[LinkRef], loss: float = 0.3) -> "FaultEvent":
        """A window of elevated random loss (interference, cell edge)."""
        return cls(kind="loss-burst", start=start, duration=duration,
                   links=cls._link_names(links), loss=loss)

    @classmethod
    def bandwidth_crush(cls, start: float, duration: Optional[float],
                        links: Iterable[LinkRef],
                        factor: float = 0.1) -> "FaultEvent":
        """Throughput collapses to ``factor`` of nominal (congested cell)."""
        return cls(kind="bandwidth-crush", start=start, duration=duration,
                   links=cls._link_names(links), rate_factor=factor)

    @classmethod
    def delay_spike(cls, start: float, duration: Optional[float],
                    links: Iterable[LinkRef], extra_delay: float = 0.2,
                    extra_jitter: float = 0.0) -> "FaultEvent":
        """Added latency, optionally with a jitter/reorder window
        (bufferbloat episode, cross-layer retransmission storm)."""
        return cls(kind="delay-spike", start=start, duration=duration,
                   links=cls._link_names(links), extra_delay=extra_delay,
                   extra_jitter=extra_jitter)

    @classmethod
    def server_crash(cls, start: float, duration: Optional[float],
                     nodes: Iterable[NodeRef]) -> "FaultEvent":
        """Edge-server churn: the node drops every delivered packet until
        restart (``duration`` elapses) — or forever when ``None``."""
        return cls(kind="server-crash", start=start, duration=duration,
                   nodes=cls._node_names(nodes))

    @classmethod
    def handover_stall(cls, start: float, duration: float,
                       links: Iterable[LinkRef],
                       residual_delay: float = 0.05) -> "FaultEvent":
        """A hard handover: the radio goes silent for ``duration`` and
        traffic that survives rides a briefly inflated path."""
        return cls(kind="handover-stall", start=start, duration=duration,
                   links=cls._link_names(links), loss=BLACKOUT_LOSS,
                   extra_delay=residual_delay)


@dataclass
class FaultPlan:
    """An ordered set of fault events plus builder sugar.

    Plans are plain data — build one anywhere, hand it to a
    :class:`FaultInjector`.  ``events`` need not be pre-sorted.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def extend(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        self.events.extend(events)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.start))

    @property
    def horizon(self) -> float:
        """Latest expiry across all bounded events."""
        ends = [e.end for e in self.events if e.end is not None]
        return max(ends) if ends else 0.0

    def validate(self) -> "FaultPlan":
        """Reject plans that would silently misfire mid-run.

        Raises :class:`FaultPlanError` when the plan contains the same
        event twice — either the identical object added twice or two
        equal events.  A doubled event activates twice, composing its
        severity with itself (two 50% loss bursts become 75%), and its
        two expiries race over one ``active`` list entry, so the plan's
        effect silently diverges from what was declared.

        *Distinct* overlapping events are legal by design: overlapping
        faults compose (loss independently, rate multiplicatively,
        delay/jitter additively) and overlapping crash windows refcount
        — see the module docstring.  Per-event shape problems
        (negative or non-finite times, zero-width windows, out-of-range
        severities) are rejected earlier, at :class:`FaultEvent`
        construction.

        Returns the plan itself so call sites can chain
        ``injector.apply(plan.validate())``.
        """
        problems: List[str] = []
        seen_ids: Dict[int, int] = {}
        for index, event in enumerate(self.events):
            if id(event) in seen_ids:
                problems.append(
                    f"event #{index} ({event.kind} @ {event.start}) is the "
                    f"same object as event #{seen_ids[id(event)]} — it would "
                    "activate twice and compose with itself")
            seen_ids[id(event)] = index
        for i, a in enumerate(self.events):
            for j in range(i + 1, len(self.events)):
                b = self.events[j]
                if a is not b and a == b:
                    problems.append(
                        f"events #{i} and #{j} are equal "
                        f"({a.kind} @ {a.start} on {a.links or a.nodes}) — "
                        "duplicate windows compose with themselves")
        if problems:
            raise FaultPlanError("; ".join(problems))
        return self

    # ------------------------------------------------------------------
    # Serialization (counterexample artifacts, repro.check)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(events=[FaultEvent.from_dict(e) for e in data.get("events", [])])

    # Convenience pass-throughs mirroring the FaultEvent builders.
    def blackout(self, start: float, duration: Optional[float],
                 links: Iterable[LinkRef]) -> "FaultPlan":
        return self.add(FaultEvent.blackout(start, duration, links))

    def loss_burst(self, start: float, duration: Optional[float],
                   links: Iterable[LinkRef], loss: float = 0.3) -> "FaultPlan":
        return self.add(FaultEvent.loss_burst(start, duration, links, loss))

    def bandwidth_crush(self, start: float, duration: Optional[float],
                        links: Iterable[LinkRef], factor: float = 0.1) -> "FaultPlan":
        return self.add(FaultEvent.bandwidth_crush(start, duration, links, factor))

    def delay_spike(self, start: float, duration: Optional[float],
                    links: Iterable[LinkRef], extra_delay: float = 0.2,
                    extra_jitter: float = 0.0) -> "FaultPlan":
        return self.add(FaultEvent.delay_spike(start, duration, links,
                                               extra_delay, extra_jitter))

    def server_crash(self, start: float, duration: Optional[float],
                     nodes: Iterable[NodeRef]) -> "FaultPlan":
        return self.add(FaultEvent.server_crash(start, duration, nodes))

    def handover_stall(self, start: float, duration: float,
                       links: Iterable[LinkRef],
                       residual_delay: float = 0.05) -> "FaultPlan":
        return self.add(FaultEvent.handover_stall(start, duration, links,
                                                  residual_delay))


@dataclass(frozen=True)
class _LinkSnapshot:
    """Every mutable field a fault may touch, captured before it does."""

    loss: float
    rate_bps: float
    delay: float
    jitter: float

    @classmethod
    def of(cls, link: Link) -> "_LinkSnapshot":
        return cls(loss=link.loss, rate_bps=link.rate_bps,
                   delay=link.delay, jitter=link.jitter)

    def restore(self, link: Link) -> None:
        link.loss = self.loss
        link.rate_bps = self.rate_bps
        link.delay = self.delay
        link.jitter = self.jitter


def path_links(net: Network, a: str, b: str) -> List[Link]:
    """Both directions of the current route between two nodes — the
    usual target set for access-side faults."""
    return net.path_links(a, b) + net.path_links(b, a)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a network on its simulator.

    The injector keeps, per link, the pre-fault snapshot and the list of
    currently active events; the link's effective state is always
    ``compose(snapshot, active_events)``, and the snapshot is restored
    exactly when the last event on that link expires.  Per node it
    refcounts crash events so overlapping crash windows do not revive a
    server early.

    The injector also keeps a ``timeline`` of ``(time, event, phase)``
    records (phase is ``"start"`` or ``"end"``) so resilience metrics
    can measure detection delay against ground truth.
    """

    def __init__(self, net: Network) -> None:
        self.net = net
        self.sim = net.sim
        self._links_by_name: Dict[str, Link] = {l.name: l for l in net.links}
        self._snapshots: Dict[str, _LinkSnapshot] = {}
        self._active_on_link: Dict[str, List[FaultEvent]] = {}
        self._crash_refcount: Dict[str, int] = {}
        self._active: List[FaultEvent] = []
        self.timeline: List[Tuple[float, FaultEvent, str]] = []
        self.activated = 0
        self.expired = 0

    # ------------------------------------------------------------------
    def apply(self, plan: FaultPlan, validate: bool = True) -> None:
        """Schedule every event of the plan.

        The plan is validated first (see :meth:`FaultPlan.validate`) so
        a doubled event fails loudly here instead of silently composing
        with itself mid-run; pass ``validate=False`` only when the plan
        was already validated.
        """
        if validate:
            plan.validate()
        for event in plan:
            self.schedule(event)

    def schedule(self, event: FaultEvent) -> None:
        self._resolve_targets(event)  # fail fast on unknown names
        self.sim.schedule_at(max(event.start, self.sim.now), self._activate, event)

    # ------------------------------------------------------------------
    def _resolve_targets(self, event: FaultEvent) -> Tuple[List[Link], List[Node]]:
        try:
            links = [self._links_by_name[name] for name in event.links]
        except KeyError as exc:
            raise KeyError(f"fault targets unknown link {exc.args[0]!r}") from None
        try:
            nodes = [self.net.nodes[name] for name in event.nodes]
        except KeyError as exc:
            raise KeyError(f"fault targets unknown node {exc.args[0]!r}") from None
        return links, nodes

    def _activate(self, event: FaultEvent) -> None:
        links, nodes = self._resolve_targets(event)
        for link in links:
            if link.name not in self._snapshots:
                self._snapshots[link.name] = _LinkSnapshot.of(link)
            self._active_on_link.setdefault(link.name, []).append(event)
            self._recompose(link)
        for node in nodes:
            self._crash_refcount[node.name] = self._crash_refcount.get(node.name, 0) + 1
            node.down = True
        self.activated += 1
        self._active.append(event)
        self.timeline.append((self.sim.now, event, "start"))
        if event.duration is not None:
            self.sim.schedule(event.duration, self._expire, event)

    def _expire(self, event: FaultEvent) -> None:
        links, nodes = self._resolve_targets(event)
        for link in links:
            active = self._active_on_link.get(link.name, [])
            if event in active:
                active.remove(event)
            if active:
                self._recompose(link)
            else:
                # Last fault on this link: restore *all* fields verbatim.
                self._snapshots.pop(link.name).restore(link)
                self._active_on_link.pop(link.name, None)
        for node in nodes:
            count = self._crash_refcount.get(node.name, 1) - 1
            if count <= 0:
                self._crash_refcount.pop(node.name, None)
                node.down = False
            else:
                self._crash_refcount[node.name] = count
        self.expired += 1
        if event in self._active:
            self._active.remove(event)
        self.timeline.append((self.sim.now, event, "end"))

    def _recompose(self, link: Link) -> None:
        base = self._snapshots[link.name]
        survive = 1.0 - base.loss
        rate = base.rate_bps
        delay = base.delay
        jitter = base.jitter
        for event in self._active_on_link[link.name]:
            survive *= 1.0 - event.loss
            rate *= event.rate_factor
            delay += event.extra_delay
            jitter += event.extra_jitter
        link.loss = 1.0 - survive
        link.rate_bps = max(rate, 1.0)
        link.delay = delay
        link.jitter = jitter

    # ------------------------------------------------------------------
    # Introspection helpers for tests and metrics.
    # ------------------------------------------------------------------
    def active_faults(self) -> List[FaultEvent]:
        """Events currently applied, in activation order."""
        return list(self._active)

    def outage_windows(self) -> List[Tuple[float, Optional[float]]]:
        """(start, end) ground-truth windows of every injected event;
        ``end`` is None for unexpired/permanent faults."""
        starts: Dict[int, float] = {}
        windows: List[Tuple[float, Optional[float]]] = []
        for t, e, phase in self.timeline:
            if phase == "start":
                starts[id(e)] = t
            else:
                windows.append((starts.pop(id(e)), t))
        windows.extend((t, None) for t in starts.values())
        return sorted(windows)
