"""Discrete-event network simulation substrate.

Everything in the reproduction runs on top of this package: an event
engine (:mod:`~repro.simnet.engine`), packets, links with configurable
rate/delay/jitter/loss, pluggable queue disciplines (DropTail, CoDel,
FQ-CoDel), hosts and routers with static shortest-path routing, traffic
generators, and per-flow tracing.
"""

from repro.simnet.engine import Event, Simulator
from repro.simnet.packet import Packet
from repro.simnet.queues import CoDelQueue, DropTailQueue, FQCoDelQueue, QueueDiscipline
from repro.simnet.link import Link, DuplexLink, VariableRateLink
from repro.simnet.replay import TraceReplayLink, commute_trace
from repro.simnet.node import Host, Node, Router
from repro.simnet.network import Network
from repro.simnet.faults import FaultEvent, FaultInjector, FaultPlan
from repro.simnet.flows import BulkSource, CBRSource, OnOffSource, PacketSink, PoissonSource
from repro.simnet.trace import FlowStats, PacketTracer
from repro.simnet.monitor import LinkMonitor, QueueMonitor

__all__ = [
    "Event",
    "Simulator",
    "Packet",
    "QueueDiscipline",
    "DropTailQueue",
    "CoDelQueue",
    "FQCoDelQueue",
    "Link",
    "DuplexLink",
    "VariableRateLink",
    "TraceReplayLink",
    "commute_trace",
    "Node",
    "Host",
    "Router",
    "Network",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "BulkSource",
    "PacketSink",
    "FlowStats",
    "PacketTracer",
    "LinkMonitor",
    "QueueMonitor",
]
