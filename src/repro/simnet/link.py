"""Links: unidirectional transmission pipes with a queue, a rate, a
propagation delay, optional jitter and random loss.

A :class:`Link` models the classic store-and-forward pipeline: packets
wait in a queue discipline, serialize at ``rate_bps``, then propagate
for ``delay + jitter`` seconds.  :class:`DuplexLink` bundles two
opposite links (possibly asymmetric — the situation of Section IV-D).
:class:`VariableRateLink` adds the abrupt throughput changes observed on
real wireless access networks (Section IV-A) via an AR(1) rate process.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue, QueueDiscipline

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.node import Node


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Parameters
    ----------
    sim:
        Owning simulator.
    src, dst:
        Endpoint nodes.  The link registers itself as an egress
        interface on ``src``.
    rate_bps:
        Serialization rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    jitter:
        If non-zero, a uniform random extra delay in ``[0, jitter]`` is
        added per packet.  Reordering is prevented by clamping delivery
        to be no earlier than the previous delivery.
    loss:
        Independent per-packet drop probability applied on the wire
        (after serialization).
    queue:
        Queue discipline instance; defaults to a 100-packet DropTail.
    """

    # Hot attributes are slot-backed; "__dict__" stays in the list so
    # subclasses and tests may still attach ad-hoc attributes (the dict
    # is only materialised when actually used).
    __slots__ = (
        "sim", "src", "dst", "rate_bps", "delay", "jitter", "loss", "queue",
        "name", "_rng", "_busy", "_last_delivery", "_finish_cb", "_deliver_cb",
        "bytes_sent", "bytes_delivered", "bytes_lost", "packets_delivered",
        "packets_lost", "__dict__",
    )

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        rate_bps: float,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        queue: Optional[QueueDiscipline] = None,
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.delay = delay
        self.jitter = jitter
        self.loss = loss
        self.queue = queue if queue is not None else DropTailQueue()
        self.name = name or f"{src.name}->{dst.name}"
        self._rng = sim.child_rng(f"link:{self.name}")
        self._busy = False
        self._last_delivery = 0.0
        # Pre-bound callbacks: the hot path schedules these once per
        # packet, so avoid re-creating bound-method objects each time.
        self._finish_cb = self._finish_transmission
        self._deliver_cb = self._deliver
        # Statistics.  ``bytes_sent - bytes_delivered - bytes_lost`` is
        # the in-flight byte count; wire drops land in ``bytes_lost`` /
        # ``packets_lost`` while queue drops are counted by the queue
        # discipline (surfaced via :attr:`queue_drops`).
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.bytes_lost = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        src.add_interface(self)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; returns False if the queue dropped it."""
        accepted = self.queue.enqueue(packet, self.sim.now)
        if accepted and not self._busy:
            self._start_transmission()
        return accepted

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = packet.bits / self.rate_bps
        self.bytes_sent += packet.size
        self.sim.schedule(tx_time, self._finish_cb, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if self._rng.random() < self.loss:
            self.packets_lost += 1
            self.bytes_lost += packet.size
        else:
            extra = self._rng.uniform(0.0, self.jitter) if self.jitter > 0 else 0.0
            arrival = self.sim.now + self.delay + extra
            # Never reorder: delivery is monotone along one link.
            arrival = max(arrival, self._last_delivery)
            self._last_delivery = arrival
            self.sim.schedule_at(arrival, self._deliver_cb, packet)
        self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        packet.hops += 1
        self.bytes_delivered += packet.size
        self.packets_delivered += 1
        self.dst.receive(packet, via=self)

    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Packets currently queued (not counting the one in flight)."""
        return len(self.queue)

    @property
    def queue_drops(self) -> int:
        """Packets the queue discipline refused or AQM-dropped."""
        return self.queue.drops

    @property
    def bytes_in_flight(self) -> int:
        """Bytes serialized but neither delivered nor lost on the wire."""
        return self.bytes_sent - self.bytes_delivered - self.bytes_lost

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.bytes_sent * 8) / (self.rate_bps * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.rate_bps / 1e6:.1f}Mb/s {self.delay * 1e3:.1f}ms>"


class VariableRateLink(Link):
    """A link whose rate follows a clamped AR(1) process.

    Every ``update_interval`` seconds the rate moves toward
    ``mean_rate_bps`` with relaxation ``alpha`` plus lognormal noise of
    scale ``sigma``, clamped to ``[min_rate_bps, max_rate_bps]``.  This
    captures the "abrupt changes of several orders of magnitude"
    reported for HSPA+/LTE in Section IV-A without modeling PHY detail.
    """

    __slots__ = (
        "mean_rate_bps", "min_rate_bps", "max_rate_bps", "sigma", "alpha",
        "update_interval", "rate_history",
    )

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        mean_rate_bps: float,
        min_rate_bps: float,
        max_rate_bps: float,
        sigma: float = 0.3,
        alpha: float = 0.5,
        update_interval: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(sim, src, dst, rate_bps=mean_rate_bps, **kwargs)
        if not min_rate_bps <= mean_rate_bps <= max_rate_bps:
            raise ValueError("need min <= mean <= max rate")
        self.mean_rate_bps = mean_rate_bps
        self.min_rate_bps = min_rate_bps
        self.max_rate_bps = max_rate_bps
        self.sigma = sigma
        self.alpha = alpha
        self.update_interval = update_interval
        self.rate_history: list = [(0.0, mean_rate_bps)]
        sim.schedule(update_interval, self._update_rate)

    def _update_rate(self) -> None:
        noise = self._rng.lognormvariate(0.0, self.sigma)
        proposal = self.rate_bps * (1 - self.alpha) + self.mean_rate_bps * self.alpha
        proposal *= noise
        self.rate_bps = min(self.max_rate_bps, max(self.min_rate_bps, proposal))
        self.rate_history.append((self.sim.now, self.rate_bps))
        self.sim.schedule(self.update_interval, self._update_rate)


class DuplexLink:
    """Two opposite unidirectional links, possibly asymmetric.

    ``DuplexLink`` is the natural model for access links: Section IV-D
    stresses that most access links are asymmetric (down:up ratios of
    2.5–8) while MAR traffic is upload-heavy.
    """

    __slots__ = ("down", "up")

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        rate_down_bps: float,
        rate_up_bps: Optional[float] = None,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        queue_down: Optional[QueueDiscipline] = None,
        queue_up: Optional[QueueDiscipline] = None,
        name: str = "",
    ) -> None:
        rate_up_bps = rate_up_bps if rate_up_bps is not None else rate_down_bps
        base = name or f"{a.name}<->{b.name}"
        # "down" carries traffic toward ``b`` (the client side by
        # convention), "up" carries traffic from ``b`` toward ``a``.
        self.down = Link(
            sim, a, b, rate_down_bps, delay, jitter, loss, queue_down, name=f"{base}:down"
        )
        self.up = Link(sim, b, a, rate_up_bps, delay, jitter, loss, queue_up, name=f"{base}:up")

    @property
    def asymmetry_ratio(self) -> float:
        """Down:up rate ratio (>1 means download-favoured)."""
        return self.down.rate_bps / self.up.rate_bps
