"""Topology container: builds nodes, links and routing tables.

:class:`Network` is a convenience layer over the raw node/link objects:
it tracks every node and link, computes static shortest-path routes
(delay-weighted, via networkx), and offers path inspection helpers used
by benchmarks (minimum RTT, bottleneck rate).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.simnet.engine import Simulator
from repro.simnet.link import DuplexLink, Link
from repro.simnet.node import Host, Node, Router
from repro.simnet.queues import QueueDiscipline


class Network:
    """A collection of nodes and links over one simulator."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        return self._register(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        return self._register(Router(self.sim, name))

    def _register(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def __getitem__(self, name: str) -> Node:
        return self.nodes[name]

    def add_link(
        self,
        a: str,
        b: str,
        rate_bps: float,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        queue: Optional[QueueDiscipline] = None,
    ) -> Link:
        """Add one unidirectional link from ``a`` to ``b``."""
        link = Link(self.sim, self.nodes[a], self.nodes[b], rate_bps, delay, jitter, loss, queue)
        self.links.append(link)
        return link

    def add_duplex(
        self,
        a: str,
        b: str,
        rate_down_bps: float,
        rate_up_bps: Optional[float] = None,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        queue_down: Optional[QueueDiscipline] = None,
        queue_up: Optional[QueueDiscipline] = None,
    ) -> DuplexLink:
        """Add a duplex (possibly asymmetric) link between ``a`` and ``b``.

        "Down" carries ``a``→``b`` traffic, "up" carries ``b``→``a``.
        """
        duplex = DuplexLink(
            self.sim,
            self.nodes[a],
            self.nodes[b],
            rate_down_bps,
            rate_up_bps,
            delay,
            jitter,
            loss,
            queue_down,
            queue_up,
        )
        self.links.extend([duplex.down, duplex.up])
        return duplex

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        """Directed graph of the topology, edges weighted by delay."""
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        for link in self.links:
            # Serialization of one MTU gives a tiny rate-aware tiebreak.
            weight = link.delay + (1514 * 8) / link.rate_bps
            g.add_edge(link.src.name, link.dst.name, weight=weight, link=link)
        return g

    def build_routes(self) -> None:
        """Fill every node's routing table with delay-weighted shortest paths."""
        g = self.graph()
        paths = dict(nx.all_pairs_dijkstra_path(g, weight="weight"))
        for src_name, by_dst in paths.items():
            node = self.nodes[src_name]
            for dst_name, path in by_dst.items():
                if dst_name == src_name or len(path) < 2:
                    continue
                first_hop = g.edges[path[0], path[1]]["link"]
                node.add_route(dst_name, first_hop)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def path_links(self, a: str, b: str) -> List[Link]:
        """The links on the current route from ``a`` to ``b``."""
        g = self.graph()
        path = nx.dijkstra_path(g, a, b, weight="weight")
        return [g.edges[u, v]["link"] for u, v in zip(path, path[1:])]

    def base_rtt(self, a: str, b: str, packet_size: int = 1514) -> float:
        """Unloaded round-trip time between two nodes.

        Sums propagation plus one serialization of ``packet_size`` per
        hop in both directions — the floor any transport can observe.
        """
        total = 0.0
        for link in self.path_links(a, b) + self.path_links(b, a):
            total += link.delay + (packet_size * 8) / link.rate_bps
        return total

    def bottleneck_rate(self, a: str, b: str) -> float:
        """Minimum link rate along the ``a``→``b`` path, in bits/s."""
        return min(link.rate_bps for link in self.path_links(a, b))
