"""Measurement helpers: per-flow statistics and packet tracing.

:class:`FlowStats` accumulates receive-side samples (one per packet) and
derives the quantities the paper's figures plot: throughput over time,
one-way delay percentiles, jitter.  :class:`PacketTracer` records raw
events for debugging and fine-grained assertions in tests.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.simnet.packet import Packet


@dataclass
class _Sample:
    time: float
    size: int
    delay: float
    flow: str


class FlowStats:
    """Receive-side per-flow accounting."""

    def __init__(self) -> None:
        self.samples: List[_Sample] = []
        self.bytes_total = 0
        self.packets_total = 0
        self._time_index: List[float] = []

    def record(self, packet: Packet, now: float) -> None:
        self.samples.append(_Sample(now, packet.size, packet.age(now), packet.flow))
        self._time_index.append(now)
        self.bytes_total += packet.size
        self.packets_total += 1

    # ------------------------------------------------------------------
    def _times(self) -> List[float]:
        return self._time_index

    def bytes_between(self, t0: float, t1: float, flow: Optional[str] = None) -> int:
        lo = bisect_left(self._times(), t0)
        hi = bisect_right(self._times(), t1)
        window = self.samples[lo:hi]
        if flow is not None:
            window = [s for s in window if s.flow == flow]
        return sum(s.size for s in window)

    def throughput_bps(self, t0: float, t1: float, flow: Optional[str] = None) -> float:
        """Average goodput in bits/s over the half-open window ``(t0, t1]``."""
        if t1 <= t0:
            return 0.0
        return self.bytes_between(t0, t1, flow) * 8 / (t1 - t0)

    def throughput_timeseries(
        self, bin_size: float, until: Optional[float] = None, flow: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """(bin_start, bits/s) pairs covering the observation window."""
        if not self.samples:
            return []
        end = until if until is not None else self.samples[-1].time
        series = []
        t = 0.0
        while t < end:
            series.append((t, self.throughput_bps(t, t + bin_size, flow)))
            t += bin_size
        return series

    def delays(self, flow: Optional[str] = None) -> List[float]:
        return [s.delay for s in self.samples if flow is None or s.flow == flow]

    def delay_percentile(self, q: float, flow: Optional[str] = None) -> float:
        """q-th percentile (0-100) of one-way delay; 0.0 if no samples."""
        data = sorted(self.delays(flow))
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(pos)
        frac = pos - lo
        hi = min(lo + 1, len(data) - 1)
        return data[lo] * (1 - frac) + data[hi] * frac

    def mean_delay(self, flow: Optional[str] = None) -> float:
        data = self.delays(flow)
        return sum(data) / len(data) if data else 0.0

    def jitter(self, flow: Optional[str] = None) -> float:
        """Mean absolute delta between consecutive delay samples (RFC 3550 flavour)."""
        data = self.delays(flow)
        if len(data) < 2:
            return 0.0
        deltas = [abs(b - a) for a, b in zip(data, data[1:])]
        return sum(deltas) / len(deltas)

    def flows_seen(self) -> List[str]:
        return sorted({s.flow for s in self.samples})


class PacketTracer:
    """Raw event log: (time, event, packet uid, detail).

    Attach to links/nodes manually in tests where packet-level ordering
    matters; not used on hot paths by default.
    """

    def __init__(self) -> None:
        self.events: List[Tuple[float, str, int, str]] = []

    def log(self, time: float, event: str, packet: Packet, detail: str = "") -> None:
        self.events.append((time, event, packet.uid, detail))

    def of_kind(self, event: str) -> List[Tuple[float, str, int, str]]:
        return [e for e in self.events if e[1] == event]

    def __len__(self) -> int:
        return len(self.events)
