"""Nodes: hosts and routers.

A :class:`Node` owns egress interfaces (links) and a static routing
table mapping destination node names to one of those links.  Hosts
additionally demultiplex packets addressed to them to bound transport
protocols by destination port.  Routing tables are normally filled by
:meth:`repro.simnet.network.Network.build_routes`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, TYPE_CHECKING

from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.link import Link


class PacketHandler(Protocol):
    """Anything that can consume packets delivered to a host port."""

    def on_packet(self, packet: Packet) -> None: ...


class Node:
    """Base network node with interfaces and a static routing table."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: List["Link"] = []
        self.routes: Dict[str, "Link"] = {}
        self.packets_forwarded = 0
        self.packets_received = 0
        self.packets_unroutable = 0
        #: Crashed nodes (see :mod:`repro.simnet.faults`) drop every
        #: packet delivered or offered for forwarding until restart.
        self.down = False
        self.packets_dropped_down = 0

    def add_interface(self, link: "Link") -> None:
        self.interfaces.append(link)

    def add_route(self, dst: str, link: "Link") -> None:
        if link.src is not self:
            raise ValueError(f"route via a link that does not start at {self.name}")
        self.routes[dst] = link

    def route_for(self, dst: str) -> Optional["Link"]:
        return self.routes.get(dst)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet toward its destination."""
        if self.down:
            self.packets_dropped_down += 1
            return False
        if packet.created_at == 0.0:
            packet.created_at = self.sim.now
        return self._forward(packet)

    def _forward(self, packet: Packet) -> bool:
        link = self.route_for(packet.dst)
        if link is None:
            self.packets_unroutable += 1
            return False
        return link.send(packet)

    def receive(self, packet: Packet, via: Optional["Link"] = None) -> None:
        """Called by an ingress link when a packet arrives."""
        if self.down:
            self.packets_dropped_down += 1
            return
        if packet.dst == self.name:
            self.packets_received += 1
            self._deliver_local(packet)
        else:
            self.packets_forwarded += 1
            self._forward(packet)

    def _deliver_local(self, packet: Packet) -> None:
        raise NotImplementedError(f"{type(self).__name__} cannot terminate packets")


class Router(Node):
    """A pure forwarding node; delivering to it locally is an error."""

    def _deliver_local(self, packet: Packet) -> None:
        raise RuntimeError(f"packet addressed to router {self.name}: {packet!r}")


class Host(Node):
    """An end host: binds transport protocols on ports.

    Packets addressed to an unbound port go to ``default_handler`` when
    set, and are counted in :attr:`packets_dropped_no_port` otherwise.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._ports: Dict[int, PacketHandler] = {}
        self.default_handler: Optional[Callable[[Packet], None]] = None
        self.packets_dropped_no_port = 0

    def bind(self, port: int, handler: PacketHandler) -> None:
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def is_bound(self, port: int) -> bool:
        return port in self._ports

    def _deliver_local(self, packet: Packet) -> None:
        handler = self._ports.get(packet.dst_port)
        if handler is not None:
            handler.on_packet(packet)
        elif self.default_handler is not None:
            self.default_handler(packet)
        else:
            self.packets_dropped_no_port += 1
