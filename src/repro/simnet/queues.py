"""Queue disciplines for link buffers.

Section VI-H of the paper singles out oversized uplink buffers (~1000
packets) as a major latency source and suggests latency queuing /
FQ-CoDel.  Three disciplines are provided:

- :class:`DropTailQueue` — FIFO, drops at a fixed capacity.  Configured
  with ~1000 packets this reproduces the bufferbloat of Figures 3/4.
- :class:`CoDelQueue` — the Controlled Delay AQM (Nichols/Jacobson):
  drops when the minimum sojourn time stays above ``target`` for an
  ``interval``, with a square-root control law.
- :class:`FQCoDelQueue` — flow-queuing CoDel: deficit-round-robin over
  hashed flow buckets, each with its own CoDel state, and a new-flow
  priority list (the scheme of RFC 8290, simplified).
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

from repro.simnet.packet import Packet


class QueueDiscipline:
    """Interface every queue discipline implements.

    ``enqueue`` returns ``True`` when the packet was accepted and
    ``False`` when it was dropped; ``dequeue`` returns the next packet
    to transmit (or ``None`` when empty).  Implementations must count
    drops in :attr:`drops` and track :attr:`byte_count`.
    """

    def __init__(self) -> None:
        self.drops = 0
        self.byte_count = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def backlog_bytes(self) -> int:
        return self.byte_count


class DropTailQueue(QueueDiscipline):
    """Plain FIFO with a packet-count capacity."""

    def __init__(self, capacity: int = 100) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._q: Deque[Packet] = deque()

    def enqueue(self, packet: Packet, now: float) -> bool:
        if len(self._q) >= self.capacity:
            self.drops += 1
            return False
        packet.enqueued_at = now
        self._q.append(packet)
        self.byte_count += packet.size
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._q:
            return None
        packet = self._q.popleft()
        self.byte_count -= packet.size
        return packet

    def __len__(self) -> int:
        return len(self._q)


class _CoDelState:
    """CoDel control-law state shared by CoDel and FQ-CoDel buckets."""

    def __init__(self, target: float, interval: float) -> None:
        self.target = target
        self.interval = interval
        self.first_above_time = 0.0
        self.drop_next = 0.0
        self.count = 0
        self.dropping = False

    def control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(self.count)

    def should_drop(self, sojourn: float, now: float, backlog_bytes: int) -> bool:
        """One step of the CoDel 'ok to drop' decision for a dequeue."""
        if sojourn < self.target or backlog_bytes <= 1500:
            # Below target (or nearly-empty queue): leave dropping state.
            self.first_above_time = 0.0
            if self.dropping:
                self.dropping = False
            return False
        if self.first_above_time == 0.0:
            self.first_above_time = now + self.interval
            return False
        if self.dropping:
            if now >= self.drop_next:
                self.count += 1
                self.drop_next = self.control_law(self.drop_next)
                return True
            return False
        if now >= self.first_above_time:
            self.dropping = True
            # Start close to the last drop rate for persistent congestion.
            self.count = max(1, self.count - 2) if self.count > 2 else 1
            self.drop_next = self.control_law(now)
            return True
        return False


class CoDelQueue(QueueDiscipline):
    """Controlled-Delay active queue management.

    Parameters follow the RFC 8289 defaults: ``target`` 5 ms sojourn,
    ``interval`` 100 ms.  A hard ``capacity`` bounds memory.
    """

    def __init__(self, target: float = 0.005, interval: float = 0.1, capacity: int = 1000) -> None:
        super().__init__()
        self.capacity = capacity
        self._q: Deque[Packet] = deque()
        self._state = _CoDelState(target, interval)

    def enqueue(self, packet: Packet, now: float) -> bool:
        if len(self._q) >= self.capacity:
            self.drops += 1
            return False
        packet.enqueued_at = now
        self._q.append(packet)
        self.byte_count += packet.size
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._q:
            packet = self._q.popleft()
            self.byte_count -= packet.size
            sojourn = now - packet.enqueued_at
            if self._state.should_drop(sojourn, now, self.byte_count):
                self.drops += 1
                continue
            return packet
        return None

    def __len__(self) -> int:
        return len(self._q)


class _FlowBucket:
    """One FQ-CoDel flow queue with its own CoDel state."""

    def __init__(self, target: float, interval: float) -> None:
        self.q: Deque[Packet] = deque()
        self.state = _CoDelState(target, interval)
        self.deficit = 0
        self.bytes = 0


class FQCoDelQueue(QueueDiscipline):
    """Flow-queuing CoDel (RFC 8290, simplified).

    Packets hash by their ``flow`` label into ``n_buckets`` buckets.
    New (recently idle) flows get one quantum of priority service, which
    is what protects a thin latency-critical MAR flow from a bulk upload
    sharing the uplink.
    """

    def __init__(
        self,
        target: float = 0.005,
        interval: float = 0.1,
        capacity: int = 1000,
        quantum: int = 1514,
        n_buckets: int = 1024,
    ) -> None:
        super().__init__()
        self.capacity = capacity
        self.quantum = quantum
        self.n_buckets = n_buckets
        self.target = target
        self.interval = interval
        self._buckets: Dict[int, _FlowBucket] = {}
        self._new_flows: "OrderedDict[int, None]" = OrderedDict()
        self._old_flows: "OrderedDict[int, None]" = OrderedDict()
        self._len = 0

    def _bucket_for(self, packet: Packet) -> Tuple[int, _FlowBucket]:
        idx = hash(packet.flow) % self.n_buckets
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = _FlowBucket(self.target, self.interval)
            self._buckets[idx] = bucket
        return idx, bucket

    def _drop_from_fattest(self) -> None:
        """At capacity, drop from the head of the largest bucket."""
        fattest = max(self._buckets.values(), key=lambda b: b.bytes, default=None)
        if fattest is None or not fattest.q:
            return
        victim = fattest.q.popleft()
        fattest.bytes -= victim.size
        self.byte_count -= victim.size
        self._len -= 1
        self.drops += 1

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self._len >= self.capacity:
            self._drop_from_fattest()
            if self._len >= self.capacity:
                self.drops += 1
                return False
        idx, bucket = self._bucket_for(packet)
        packet.enqueued_at = now
        was_empty = not bucket.q
        bucket.q.append(packet)
        bucket.bytes += packet.size
        self.byte_count += packet.size
        self._len += 1
        if was_empty and idx not in self._new_flows and idx not in self._old_flows:
            bucket.deficit = self.quantum
            self._new_flows[idx] = None
        return True

    def _next_flow(self) -> Optional[int]:
        if self._new_flows:
            return next(iter(self._new_flows))
        if self._old_flows:
            return next(iter(self._old_flows))
        return None

    def _rotate(self, idx: int, from_new: bool) -> None:
        """Move a flow to the back of the old-flows list."""
        if from_new:
            self._new_flows.pop(idx, None)
        else:
            self._old_flows.pop(idx, None)
        self._old_flows[idx] = None

    def dequeue(self, now: float) -> Optional[Packet]:
        while True:
            idx = self._next_flow()
            if idx is None:
                return None
            from_new = idx in self._new_flows
            bucket = self._buckets[idx]
            if not bucket.q:
                # Empty flow leaves the schedule.
                self._new_flows.pop(idx, None)
                self._old_flows.pop(idx, None)
                continue
            if bucket.deficit <= 0:
                bucket.deficit += self.quantum
                self._rotate(idx, from_new)
                continue
            packet = bucket.q.popleft()
            bucket.bytes -= packet.size
            self.byte_count -= packet.size
            self._len -= 1
            sojourn = now - packet.enqueued_at
            if bucket.state.should_drop(sojourn, now, bucket.bytes):
                self.drops += 1
                continue
            bucket.deficit -= packet.size
            return packet

    def __len__(self) -> int:
        return self._len
