"""Packet model.

Packets carry an addressing 4-tuple (src/dst node name and port), a size
in bytes, a ``kind`` tag used by transports (``"data"``, ``"ack"``,
``"feedback"`` ...), and an opaque ``payload`` mapping for protocol
headers.  The simulator never serializes payloads; ``size`` alone
determines transmission time, so protocols must account for their own
header overhead in ``size``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

_packet_ids = itertools.count(1)

#: Conventional per-packet header overhead (IP + UDP), in bytes.
IP_UDP_HEADER = 28

#: Conventional per-packet header overhead (IP + TCP), in bytes.
IP_TCP_HEADER = 40


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    src, dst:
        Node names of the endpoints.
    src_port, dst_port:
        Transport demultiplexing ports.
    size:
        Wire size in bytes (including any header overhead the sending
        transport accounts for).
    kind:
        Free-form tag consumed by transports ("data", "ack", ...).
    flow:
        Flow label used by FQ-CoDel hashing and tracing.
    payload:
        Protocol headers / application data (never serialized).
    created_at:
        Simulation time at which the packet entered the network.
    hops:
        Number of links traversed so far.
    """

    src: str
    dst: str
    size: int
    src_port: int = 0
    dst_port: int = 0
    kind: str = "data"
    flow: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    enqueued_at: float = 0.0
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    ecn: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        if not self.flow:
            self.flow = f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port}"

    @property
    def bits(self) -> int:
        """Wire size in bits."""
        return self.size * 8

    def age(self, now: float) -> float:
        """Seconds since the packet was created."""
        return now - self.created_at

    def copy(self, **overrides: Any) -> "Packet":
        """Duplicate the packet (fresh uid), optionally overriding fields.

        Used by multipath duplication and FEC; the payload mapping is
        shallow-copied so header edits on the clone do not leak back.
        """
        fields: Dict[str, Any] = dict(
            src=self.src,
            dst=self.dst,
            size=self.size,
            src_port=self.src_port,
            dst_port=self.dst_port,
            kind=self.kind,
            flow=self.flow,
            payload=dict(self.payload),
            created_at=self.created_at,
            ecn=self.ecn,
        )
        fields.update(overrides)
        return Packet(**fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet #{self.uid} {self.kind} {self.src}:{self.src_port}->"
            f"{self.dst}:{self.dst_port} {self.size}B>"
        )


def reset_packet_ids() -> None:
    """Restart the global packet id counter (test isolation helper)."""
    global _packet_ids
    _packet_ids = itertools.count(1)
