"""Application-level traffic generators and sinks.

These run directly over the packet layer (no transport) and are used to
load links in benchmarks: constant-bit-rate streams (sensor data),
Poisson streams (web-like cross traffic), on/off bursts, and a greedy
bulk source that keeps a target backlog of packets in flight.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.node import Host
from repro.simnet.packet import Packet
from repro.simnet.trace import FlowStats


class PacketSink:
    """Terminates packets on a host port and records per-flow statistics.

    When ``echo_port`` is set, every received data packet triggers a
    small reply packet back to the sender — enough to measure RTT
    without a full transport.
    """

    def __init__(self, host: Host, port: int, echo_port: Optional[int] = None,
                 echo_size: int = 64) -> None:
        self.host = host
        self.port = port
        self.echo_port = echo_port
        self.echo_size = echo_size
        self.stats = FlowStats()
        host.bind(port, self)

    def on_packet(self, packet: Packet) -> None:
        self.stats.record(packet, self.host.sim.now)
        if self.echo_port is not None:
            reply = Packet(
                src=self.host.name,
                dst=packet.src,
                size=self.echo_size,
                src_port=self.port,
                dst_port=self.echo_port,
                kind="echo",
                payload={"echo_of": packet.uid, "orig_created": packet.created_at},
            )
            self.host.send(reply)


class _SourceBase:
    """Shared machinery for timed sources."""

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        packet_size: int = 1200,
        src_port: int = 0,
        start: float = 0.0,
        stop: Optional[float] = None,
        flow: str = "",
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.dst = dst
        self.dst_port = dst_port
        self.src_port = src_port
        self.packet_size = packet_size
        self.start = start
        self.stop = stop
        self.flow = flow
        self.packets_sent = 0
        self.bytes_sent = 0
        self.sim.schedule_at(max(start, self.sim.now), self._tick)

    def _emit(self, size: Optional[int] = None) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            size=size or self.packet_size,
            src_port=self.src_port,
            dst_port=self.dst_port,
            flow=self.flow or "",
        )
        self.host.send(packet)
        self.packets_sent += 1
        self.bytes_sent += packet.size

    def _active(self) -> bool:
        return self.stop is None or self.sim.now < self.stop

    def _tick(self) -> None:
        raise NotImplementedError


class CBRSource(_SourceBase):
    """Constant-bit-rate source: one packet every ``size*8/rate`` seconds."""

    def __init__(self, host: Host, dst: str, dst_port: int, rate_bps: float, **kwargs) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = rate_bps
        super().__init__(host, dst, dst_port, **kwargs)

    @property
    def interval(self) -> float:
        return (self.packet_size * 8) / self.rate_bps

    def _tick(self) -> None:
        if not self._active():
            return
        self._emit()
        self.sim.schedule(self.interval, self._tick)


class PoissonSource(_SourceBase):
    """Poisson packet arrivals at ``rate_pps`` packets per second."""

    def __init__(self, host: Host, dst: str, dst_port: int, rate_pps: float, **kwargs) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.rate_pps = rate_pps
        super().__init__(host, dst, dst_port, **kwargs)
        self._rng = self.sim.child_rng(f"poisson:{host.name}:{dst}:{dst_port}")

    def _tick(self) -> None:
        if not self._active():
            return
        self._emit()
        self.sim.schedule(self._rng.expovariate(self.rate_pps), self._tick)


class OnOffSource(_SourceBase):
    """Exponential on/off bursts; transmits at ``peak_rate_bps`` while on."""

    def __init__(
        self,
        host: Host,
        dst: str,
        dst_port: int,
        peak_rate_bps: float,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        **kwargs,
    ) -> None:
        self.peak_rate_bps = peak_rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._on_until = 0.0
        super().__init__(host, dst, dst_port, **kwargs)
        self._rng = self.sim.child_rng(f"onoff:{host.name}:{dst}:{dst_port}")

    def _tick(self) -> None:
        if not self._active():
            return
        if self.sim.now >= self._on_until:
            # Burst finished: sleep an off period, then start a new burst.
            off = self._rng.expovariate(1.0 / self.mean_off)
            self._on_until = self.sim.now + off + self._rng.expovariate(1.0 / self.mean_on)
            self.sim.schedule(off, self._tick)
            return
        self._emit()
        self.sim.schedule((self.packet_size * 8) / self.peak_rate_bps, self._tick)


class BulkSource(_SourceBase):
    """Greedy source that keeps ``window`` packets in flight.

    A crude stand-in for a bulk transfer when full TCP dynamics are not
    needed: the sink must echo (``PacketSink(echo_port=...)``) and each
    echo releases the next packet.
    """

    def __init__(self, host: Host, dst: str, dst_port: int, window: int = 10,
                 total_packets: Optional[int] = None, **kwargs) -> None:
        self.window = window
        self.total_packets = total_packets
        self.acked = 0
        super().__init__(host, dst, dst_port, **kwargs)
        if self.src_port:
            host.bind(self.src_port, self)

    def _tick(self) -> None:
        for _ in range(self.window):
            if self._done_sending():
                break
            self._emit()

    def _done_sending(self) -> bool:
        return self.total_packets is not None and self.packets_sent >= self.total_packets

    def on_packet(self, packet: Packet) -> None:
        """Echo receipt: slide the window by one."""
        self.acked += 1
        if not self._done_sending() and self._active():
            self._emit()

    @property
    def complete(self) -> bool:
        return self.total_packets is not None and self.acked >= self.total_packets
