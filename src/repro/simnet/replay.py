"""Trace-driven link replay.

Real access networks don't follow tidy stochastic processes — the paper
repeatedly leans on *measured* behaviour ("abrupt changes of several
orders of magnitude").  :class:`TraceReplayLink` replays a recorded
``(time, rate_bps)`` trace onto a link, and :func:`commute_trace`
synthesizes the canonical stress case: an LTE link through a bus
commute — stops (good signal), drives (fading), a tunnel (outage).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.simnet.engine import Simulator
from repro.simnet.link import Link

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.node import Node

RatePoint = Tuple[float, float]


class TraceReplayLink(Link):
    """A link whose rate follows a recorded trace.

    ``trace`` is a list of ``(time, rate_bps)`` breakpoints, sorted by
    time; the rate holds between breakpoints and the trace loops with
    period ``loop_at`` (default: the last breakpoint's time) so long
    simulations keep replaying the recording.  A rate of 0 models an
    outage: the link serializes at a tiny floor rate so queued packets
    survive until coverage returns (they drain when the rate recovers).
    """

    OUTAGE_FLOOR_BPS = 100.0

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        trace: Sequence[RatePoint],
        loop_at: Optional[float] = None,
        **kwargs,
    ) -> None:
        if not trace:
            raise ValueError("trace must not be empty")
        times = [t for t, _ in trace]
        if times != sorted(times):
            raise ValueError("trace must be time-sorted")
        if any(r < 0 for _, r in trace):
            raise ValueError("rates must be non-negative")
        self.trace = list(trace)
        self.loop_at = loop_at if loop_at is not None else max(times[-1], 1e-9)
        first_rate = self._rate_at(0.0)
        super().__init__(sim, src, dst, rate_bps=max(first_rate, self.OUTAGE_FLOOR_BPS),
                         **kwargs)
        self.rate_history: List[RatePoint] = [(0.0, self.rate_bps)]
        self._schedule_next_change()

    # ------------------------------------------------------------------
    def _rate_at(self, now: float) -> float:
        t = now % self.loop_at
        idx = bisect_right([p for p, _ in self.trace], t) - 1
        idx = max(idx, 0)
        return self.trace[idx][1]

    def _next_change_delay(self, now: float) -> float:
        t = now % self.loop_at
        times = [p for p, _ in self.trace]
        idx = bisect_right(times, t)
        if idx < len(times):
            return times[idx] - t
        return self.loop_at - t  # wrap to the loop start

    def _schedule_next_change(self) -> None:
        delay = max(self._next_change_delay(self.sim.now), 1e-6)
        self.sim.schedule(delay, self._apply_change)

    def _apply_change(self) -> None:
        rate = self._rate_at(self.sim.now)
        self.rate_bps = max(rate, self.OUTAGE_FLOOR_BPS)
        self.rate_history.append((self.sim.now, self.rate_bps))
        # Coverage returned: restart service on whatever queued up.
        if not self.in_outage and not self._busy:
            self._start_transmission()
        self._schedule_next_change()

    def _start_transmission(self) -> None:
        # During an outage nothing serializes — packets wait in the
        # queue; a transmission started at the floor rate would occupy
        # the link long past recovery.
        if self.in_outage:
            self._busy = False
            return
        super()._start_transmission()

    @property
    def in_outage(self) -> bool:
        return self._rate_at(self.sim.now) <= 0.0


def commute_trace(
    good_bps: float = 15e6,
    driving_bps: float = 4e6,
    tunnel_seconds: float = 8.0,
    segment_seconds: float = 20.0,
) -> List[RatePoint]:
    """A synthetic bus-commute LTE trace: stop → drive → tunnel → drive.

    One loop: good signal at a stop, degraded while moving, a total
    outage in a tunnel, then recovery — the pattern that makes naive
    congestion control oscillate and motivates MARTP's delay-based
    budget plus graceful degradation.
    """
    t0 = 0.0
    t1 = t0 + segment_seconds              # stop (good)
    t2 = t1 + segment_seconds              # driving (degraded)
    t3 = t2 + tunnel_seconds               # tunnel (outage)
    t4 = t3 + segment_seconds              # driving again
    return [
        (t0, good_bps),
        (t1, driving_bps),
        (t2, 0.0),
        (t3, driving_bps),
        (t4, good_bps),
    ]
