"""Periodic instrumentation: queue occupancy and link utilization.

Benchmarks mostly measure end-to-end observables; when a result needs
explaining ("where did the latency come from?"), these monitors sample
the inside of the network on a fixed tick:

- :class:`QueueMonitor` — samples a queue's depth (packets and bytes),
  yielding occupancy time series and peak/mean statistics — the direct
  view of bufferbloat.
- :class:`LinkMonitor` — samples a link's cumulative counters into
  per-interval throughput and utilization series.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.queues import QueueDiscipline


class QueueMonitor:
    """Samples a queue's occupancy every ``interval`` seconds."""

    def __init__(self, sim: Simulator, queue: QueueDiscipline,
                 interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.queue = queue
        self.interval = interval
        self.samples: List[Tuple[float, int, int]] = []   # (t, pkts, bytes)
        sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        self.samples.append((self.sim.now, len(self.queue), self.queue.backlog_bytes))
        self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def peak_packets(self) -> int:
        return max((p for _, p, _ in self.samples), default=0)

    def mean_packets(self) -> float:
        if not self.samples:
            return 0.0
        return sum(p for _, p, _ in self.samples) / len(self.samples)

    def mean_queuing_delay(self, drain_rate_bps: float) -> float:
        """Average queueing delay implied by occupancy at a drain rate."""
        if not self.samples or drain_rate_bps <= 0:
            return 0.0
        mean_bytes = sum(b for _, _, b in self.samples) / len(self.samples)
        return mean_bytes * 8 / drain_rate_bps

    def occupancy_series(self) -> List[Tuple[float, int]]:
        return [(t, p) for t, p, _ in self.samples]


class LinkMonitor:
    """Derives per-interval throughput/utilization from a link's counters."""

    def __init__(self, sim: Simulator, link: Link, interval: float = 0.5) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.samples: List[Tuple[float, float, float]] = []  # (t, bps, util)
        self._last_bytes = link.bytes_sent
        sim.schedule(interval, self._tick)

    def _tick(self) -> None:
        delta = self.link.bytes_sent - self._last_bytes
        self._last_bytes = self.link.bytes_sent
        bps = delta * 8 / self.interval
        utilization = min(1.0, bps / self.link.rate_bps) if self.link.rate_bps else 0.0
        self.samples.append((self.sim.now, bps, utilization))
        self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(u for _, _, u in self.samples) / len(self.samples)

    def peak_throughput_bps(self) -> float:
        return max((bps for _, bps, _ in self.samples), default=0.0)

    def throughput_series(self) -> List[Tuple[float, float]]:
        return [(t, bps) for t, bps, _ in self.samples]
