"""Periodic instrumentation: queue occupancy and link utilization.

Benchmarks mostly measure end-to-end observables; when a result needs
explaining ("where did the latency come from?"), these monitors sample
the inside of the network on a fixed tick:

- :class:`QueueMonitor` — samples a queue's depth (packets and bytes),
  yielding occupancy time series and peak/mean statistics — the direct
  view of bufferbloat.
- :class:`LinkMonitor` — samples a link's cumulative counters into
  per-interval throughput and utilization series.

Both monitors are bounded: pass ``horizon`` to stop ticking at a known
scenario end, or call :meth:`stop` — without one of these a monitor
would keep the event heap non-empty forever, so ``sim.run()`` with no
``until`` would never drain.  Samples can additionally feed a
:class:`~repro.obs.registry.MetricsRegistry` (``registry=``), putting
queue depth and link utilization on the same mergeable export path as
every other metric.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.queues import QueueDiscipline


class QueueMonitor:
    """Samples a queue's occupancy every ``interval`` seconds.

    Parameters
    ----------
    horizon:
        If given, the last tick at or before this sim time is the final
        one — the monitor then stops rescheduling and lets the heap
        drain.
    registry:
        Optional metrics registry; each tick also feeds
        ``queue.<name>.packets`` (histogram) and ``queue.<name>.bytes``
        (gauge).
    name:
        Instrument-name component when ``registry`` is used.
    """

    def __init__(self, sim: Simulator, queue: QueueDiscipline,
                 interval: float = 0.05, horizon: Optional[float] = None,
                 registry=None, name: str = "queue") -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.queue = queue
        self.interval = interval
        self.horizon = horizon
        self.name = name
        self.samples: List[Tuple[float, int, int]] = []   # (t, pkts, bytes)
        self._stopped = False
        self._hist = None
        self._gauge = None
        if registry is not None:
            self._hist = registry.histogram(f"queue.{name}.packets",
                                            0.0, 256.0, 256)
            self._gauge = registry.gauge(f"queue.{name}.bytes")
        sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        """Stop sampling; the pending tick becomes a no-op."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        pkts = len(self.queue)
        nbytes = self.queue.backlog_bytes
        self.samples.append((self.sim.now, pkts, nbytes))
        if self._hist is not None:
            self._hist.observe(float(pkts))
            self._gauge.set(float(nbytes))
        if self.horizon is not None and self.sim.now + self.interval > self.horizon:
            return
        self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def peak_packets(self) -> int:
        return max((p for _, p, _ in self.samples), default=0)

    def mean_packets(self) -> float:
        if not self.samples:
            return 0.0
        return sum(p for _, p, _ in self.samples) / len(self.samples)

    def mean_queuing_delay(self, drain_rate_bps: float) -> float:
        """Average queueing delay implied by occupancy at a drain rate."""
        if not self.samples or drain_rate_bps <= 0:
            return 0.0
        mean_bytes = sum(b for _, _, b in self.samples) / len(self.samples)
        return mean_bytes * 8 / drain_rate_bps

    def occupancy_series(self) -> List[Tuple[float, int]]:
        return [(t, p) for t, p, _ in self.samples]


class LinkMonitor:
    """Derives per-interval throughput/utilization from a link's counters.

    Accepts the same ``horizon``/``registry`` bounds as
    :class:`QueueMonitor`; registry ticks feed
    ``link.<name>.utilization`` (histogram) and
    ``link.<name>.throughput_bps`` (gauge).
    """

    def __init__(self, sim: Simulator, link: Link, interval: float = 0.5,
                 horizon: Optional[float] = None, registry=None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.horizon = horizon
        self.samples: List[Tuple[float, float, float]] = []  # (t, bps, util)
        self._last_bytes = link.bytes_sent
        self._stopped = False
        self._hist = None
        self._gauge = None
        if registry is not None:
            self._hist = registry.histogram(f"link.{link.name}.utilization",
                                            0.0, 1.0, 100)
            self._gauge = registry.gauge(f"link.{link.name}.throughput_bps")
        sim.schedule(interval, self._tick)

    def stop(self) -> None:
        """Stop sampling; the pending tick becomes a no-op."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        delta = self.link.bytes_sent - self._last_bytes
        self._last_bytes = self.link.bytes_sent
        bps = delta * 8 / self.interval
        utilization = min(1.0, bps / self.link.rate_bps) if self.link.rate_bps else 0.0
        self.samples.append((self.sim.now, bps, utilization))
        if self._hist is not None:
            self._hist.observe(utilization)
            self._gauge.set(bps)
        if self.horizon is not None and self.sim.now + self.interval > self.horizon:
            return
        self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(u for _, _, u in self.samples) / len(self.samples)

    def peak_throughput_bps(self) -> float:
        return max((bps for _, bps, _ in self.samples), default=0.0)

    def throughput_series(self) -> List[Tuple[float, float]]:
        return [(t, bps) for t, bps, _ in self.samples]
