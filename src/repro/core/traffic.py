"""Traffic classes and priorities (Section VI-A).

The paper defines three baseline traffic classes:

1. *Full best effort* — latency beats reliability; new data supersedes
   loss recovery (most uplink sensor data).
2. *Best effort with loss recovery* — latency-sensitive but worth
   recovering (video reference frames).
3. *Critical* — reliable in-order delivery beats latency (connection
   metadata).

and four priorities governing degradation under congestion:

1. *Highest* — never discarded nor delayed;
2. *Medium 1* — may be delayed, never discarded;
3. *Medium 2* — may be discarded, never delayed;
4. *Lowest* — first to go entirely.

:data:`MAR_BASELINE_STREAMS` instantiates the worked example of
Figure 4: connection metadata (critical/highest), sensor data (full
best effort/medium-1), video reference frames (loss recovery/highest),
video interframes (full best effort/lowest).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List


class TrafficClass(enum.Enum):
    """Reliability semantics of a stream (Section VI-A)."""

    FULL_BEST_EFFORT = "full-best-effort"
    LOSS_RECOVERY = "best-effort-loss-recovery"
    CRITICAL = "critical"

    @property
    def retransmits(self) -> bool:
        return self is not TrafficClass.FULL_BEST_EFFORT

    @property
    def ordered(self) -> bool:
        return self is TrafficClass.CRITICAL


class Priority(enum.IntEnum):
    """Degradation order; lower value = more important."""

    HIGHEST = 0
    MEDIUM_NO_DISCARD = 1   # "Medium priority 1": delay OK, discard never
    MEDIUM_NO_DELAY = 2     # "Medium priority 2": discard OK, delay never
    LOWEST = 3

    @property
    def may_discard(self) -> bool:
        return self in (Priority.MEDIUM_NO_DELAY, Priority.LOWEST)

    @property
    def may_delay(self) -> bool:
        return self in (Priority.MEDIUM_NO_DISCARD, Priority.LOWEST)


@dataclass(frozen=True)
class StreamSpec:
    """Declaration of one application stream.

    ``nominal_rate_bps`` is what the stream offers at full quality;
    ``min_rate_bps`` is the floor below which the stream is useless
    (the degradation controller never allocates between 0 and the
    floor — it either drops the stream or gives it at least the floor);
    ``adjustable`` marks streams whose rate the application can scale
    continuously (video quality, sensor sampling), the "adjustable
    variables" of Figure 4.
    """

    stream_id: int
    name: str
    traffic_class: TrafficClass
    priority: Priority
    nominal_rate_bps: float
    min_rate_bps: float = 0.0
    message_bytes: int = 1200
    adjustable: bool = False
    deadline: float = 0.075
    fec: bool = False
    fec_group: int = 8

    def __post_init__(self) -> None:
        if self.min_rate_bps > self.nominal_rate_bps:
            raise ValueError("min_rate_bps cannot exceed nominal_rate_bps")


@dataclass
class Message:
    """One application data unit submitted to MARTP."""

    stream_id: int
    seq: int
    size: int
    created_at: float
    deadline: float
    is_retransmit: bool = False
    fec_parity: bool = False

    def expired(self, now: float) -> bool:
        return now > self.created_at + self.deadline


def mar_baseline_streams(
    video_nominal_bps: float = 8e6,
    ref_frame_bps: float = 1.2e6,
    sensor_bps: float = 40_000.0,
    metadata_bps: float = 16_000.0,
    deadline: float = 0.075,
) -> List[StreamSpec]:
    """The four-stream worked example of Section VI-B / Figure 4."""
    return [
        StreamSpec(
            stream_id=0,
            name="connection-metadata",
            traffic_class=TrafficClass.CRITICAL,
            priority=Priority.HIGHEST,
            nominal_rate_bps=metadata_bps,
            min_rate_bps=metadata_bps,
            message_bytes=200,
            deadline=1.0,
        ),
        StreamSpec(
            stream_id=1,
            name="sensor-data",
            traffic_class=TrafficClass.FULL_BEST_EFFORT,
            priority=Priority.MEDIUM_NO_DISCARD,
            nominal_rate_bps=sensor_bps,
            min_rate_bps=sensor_bps * 0.1,
            message_bytes=120,
            adjustable=True,
            deadline=deadline,
        ),
        StreamSpec(
            stream_id=2,
            name="video-reference-frames",
            traffic_class=TrafficClass.LOSS_RECOVERY,
            priority=Priority.HIGHEST,
            nominal_rate_bps=ref_frame_bps,
            min_rate_bps=ref_frame_bps * 0.3,
            message_bytes=1200,
            deadline=deadline,
            fec=True,
        ),
        StreamSpec(
            stream_id=3,
            name="video-interframes",
            traffic_class=TrafficClass.FULL_BEST_EFFORT,
            priority=Priority.LOWEST,
            nominal_rate_bps=video_nominal_bps,
            min_rate_bps=0.0,
            message_bytes=1200,
            adjustable=True,
            deadline=deadline,
        ),
    ]


#: Default instantiation of the Figure 4 stream set.
MAR_BASELINE_STREAMS: List[StreamSpec] = mar_baseline_streams()
