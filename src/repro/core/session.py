"""Offloading sessions: MAR applications running over MARTP on
simulated networks, plus builders for the paper's scenario topologies.

:class:`ScenarioBuilder` constructs the networks behind Table II and
Figure 5:

- ``single_path`` — one access link client↔server with a configurable
  RTT (the four Table II rows);
- ``multipath`` — a client with WiFi *and* LTE attachment, optionally
  to two different servers (Figure 5a);
- ``d2d_assist`` — a wearable offloading latency-critical work to a
  nearby companion device over WiFi-Direct/LTE-Direct while bulk work
  goes to a cloud server (Figures 5b–d).

:class:`OffloadSession` runs an MAR application's stream set (video
reference/inter frames, sensors, metadata) through a
:class:`~repro.core.protocol.MartpSender`/`Receiver` pair on one of
those topologies and produces a :class:`~repro.core.metrics.QoeReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.congestion import RateController
from repro.core.metrics import QoeReport, class_report
from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
from repro.core.scheduler import MultipathPolicy, PathState
from repro.core.traffic import StreamSpec, mar_baseline_streams
from repro.mar.video import VideoSource
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.udp import UdpSocket

MARTP_PORT = 7000


@dataclass
class Scenario:
    """A built topology ready to host a session."""

    sim: Simulator
    net: Network
    client_hosts: List[str]          # one per path, in path order
    path_names: List[str]
    server: str
    metered: Dict[str, bool] = field(default_factory=dict)
    #: failover candidates behind ``server``, best first (edge churn
    #: scenarios; empty for the classic single-server topologies)
    backup_servers: List[str] = field(default_factory=list)

    @property
    def all_servers(self) -> List[str]:
        """Primary then backups — the preference order for failover."""
        return [self.server] + self.backup_servers

    def path_endpoints(self, streams_port: int = MARTP_PORT,
                       base_port: int = 6000) -> List[PathEndpoint]:
        endpoints = []
        for i, (host, name) in enumerate(zip(self.client_hosts, self.path_names)):
            socket = UdpSocket(self.net[host], base_port + i)
            state = PathState(name=name, is_metered=self.metered.get(name, False))
            endpoints.append(
                PathEndpoint(state=state, socket=socket, dst=self.server,
                             dst_port=streams_port)
            )
        return endpoints


class ScenarioBuilder:
    """Factory for the paper's evaluation topologies."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ------------------------------------------------------------------
    def single_path(
        self,
        rtt: float,
        down_bps: float = 100e6,
        up_bps: float = 50e6,
        loss: float = 0.0,
        jitter: float = 0.0,
        uplink_buffer: int = 1000,
        path_name: str = "wifi",
        metered: bool = False,
    ) -> Scenario:
        """One access link; ``rtt`` is the unloaded round trip."""
        sim = Simulator(seed=self.seed)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex(
            "server",
            "client",
            rate_down_bps=down_bps,
            rate_up_bps=up_bps,
            delay=rtt / 2,
            jitter=jitter / 2,
            loss=loss,
            queue_up=DropTailQueue(uplink_buffer),
        )
        net.build_routes()
        return Scenario(
            sim=sim,
            net=net,
            client_hosts=["client"],
            path_names=[path_name],
            server="server",
            metered={path_name: metered},
        )

    # ------------------------------------------------------------------
    def multipath(
        self,
        wifi_rtt: float = 0.030,
        lte_rtt: float = 0.070,
        wifi_down_bps: float = 40e6,
        wifi_up_bps: float = 15e6,
        lte_down_bps: float = 20e6,
        lte_up_bps: float = 8e6,
        wifi_loss: float = 0.0,
        lte_loss: float = 0.0,
        two_servers: bool = False,
        interlink_rtt: float = 0.020,
    ) -> Scenario:
        """WiFi + LTE attachment (Figure 5a).

        The client has one virtual interface host per path so simnet
        routes diverge.  With ``two_servers`` the WiFi path terminates
        at an edge server and the LTE path at a cloud server that are
        interconnected (n-way synchronization link).
        """
        sim = Simulator(seed=self.seed)
        net = Network(sim)
        net.add_host("client-wifi")
        net.add_host("client-lte")
        net.add_router("ap")
        net.add_router("enb")
        server = "server"
        net.add_host(server)
        # Access legs.
        net.add_duplex("ap", "client-wifi", wifi_down_bps, wifi_up_bps,
                       delay=wifi_rtt / 4, loss=wifi_loss,
                       queue_up=DropTailQueue(1000))
        net.add_duplex("enb", "client-lte", lte_down_bps, lte_up_bps,
                       delay=lte_rtt / 4, loss=lte_loss,
                       queue_up=DropTailQueue(1000))
        if two_servers:
            net.add_host("edge-server")
            net.add_duplex("server", "enb", 1e9, 1e9, delay=lte_rtt / 4)
            net.add_duplex("edge-server", "ap", 1e9, 1e9, delay=wifi_rtt / 4)
            net.add_duplex("server", "edge-server", 1e9, 1e9, delay=interlink_rtt / 2)
        else:
            net.add_duplex("server", "ap", 1e9, 1e9, delay=wifi_rtt / 4)
            net.add_duplex("server", "enb", 1e9, 1e9, delay=lte_rtt / 4)
        net.build_routes()
        return Scenario(
            sim=sim,
            net=net,
            client_hosts=["client-wifi", "client-lte"],
            path_names=["wifi", "lte"],
            server=server,
            metered={"wifi": False, "lte": True},
        )

    # ------------------------------------------------------------------
    def edge_failover(
        self,
        radio_rtt: float = 0.010,
        radio_down_bps: float = 60e6,
        radio_up_bps: float = 20e6,
        radio_loss: float = 0.0,
        backhaul_rtts: Tuple[float, ...] = (0.002, 0.008),
        cloud_backhaul_rtt: Optional[float] = 0.050,
        uplink_buffer: int = 1000,
    ) -> Scenario:
        """A client behind one radio link with several offload targets.

        The access network fans out to a chain of edge servers (one per
        entry of ``backhaul_rtts``, nearest first; a server's total RTT
        is ``radio_rtt`` plus its backhaul) and optionally a distant
        cloud server — the topology of the Section VI-B/VI-E churn
        story: edge servers come and go, the radio can black out, and a
        resilient executor must walk down the candidate list before
        giving up and running locally.
        """
        sim = Simulator(seed=self.seed)
        net = Network(sim)
        net.add_host("client")
        net.add_router("ap")
        net.add_duplex(
            "ap", "client",
            rate_down_bps=radio_down_bps,
            rate_up_bps=radio_up_bps,
            delay=radio_rtt / 2,
            loss=radio_loss,
            queue_up=DropTailQueue(uplink_buffer),
        )
        servers: List[str] = []
        for i, backhaul in enumerate(backhaul_rtts):
            name = f"edge{i}"
            net.add_host(name)
            net.add_duplex(name, "ap", 1e9, 1e9, delay=backhaul / 2)
            servers.append(name)
        if cloud_backhaul_rtt is not None:
            net.add_host("cloud")
            net.add_duplex("cloud", "ap", 1e9, 1e9, delay=cloud_backhaul_rtt / 2)
            servers.append("cloud")
        net.build_routes()
        return Scenario(
            sim=sim,
            net=net,
            client_hosts=["client"],
            path_names=["wifi"],
            server=servers[0],
            metered={"wifi": False},
            backup_servers=servers[1:],
        )

    # ------------------------------------------------------------------
    def d2d_assist(
        self,
        d2d_rtt: float = 0.006,
        d2d_rate_bps: float = 300e6,
        cloud_rtt: float = 0.060,
        cloud_down_bps: float = 50e6,
        cloud_up_bps: float = 10e6,
        d2d_loss: float = 0.005,
    ) -> Scenario:
        """A wearable with a nearby companion plus a cloud path (Fig 5b–d).

        Path "d2d" reaches the companion device; path "cloud" reaches
        the remote server through an access network.  The companion is
        modelled as the *server* of the latency-critical path; callers
        wanting both targets run two sessions.
        """
        sim = Simulator(seed=self.seed)
        net = Network(sim)
        net.add_host("wearable")
        net.add_host("companion")
        net.add_host("server")
        net.add_router("ap")
        net.add_duplex("companion", "wearable", d2d_rate_bps, d2d_rate_bps,
                       delay=d2d_rtt / 2, loss=d2d_loss)
        net.add_duplex("ap", "wearable", cloud_down_bps, cloud_up_bps,
                       delay=cloud_rtt / 4, queue_up=DropTailQueue(1000))
        net.add_duplex("server", "ap", 1e9, 1e9, delay=cloud_rtt / 4)
        net.build_routes()
        return Scenario(
            sim=sim,
            net=net,
            client_hosts=["wearable"],
            path_names=["d2d"],
            server="companion",
            metered={"d2d": False},
        )


class OffloadSession:
    """An MAR stream set running over MARTP on a scenario.

    The four baseline streams (metadata, sensors, reference frames,
    interframes) are wired as follows: metadata and sensors are
    rate-driven at their (allocated) rates; video frames follow a
    :class:`~repro.mar.video.VideoSource` GOP pattern, reference frames
    to the loss-recovery stream and interframes to the droppable
    stream, sized by the current allocation's quality factor (the
    application adapting its encoder).
    """

    def __init__(
        self,
        scenario: Scenario,
        streams: Optional[List[StreamSpec]] = None,
        policy: MultipathPolicy = MultipathPolicy.WIFI_PREFERRED,
        video: Optional[VideoSource] = None,
        controller: Optional[RateController] = None,
    ) -> None:
        self.scenario = scenario
        self.sim = scenario.sim
        self.streams = streams if streams is not None else mar_baseline_streams()
        self.video = video if video is not None else self._video_for_streams()
        self.receiver = MartpReceiver(
            scenario.net[scenario.server], MARTP_PORT, self.streams
        )
        self.sender = MartpSender(
            scenario.path_endpoints(), self.streams, policy=policy, controller=controller
        )
        self._video_frame_index = 0
        self._stopped = False
        self.quality_timeline: List[Tuple[float, float]] = []

    def _video_for_streams(self, fps: float = 30.0, gop: int = 15) -> VideoSource:
        """A video source whose offered rates match the declared streams.

        The reference stream (id 2) carries ``fps/gop`` I-frames per
        second; the interframe stream (id 3) carries the rest.  Frame
        sizes are derived so full-quality output equals each stream's
        nominal rate — the source actually *offers* what the streams
        declare, so congestion experiments exercise real contention.
        """
        ref_rate = next(s.nominal_rate_bps for s in self.streams if s.stream_id == 2)
        inter_rate = next(s.nominal_rate_bps for s in self.streams if s.stream_id == 3)
        refs_per_s = fps / gop
        inters_per_s = fps * (gop - 1) / gop
        return VideoSource(
            fps=fps,
            gop=gop,
            ref_bytes=max(1, int(ref_rate / 8 / refs_per_s)),
            inter_bytes=max(1, int(inter_rate / 8 / inters_per_s)),
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sender.start()
        # Metadata and sensor streams follow their allocations.
        self.sender.attach_rate_driver(0)
        self.sender.attach_rate_driver(1)
        self.sim.schedule(0.0, self._next_video_frame)

    def _next_video_frame(self) -> None:
        if self._stopped:
            return
        frame = self.video.frame(self._video_frame_index)
        self._video_frame_index += 1
        quality = self.sender.allocation.quality.get(3, 1.0)
        self.quality_timeline.append((self.sim.now, quality))
        if frame.is_reference:
            ref_quality = max(self.sender.allocation.quality.get(2, 1.0), 0.05)
            spec = next(s for s in self.streams if s.stream_id == 2)
            # An adaptive encoder also bounds the frame's *burst* size:
            # a frame whose transit time at the current budget exceeds
            # a third of its deadline can never arrive in time, so the
            # encoder shrinks it (quality for timeliness).
            burst_cap = int(self.sender.budget_bps * spec.deadline / 8 / 3)
            size = min(int(frame.size_bytes * ref_quality), max(burst_cap, 1200))
            self._submit_sized(2, size)
        elif quality > 0:
            self._submit_sized(3, max(1, int(frame.size_bytes * quality)))
        self.sim.schedule(1.0 / self.video.fps, self._next_video_frame)

    def _submit_sized(self, stream_id: int, total_bytes: int) -> None:
        """Submit a frame as MTU-sized messages."""
        spec = next(s for s in self.streams if s.stream_id == stream_id)
        remaining = max(1, total_bytes)
        while remaining > 0:
            chunk = min(spec.message_bytes, remaining)
            self.sender.submit(stream_id, chunk)
            remaining -= chunk

    # ------------------------------------------------------------------
    def run(self, duration: float, settle: float = 1.0) -> QoeReport:
        """Run ``duration`` seconds of traffic plus a drain period so
        in-flight data at the cutoff still counts as delivered."""
        self.start()
        self.sim.run(until=self.sim.now + duration)
        self._stopped = True
        self.sender.stop()
        self.sim.run(until=self.sim.now + settle)
        per_class = {
            s.stream_id: class_report(self.sender, self.receiver, s.stream_id,
                                      duration=duration)
            for s in self.streams
        }
        return QoeReport(
            per_class=per_class,
            video_quality_timeline=[q for _, q in self.quality_timeline],
            duration=duration,
        )
