"""Selective loss recovery and forward error correction (Section VI-C).

The paper's arithmetic: at 30 FPS with a 75 ms budget, a retransmission
is only affordable when the RTT is under ~37.5 ms — so recovery must be
*selective* (only classes worth it) and *deadline-aware* (never
retransmit data that would arrive dead).  Where ARQ can't fit, the
alternatives are redundancy: XOR FEC groups or duplication over a
second path (handled by the scheduler).

- :class:`ArqBuffer` — sender-side store of retransmittable messages
  with NACK-driven, deadline-checked retransmission.
- :class:`FecEncoder` / :class:`FecDecoder` — one XOR parity message
  per group of ``k``: any single loss inside a group is recoverable
  without a round trip, at ``1/k`` bandwidth overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.traffic import Message, StreamSpec, TrafficClass


class ArqBuffer:
    """Sender-side retransmission buffer for one stream.

    Messages are retained until acknowledged or expired.  For the
    loss-recovery class a NACK triggers retransmission only when the
    message can still arrive before its deadline (``now + rtt_estimate
    <= created + deadline``) — late video is worthless.  For the
    CRITICAL class the deadline governs only in-time *accounting*:
    critical data "should never be discarded", so retransmission
    persists through arbitrarily long outages (bounded by
    ``max_retries`` per message).
    """

    def __init__(self, spec: StreamSpec, max_retries: int = 3) -> None:
        self.spec = spec
        self.max_retries = (
            max_retries if spec.traffic_class is not TrafficClass.CRITICAL
            else max(max_retries, 16)
        )
        self.enforce_deadline = spec.traffic_class is not TrafficClass.CRITICAL
        self._buffer: Dict[int, Message] = {}
        self._retries: Dict[int, int] = {}
        self.retransmissions = 0
        self.abandoned = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def store(self, message: Message) -> None:
        self._buffer[message.seq] = message
        self._retries.setdefault(message.seq, 0)

    def ack_through(self, cumulative_seq: int) -> None:
        """Acknowledge everything at or below ``cumulative_seq``."""
        for seq in [s for s in self._buffer if s <= cumulative_seq]:
            del self._buffer[seq]
            self._retries.pop(seq, None)

    def ack_one(self, seq: int) -> None:
        self._buffer.pop(seq, None)
        self._retries.pop(seq, None)

    def ack_window(self, highest: int, nacks: List[int]) -> None:
        """Implicitly acknowledge everything at or below ``highest`` that
        the receiver did not NACK (it was received, just not
        contiguously)."""
        missing = set(nacks)
        for seq in [s for s in self._buffer if s <= highest and s not in missing]:
            self.ack_one(seq)

    def nack(self, seqs: List[int], now: float, rtt_estimate: float) -> List[Message]:
        """Messages to retransmit for the given NACKed sequence numbers."""
        out: List[Message] = []
        for seq in seqs:
            message = self._buffer.get(seq)
            if message is None:
                continue
            in_time = (not self.enforce_deadline
                       or now + rtt_estimate / 2 <= message.created_at + message.deadline)
            exhausted = self._retries[seq] >= self.max_retries
            if not in_time or exhausted:
                # Not worth it — "the protocol should ideally avoid
                # recovery from losses" that can't land in time.
                del self._buffer[seq]
                self._retries.pop(seq, None)
                self.abandoned += 1
                continue
            self._retries[seq] += 1
            self.retransmissions += 1
            out.append(
                Message(
                    stream_id=message.stream_id,
                    seq=message.seq,
                    size=message.size,
                    created_at=message.created_at,
                    deadline=message.deadline,
                    is_retransmit=True,
                )
            )
        return out

    def expire(self, now: float) -> int:
        """Drop expired messages; returns how many were abandoned.

        CRITICAL-class buffers never expire by deadline (acknowledgment
        is the only way out besides retry exhaustion)."""
        if not self.enforce_deadline:
            return 0
        dead = [s for s, m in self._buffer.items() if m.expired(now)]
        for seq in dead:
            del self._buffer[seq]
            self._retries.pop(seq, None)
        self.abandoned += len(dead)
        return len(dead)


class FecEncoder:
    """Groups a stream's messages and emits one XOR parity per group.

    The parity message's size is the max size in the group (XOR of
    padded payloads).  ``overhead_ratio`` reports the bandwidth cost.
    """

    def __init__(self, group_size: int = 8) -> None:
        if group_size < 2:
            raise ValueError("group_size must be >= 2")
        self.group_size = group_size
        self._current: List[Message] = []
        self.parities_emitted = 0
        self.data_bytes = 0
        self.parity_bytes = 0

    def push(self, message: Message) -> Optional[Message]:
        """Add a data message; returns a parity message on group close."""
        self._current.append(message)
        self.data_bytes += message.size
        if len(self._current) < self.group_size:
            return None
        group = self._current
        self._current = []
        size = max(m.size for m in group)
        first = group[0]
        parity = Message(
            stream_id=first.stream_id,
            seq=-(self.parities_emitted + 1),   # parity space is negative
            size=size,
            created_at=group[-1].created_at,
            deadline=first.deadline,
            fec_parity=True,
        )
        self.parities_emitted += 1
        self.parity_bytes += size
        return parity

    @property
    def overhead_ratio(self) -> float:
        if self.data_bytes == 0:
            return 0.0
        return self.parity_bytes / self.data_bytes

    def group_of(self, seq: int) -> int:
        return seq // self.group_size


class FecDecoder:
    """Receiver-side XOR recovery: one missing message per group.

    Tracks which data sequences of each group arrived; when a group's
    parity is present and exactly one data message is missing, that
    message is declared recovered.
    """

    def __init__(self, group_size: int = 8) -> None:
        self.group_size = group_size
        self._groups: Dict[int, Set[int]] = {}
        self._parity_seen: Set[int] = set()
        self.recovered: List[int] = []

    def on_data(self, seq: int) -> None:
        self._groups.setdefault(seq // self.group_size, set()).add(seq)

    def on_parity(self, parity_index: int) -> List[int]:
        """Process parity #i (covering group i); returns recovered seqs."""
        self._parity_seen.add(parity_index)
        return self._try_recover(parity_index)

    def _try_recover(self, group: int) -> List[int]:
        got = self._groups.get(group, set())
        expected = set(range(group * self.group_size, (group + 1) * self.group_size))
        missing = expected - got
        if len(missing) == 1 and group in self._parity_seen:
            seq = missing.pop()
            got.add(seq)
            self.recovered.append(seq)
            return [seq]
        return []
