"""Structured event logging for MARTP connections (qlog-style).

QUIC ships qlog so operators can see *why* a connection behaved the way
it did; MARTP gets the same: an :class:`EventLog` attached to a sender
records congestion decisions, allocation changes, shedding, ARQ and FEC
activity as typed events with timestamps, queryable after (or during)
a run and dumpable as JSON lines.

Attach with :func:`instrument_sender`; detach restores the original
methods.  The instrumentation wraps public seams (controller callbacks,
allocation rounds, dispatch) without modifying protocol code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

CATEGORIES = (
    "congestion",      # budget changes, congestion events
    "allocation",      # degradation rounds
    "shedding",        # messages dropped at the sender
    "recovery",        # ARQ retransmissions / abandonments
    "path",            # multipath usability / RTT changes
    "frame",           # per-frame span completions (repro.obs tracing)
    "metric",          # registry snapshots (repro.obs exporters)
    "meta",            # about the log itself (summaries, drop counts)
)


@dataclass(frozen=True)
class Event:
    time: float
    category: str
    name: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"time": self.time, "category": self.category,
             "name": self.name, "data": self.data},
            sort_keys=True,
        )


class EventLog:
    """An append-only, filterable event log."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0

    def emit(self, time: float, category: str, name: str, **data: Any) -> None:
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(Event(time, category, name, data))

    # ------------------------------------------------------------------
    def of(self, category: Optional[str] = None,
           name: Optional[str] = None) -> List[Event]:
        return [
            e for e in self.events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
        ]

    def between(self, t0: float, t1: float) -> List[Event]:
        return [e for e in self.events if t0 <= e.time < t1]

    def to_jsonl(self) -> str:
        """Event lines only (no trailer) — the raw record stream."""
        return "\n".join(e.to_json() for e in self.events)

    def summary(self) -> Dict[str, Any]:
        """Totals an operator needs before trusting the log.

        ``dropped > 0`` means the stream is *incomplete* — events past
        ``max_events`` were discarded — which silent exports would
        otherwise hide.
        """
        by_category: Dict[str, int] = {}
        for event in self.events:
            by_category[event.category] = by_category.get(event.category, 0) + 1
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "complete": self.dropped == 0,
            "by_category": dict(sorted(by_category.items())),
        }

    def to_json_lines(self) -> str:
        """Event lines plus a final ``meta``/``log-summary`` record.

        Unlike :meth:`to_jsonl`, the trailer surfaces the drop counter,
        so a truncated log is visibly truncated in its own export.
        """
        last_time = self.events[-1].time if self.events else 0.0
        trailer = Event(last_time, "meta", "log-summary", self.summary())
        lines = [e.to_json() for e in self.events]
        lines.append(trailer.to_json())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


def instrument_sender(sender, log: Optional[EventLog] = None) -> EventLog:
    """Wrap a :class:`~repro.core.protocol.MartpSender` with event logging.

    Records: every congestion decrease (with reason proxied by budget
    delta), every allocation round (budget + dropped streams), sender
    sheds, and ARQ retransmissions.  Returns the log.
    """
    log = log if log is not None else EventLog()
    sim = sender.sim

    # Congestion: wrap each controller's _decrease and _increase records
    # via the public trace by sampling on allocation rounds, plus direct
    # hooks on on_loss/on_rtt_sample outcomes.
    for name, controller in sender.controllers.items():
        original_decrease = controller._decrease

        def logged_decrease(now, reason, _orig=original_decrease,
                            _ctl=controller, _path=name):
            before = _ctl.budget_bps
            _orig(now, reason)
            if _ctl.budget_bps < before:
                log.emit(now, "congestion", "budget-decrease",
                         path=_path, reason=reason,
                         before=before, after=_ctl.budget_bps)

        controller._decrease = logged_decrease

    original_allocate = sender.degradation.allocate

    def logged_allocate(budget_bps, now=0.0):
        allocation = original_allocate(budget_bps, now)
        log.emit(now, "allocation", "round",
                 budget=budget_bps, dropped=list(allocation.dropped),
                 overcommitted=allocation.overcommitted)
        return allocation

    sender.degradation.allocate = logged_allocate

    original_offer = sender._offer

    def logged_offer(tx, message):
        before = tx.dropped
        result = original_offer(tx, message)
        if tx.dropped > before:
            log.emit(sim.now, "shedding", "message-shed",
                     stream=tx.spec.name, size=message.size)
        return result

    sender._offer = logged_offer

    for stream_id, tx in sender._tx.items():
        if tx.arq is None:
            continue
        original_nack = tx.arq.nack

        def logged_nack(seqs, now, rtt, _orig=original_nack, _tx=tx):
            out = _orig(seqs, now, rtt)
            for message in out:
                log.emit(now, "recovery", "retransmit",
                         stream=_tx.spec.name, seq=message.seq)
            return out

        tx.arq.nack = logged_nack

    return log
