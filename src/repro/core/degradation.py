"""Priority-ordered budget allocation — graceful degradation (VI-A/B).

Given the congestion controller's byte budget and the declared streams,
:class:`DegradationController` decides who sends what, reproducing the
three situations of Figure 4:

1. budget ≥ sum of nominal rates — everyone at full quality, the
   adjustable streams may even be scaled *up* to probe the link;
2. after a first congestion event — interframes and sensor data are
   reduced; metadata and reference frames untouched;
3. severe congestion — adjustable/droppable streams go to zero and, in
   the worst case, even highest-priority *adjustable* streams (the
   reference frames) are scaled down to their floor, but never below.

Allocation algorithm: streams are sorted by priority; each stream's
*floor* (min rate; for non-discardable streams the floor is a hard
guarantee) is funded first in priority order, then remaining budget
tops streams up toward nominal in priority order.  Droppable streams
whose floor cannot be funded are dropped entirely (allocation 0);
non-droppable streams always keep their floor even if the budget is
formally exceeded — the paper's "connection metadata should be
unaltered at all cost".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.traffic import StreamSpec


@dataclass
class Allocation:
    """Result of one allocation round."""

    rates_bps: Dict[int, float]
    quality: Dict[int, float]        # allocated / nominal, 0 when dropped
    dropped: List[int]
    budget_bps: float
    overcommitted: bool              # guaranteed floors exceeded the budget

    def rate(self, stream_id: int) -> float:
        return self.rates_bps.get(stream_id, 0.0)

    @property
    def total_bps(self) -> float:
        return sum(self.rates_bps.values())


class DegradationController:
    """Allocates a rate budget across prioritized streams."""

    def __init__(self, streams: List[StreamSpec]) -> None:
        if len({s.stream_id for s in streams}) != len(streams):
            raise ValueError("duplicate stream ids")
        self.streams = sorted(streams, key=lambda s: (s.priority, s.stream_id))
        self.history: List[Tuple[float, Allocation]] = []

    # ------------------------------------------------------------------
    def allocate(self, budget_bps: float, now: float = 0.0) -> Allocation:
        """One allocation round for the given budget.

        Allocation is strictly priority-major: a priority level is
        served *completely* (floors, then top-up to nominal) before any
        budget reaches the next level — under scarcity the lowest
        priorities are discarded first, never the other way around
        (Section VI-A's degradation order).  Within one level, floors
        are funded before top-ups, in stream-id order.
        """
        rates: Dict[int, float] = {spec.stream_id: 0.0 for spec in self.streams}
        dropped: List[int] = []
        remaining = budget_bps
        overcommitted = False

        levels = sorted({spec.priority for spec in self.streams})
        for level in levels:
            at_level = [s for s in self.streams if s.priority is level]
            # Floors first.
            for spec in at_level:
                floor = spec.min_rate_bps
                if floor <= 0:
                    continue
                if remaining >= floor:
                    rates[spec.stream_id] = floor
                    remaining -= floor
                elif spec.priority.may_discard:
                    dropped.append(spec.stream_id)
                else:
                    # Guaranteed stream: keep the floor anyway (paper:
                    # metadata "unaltered at all cost").  The budget is
                    # overcommitted; the congestion controller's floor
                    # normally prevents this.
                    rates[spec.stream_id] = floor
                    remaining = 0.0
                    overcommitted = True
            # Then top up toward nominal at this level, *proportionally*
            # to each stream's remaining demand — within one priority
            # level no stream outranks another (stream ids are labels,
            # not priorities).  Water-fill until demand or budget runs
            # out.
            active = [s for s in at_level if s.stream_id not in dropped]
            while remaining > 1e-9:
                wants = {
                    s.stream_id: s.nominal_rate_bps - rates[s.stream_id]
                    for s in active
                    if s.nominal_rate_bps - rates[s.stream_id] > 1e-9
                }
                total_want = sum(wants.values())
                if total_want <= 0:
                    break
                pool = min(remaining, total_want)
                for stream_id, want in wants.items():
                    grant = min(want, pool * want / total_want)
                    rates[stream_id] += grant
                    remaining -= grant
                if pool >= total_want:
                    break

        # Zero-floor streams that received nothing are dropped when the
        # budget ran dry before their level.
        for spec in self.streams:
            if rates[spec.stream_id] == 0.0 and spec.stream_id not in dropped:
                if spec.nominal_rate_bps > 0 and spec.priority.may_discard:
                    dropped.append(spec.stream_id)

        quality = {
            spec.stream_id: (
                rates[spec.stream_id] / spec.nominal_rate_bps
                if spec.nominal_rate_bps > 0
                else 1.0
            )
            for spec in self.streams
        }
        allocation = Allocation(
            rates_bps=rates,
            quality=quality,
            dropped=sorted(dropped),
            budget_bps=budget_bps,
            overcommitted=overcommitted,
        )
        self.history.append((now, allocation))
        return allocation

    # ------------------------------------------------------------------
    def guaranteed_floor_bps(self) -> float:
        """Sum of floors of non-discardable streams — the budget's hard
        minimum for a sane configuration."""
        return sum(
            s.min_rate_bps for s in self.streams if not s.priority.may_discard
        )

    def spec(self, stream_id: int) -> StreamSpec:
        for s in self.streams:
            if s.stream_id == stream_id:
                return s
        raise KeyError(stream_id)
