"""Resilience primitives: liveness detection, backoff, circuit breaking.

Section VI-B asks that an MAR application "function with degraded
performance even if no network connectivity is available".  The
building blocks here turn that guideline into mechanism:

- :class:`RttEstimator` — Jacobson/Karels smoothed RTT + variance, the
  basis for *RTT-adaptive* liveness timeouts (a 6 ms edge path and a
  90 ms cloud path must not share a fixed timer);
- :class:`HeartbeatMonitor` — periodic pings against one server with a
  healthy → suspect → failed miss counter; once failed it keeps
  probing on a decorrelated-jitter backoff schedule so a restarted
  server is re-detected without synchronized probe storms;
- :class:`DecorrelatedBackoff` — exponential backoff with decorrelated
  jitter (`sleep = min(cap, uniform(base, 3·prev))`), drawing from a
  simulator child RNG so runs stay deterministic;
- :class:`CircuitBreaker` — closed → open → half-open guard around the
  offload service as a whole: when every path is dead the executor
  trips to local-only degraded mode and periodically lets one probe
  frame through to test recovery;
- :class:`ResilienceMetrics` — raw event collection (mode transitions,
  detection delays, outage episodes, per-mode frame counts) that
  aggregates into a :class:`~repro.core.metrics.ResilienceReport`.

Everything takes the simulator clock explicitly; nothing here reads
wall time, so fault scenarios remain bit-reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.metrics import ResilienceReport
from repro.simnet.engine import Event, Simulator


class RttEstimator:
    """Smoothed RTT and variance (RFC 6298 constants).

    ``timeout()`` returns ``srtt + 4·rttvar`` clamped to
    ``[floor, cap]`` — the retransmission/liveness timer.  Before any
    sample the timer sits at ``initial``.
    """

    def __init__(self, initial: float = 0.2, floor: float = 0.02,
                 cap: float = 2.0) -> None:
        self.initial = initial
        self.floor = floor
        self.cap = cap
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.samples = 0

    def sample(self, rtt: float) -> None:
        if rtt < 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.samples += 1

    def timeout(self) -> float:
        if self.srtt is None:
            return self.initial
        return min(self.cap, max(self.floor, self.srtt + 4 * self.rttvar))


class DecorrelatedBackoff:
    """Exponential backoff with decorrelated jitter.

    Each call to :meth:`next` returns a delay in ``[base, cap]`` drawn
    as ``min(cap, uniform(base, 3·previous))`` — the schedule spreads
    retries instead of synchronizing them, while still growing
    geometrically in expectation.
    """

    def __init__(self, rng: random.Random, base: float = 0.1,
                 cap: float = 5.0) -> None:
        if base <= 0 or cap < base:
            raise ValueError("need 0 < base <= cap")
        self.rng = rng
        self.base = base
        self.cap = cap
        self._prev = base

    @classmethod
    def from_tag(cls, seed: int, tag: str, base: float = 0.1,
                 cap: float = 5.0) -> "DecorrelatedBackoff":
        """A backoff whose jitter stream is a pure function of
        ``(seed, tag)`` — the same derivation scheme as
        :meth:`Simulator.child_rng`, for users outside a simulator
        (e.g. the fleet campaign runner's retry schedule)."""
        return cls(random.Random(f"{seed}:{tag}"), base=base, cap=cap)

    def next(self) -> float:
        self._prev = min(self.cap, self.rng.uniform(self.base, self._prev * 3))
        return self._prev

    def reset(self) -> None:
        self._prev = self.base


class Liveness(enum.Enum):
    """Heartbeat verdict on one server/path."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED = "failed"


class HeartbeatMonitor:
    """Ping-based liveness detection for one server.

    A ping is sent every ``interval`` seconds; each ping gets an
    RTT-adaptive deadline (``rtt.timeout()``).  Unanswered pings bump a
    miss counter: one miss makes the server *suspect*, ``miss_threshold``
    consecutive misses declare it *failed*.  A failed server keeps
    being probed, but on the backoff schedule instead of every
    interval; any pong snaps the state back to healthy and resets the
    backoff.

    ``send_ping(target, token)`` must transmit a ping whose pong can be
    routed back to :meth:`on_pong` with the same token (the executor
    uses the send timestamp as token since the server echoes it).
    """

    def __init__(
        self,
        sim: Simulator,
        target: str,
        send_ping: Callable[[str, float], None],
        interval: float = 0.25,
        miss_threshold: int = 3,
        backoff: Optional[DecorrelatedBackoff] = None,
        on_state_change: Optional[Callable[[str, Liveness, Liveness], None]] = None,
        rtt: Optional[RttEstimator] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.sim = sim
        self.target = target
        self.send_ping = send_ping
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.backoff = backoff or DecorrelatedBackoff(
            sim.child_rng(f"heartbeat:{target}"), base=interval, cap=20 * interval
        )
        self.on_state_change = on_state_change
        self.rtt = rtt or RttEstimator()
        self.state = Liveness.HEALTHY
        self.misses = 0
        self.last_contact: Optional[float] = None
        self.pings_sent = 0
        self.pongs_received = 0
        #: time from last successful contact to each FAILED declaration
        self.detection_delays: List[float] = []
        self._outstanding: Dict[float, float] = {}
        self._check_events: Dict[float, "Event"] = {}
        self._started_at: Optional[float] = None
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started_at = self.sim.now
        self._tick()

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        token = self.sim.now
        self._outstanding[token] = token
        self.send_ping(self.target, token)
        self.pings_sent += 1
        # Keep a handle on the deadline so an answered ping cancels its
        # check instead of leaving a dead timer to fire as a no-op.
        self._check_events[token] = self.sim.schedule(self.rtt.timeout(), self._check, token)
        delay = (
            self.interval if self.state is not Liveness.FAILED
            else self.backoff.next()
        )
        self.sim.schedule(delay, self._tick)

    def _check(self, token: float) -> None:
        self._check_events.pop(token, None)
        if self._outstanding.pop(token, None) is None:
            return
        self.misses += 1
        if self.misses >= self.miss_threshold:
            self._transition(Liveness.FAILED)
        else:
            self._transition(Liveness.SUSPECT)

    def on_pong(self, token: float) -> None:
        sent = self._outstanding.pop(token, None)
        if sent is None:
            return
        check = self._check_events.pop(token, None)
        if check is not None:
            check.cancel()
        self.pongs_received += 1
        self.rtt.sample(self.sim.now - sent)
        self.misses = 0
        self.last_contact = self.sim.now
        self.backoff.reset()
        self._transition(Liveness.HEALTHY)

    def _transition(self, new: Liveness) -> None:
        if new is self.state:
            return
        old = self.state
        self.state = new
        if new is Liveness.FAILED:
            anchor = self.last_contact if self.last_contact is not None else self._started_at
            self.detection_delays.append(self.sim.now - (anchor or 0.0))
        if self.on_state_change is not None:
            self.on_state_change(self.target, old, new)


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state circuit breaker on the simulator clock.

    ``record_failure`` counts consecutive failures; at
    ``failure_threshold`` the breaker *opens* (requests denied).  After
    ``cooldown`` seconds :meth:`allow_request` lets exactly one probe
    through (*half-open*); a success closes the breaker, a failure
    re-opens it with the cooldown grown by ``cooldown_factor`` (capped)
    so a persistently dead service is probed ever more lazily.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        cooldown_factor: float = 2.0,
        cooldown_cap: float = 30.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.base_cooldown = cooldown
        self.cooldown_factor = cooldown_factor
        self.cooldown_cap = cooldown_cap
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.trips = 0
        self._cooldown = cooldown
        self._opened_at: Optional[float] = None

    # ------------------------------------------------------------------
    def record_failure(self) -> None:
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back off harder.
            self._cooldown = min(self.cooldown_cap, self._cooldown * self.cooldown_factor)
            self._open()
        elif self.state is BreakerState.CLOSED and self.failures >= self.failure_threshold:
            self._open()

    def record_success(self) -> None:
        self.failures = 0
        self._cooldown = self.base_cooldown
        self.state = BreakerState.CLOSED
        self._opened_at = None

    def trip(self) -> None:
        """Force the breaker open (e.g. no failover target left)."""
        if self.state is not BreakerState.OPEN:
            self._open()

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self._opened_at = self.clock()

    def allow_request(self) -> bool:
        """May a normal (or probe) request proceed right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self._opened_at is not None
            if self.clock() - self._opened_at >= self._cooldown:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        # HALF_OPEN: one probe is already in flight.
        return False

    @property
    def cooldown_remaining(self) -> float:
        if self.state is not BreakerState.OPEN or self._opened_at is None:
            return 0.0
        return max(0.0, self._cooldown - (self.clock() - self._opened_at))


class ServiceMode(enum.Enum):
    """The executor-level state machine (docs/PROTOCOL.md §8.3)."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED_OVER = "failed-over"
    DEGRADED_LOCAL = "degraded-local"
    PROBING = "probing"


@dataclass
class ResilienceMetrics:
    """Raw resilience events of one session, aggregated on demand.

    An *outage* runs from the moment the offload service is declared
    unavailable (active server failed, or breaker tripped) to the next
    successfully offloaded frame; its length is the time-to-recovery.
    """

    mode_timeline: List[Tuple[float, ServiceMode]] = field(default_factory=list)
    detection_delays: List[float] = field(default_factory=list)
    outages: List[Tuple[float, float]] = field(default_factory=list)
    failovers: int = 0
    breaker_trips: int = 0
    frames_offloaded: int = 0
    frames_degraded: int = 0
    frames_dropped: int = 0
    #: frames the *strategy* planned as local (not a degradation)
    frames_local_by_design: int = 0
    _outage_started: Optional[float] = None

    # ------------------------------------------------------------------
    def record_mode(self, now: float, mode: ServiceMode) -> None:
        if self.mode_timeline and self.mode_timeline[-1][1] is mode:
            return
        self.mode_timeline.append((now, mode))

    def outage_begin(self, now: float) -> None:
        if self._outage_started is None:
            self._outage_started = now

    def outage_end(self, now: float) -> None:
        if self._outage_started is not None:
            self.outages.append((self._outage_started, now))
            self._outage_started = None

    def close(self, now: float) -> None:
        """End-of-session: a still-open outage ends at the cutoff."""
        self.outage_end(now)

    # ------------------------------------------------------------------
    def mode_durations(self, duration: float) -> Dict[ServiceMode, float]:
        """Seconds spent in each mode over ``[0, duration]``."""
        out: Dict[ServiceMode, float] = {m: 0.0 for m in ServiceMode}
        if not self.mode_timeline:
            return out
        for (t0, mode), (t1, _) in zip(self.mode_timeline, self.mode_timeline[1:]):
            out[mode] += min(t1, duration) - min(t0, duration)
        last_t, last_mode = self.mode_timeline[-1]
        if duration > last_t:
            out[last_mode] += duration - last_t
        return out

    def report(self, duration: float) -> ResilienceReport:
        durations = self.mode_durations(duration)
        degraded_time = durations[ServiceMode.DEGRADED_LOCAL]
        total_frames = (self.frames_offloaded + self.frames_degraded
                        + self.frames_local_by_design + self.frames_dropped)
        recoveries = [end - start for start, end in self.outages]
        return ResilienceReport(
            duration=duration,
            detection_delays=list(self.detection_delays),
            recovery_times=recoveries,
            failovers=self.failovers,
            breaker_trips=self.breaker_trips,
            frames_offloaded=self.frames_offloaded,
            frames_degraded=self.frames_degraded,
            frames_dropped=self.frames_dropped,
            offload_available_time=max(0.0, duration - degraded_time),
            degraded_time=degraded_time,
            frames_total=total_frames,
        )
