"""The MARTP wire protocol: sender and receiver over UDP.

This module assembles the Section VI properties into a working
protocol:

- the application declares :class:`~repro.core.traffic.StreamSpec`
  streams and submits messages (or lets rate-driven stream drivers
  generate them);
- a pacing loop enforces per-stream token buckets whose rates come
  from :class:`~repro.core.degradation.DegradationController`, itself
  fed by :class:`~repro.core.congestion.RateController`;
- priority semantics are enforced at submission time: no-delay streams
  drop instead of queueing, no-discard streams queue instead of
  dropping, highest priority bypasses the bucket entirely;
- loss recovery per class via :class:`~repro.core.reliability.
  ArqBuffer` (NACK-driven, deadline-aware) and XOR FEC;
- multipath via :class:`~repro.core.scheduler.MultipathScheduler`,
  where each path is a separate (host, socket) pair so the simnet
  routes diverge;
- the receiver returns compact feedback every ``feedback_interval``:
  per-stream cumulative ACK + NACK list + counters, plus a timestamp
  echo per path for RTT estimation (the RTCP-inspired QoS channel).

Packets carry ~32 bytes of MARTP header (accounted in ``size``).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.congestion import RateController
from repro.core.degradation import Allocation, DegradationController
from repro.core.reliability import ArqBuffer, FecDecoder, FecEncoder
from repro.core.scheduler import MultipathPolicy, MultipathScheduler, PathState
from repro.core.traffic import Message, Priority, StreamSpec, TrafficClass  # noqa: F401
from repro.simnet.node import Host
from repro.simnet.packet import Packet
from repro.transport.udp import UdpSocket

MARTP_HEADER = 32
FEEDBACK_SIZE = 160
DEFAULT_TICK = 0.01
DEFAULT_FEEDBACK_INTERVAL = 0.05
NACK_WINDOW = 128

#: Sentinel for messages that have not yet been assigned a wire
#: sequence number (they get one at dispatch; FEC parity messages use
#: the small-negative space, so the sentinel sits far below it).
UNSEQUENCED = -(1 << 60)


def _clone_controller(prototype: RateController) -> RateController:
    """A fresh controller with the prototype's tuning parameters."""
    init_fields = {
        f.name: getattr(prototype, f.name)
        for f in dataclasses.fields(RateController)
        if f.init
    }
    return RateController(**init_fields)


@dataclass
class PathEndpoint:
    """One sending path: a socket on (usually) a per-path host."""

    state: PathState
    socket: UdpSocket
    dst: str
    dst_port: int


@dataclass
class _StreamTx:
    """Sender-side per-stream state."""

    spec: StreamSpec
    next_seq: int = 0
    tokens: float = 0.0
    backlog: Deque[Message] = field(default_factory=deque)
    arq: Optional[ArqBuffer] = None
    fec: Optional[FecEncoder] = None
    sent: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    gen_credit_bits: float = 0.0


class MartpSender:
    """The sending half of a MARTP connection."""

    def __init__(
        self,
        paths: List[PathEndpoint],
        streams: List[StreamSpec],
        policy: MultipathPolicy = MultipathPolicy.WIFI_PREFERRED,
        controller: Optional[RateController] = None,
        tick: float = DEFAULT_TICK,
    ) -> None:
        if not paths:
            raise ValueError("need at least one path")
        self.paths = paths
        self.sim = paths[0].socket.sim
        self.scheduler = MultipathScheduler([p.state for p in paths], policy)
        self.degradation = DegradationController(streams)
        # One rate controller per path: delay-gradient congestion
        # detection needs a per-path RTT baseline — a 70 ms LTE path is
        # not "congestion" relative to a 30 ms WiFi path.  The prototype
        # ``controller`` supplies the tuning; each path gets a clone.
        prototype = controller if controller is not None else RateController()
        self.controllers: Dict[str, RateController] = {
            p.state.name: _clone_controller(prototype) for p in paths
        }
        # The combined budget must always cover guaranteed floors.
        floor = self.degradation.guaranteed_floor_bps() * 1.2
        for ctl in self.controllers.values():
            ctl.min_bps = max(ctl.min_bps, floor / len(paths))
        self.tick = tick
        self._tx: Dict[int, _StreamTx] = {}
        for spec in streams:
            tx = _StreamTx(spec=spec)
            if spec.traffic_class.retransmits:
                tx.arq = ArqBuffer(spec)
            if spec.fec:
                tx.fec = FecEncoder(spec.fec_group)
            self._tx[spec.stream_id] = tx
        self.allocation: Allocation = self.degradation.allocate(self.budget_bps)
        self.allocation_trace: List[Tuple[float, Allocation]] = []
        self.rate_generators: Dict[int, bool] = {}
        self._util_bytes: Dict[str, int] = {p.state.name: 0 for p in paths}
        self._util_since: Dict[str, float] = {p.state.name: 0.0 for p in paths}
        self._last_feedback: Dict[str, float] = {p.state.name: 0.0 for p in paths}
        self.feedback_timeout = 0.5
        self._global_tokens: float = 24_000.0
        self._running = False
        for path in self.paths:
            path.socket.on_receive = self._on_packet

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._tick_loop)

    def stop(self) -> None:
        self._running = False

    def attach_rate_driver(self, stream_id: int) -> None:
        """Generate this stream's data at its *allocated* rate each tick.

        Models an adaptive application source (camera encoder, sensor
        sampler) that follows the QoS feedback — the "QoS informations
        are reported to the application, which can thus adapt" loop.
        """
        if stream_id not in self._tx:
            raise KeyError(stream_id)
        self.rate_generators[stream_id] = True

    def submit(self, stream_id: int, size: int) -> Optional[Message]:
        """Submit one application message; returns it (or None if shed).

        The wire sequence number is assigned at *dispatch* time (inside
        :meth:`_dispatch`), not here — a message shed before reaching
        the wire must not leave a hole the receiver would report as
        network loss.
        """
        tx = self._tx.get(stream_id)
        if tx is None:
            raise KeyError(f"unknown stream {stream_id}")
        message = Message(
            stream_id=stream_id,
            seq=UNSEQUENCED,
            size=size,
            created_at=self.sim.now,
            deadline=tx.spec.deadline,
        )
        return self._offer(tx, message)

    # ------------------------------------------------------------------
    # Pacing and shedding
    # ------------------------------------------------------------------
    def _offer(self, tx: _StreamTx, message: Message) -> Optional[Message]:
        spec = tx.spec
        if self.allocation.rate(spec.stream_id) <= 0 and spec.priority.may_discard:
            tx.dropped += 1
            return None
        cost = message.size * 8
        if spec.priority is Priority.HIGHEST:
            # Never discarded; "never delayed" means never shed behind
            # other traffic — but bursts are still paced against the
            # whole connection budget so a large reference frame cannot
            # spike the bottleneck queue and masquerade as congestion.
            if not tx.backlog and self._global_tokens >= cost:
                self._global_tokens -= cost
                self._dispatch(tx, message)
            else:
                # Queue behind earlier messages to preserve ordering.
                tx.backlog.append(message)
            return message
        if not tx.backlog and tx.tokens >= cost and self._global_tokens >= cost:
            tx.tokens -= cost
            self._global_tokens -= cost
            self._dispatch(tx, message)
            return message
        if spec.priority.may_delay:
            tx.backlog.append(message)
            return message
        # May not be delayed; may it be discarded?
        tx.dropped += 1
        return None

    def _tick_loop(self) -> None:
        if not self._running:
            return
        # Refill buckets from the current allocation.  The global
        # bucket's burst cap keeps any instantaneous burst below the
        # congestion controller's delay threshold worth of queue.
        now = self.sim.now
        # Dead-path detection: data flowing, no feedback for too long.
        for path in self.paths:
            name = path.state.name
            silent_for = now - max(self._last_feedback[name], self._util_since[name])
            if self._util_bytes[name] > 0 and silent_for > self.feedback_timeout:
                self.controllers[name].on_feedback_timeout(now)
                self.allocation = self.degradation.allocate(self.budget_bps, now)
        budget = self.budget_bps
        self._global_tokens = min(
            self._global_tokens + budget * self.tick,
            max(0.015 * budget, 24_000.0),
        )
        for tx in self._tx.values():
            rate = self.allocation.rate(tx.spec.stream_id)
            tx.tokens = min(tx.tokens + rate * self.tick, rate * 0.25 + 1500 * 8)
        # Rate-driven sources generate data at the allocated rate.
        for stream_id, active in self.rate_generators.items():
            if not active:
                continue
            tx = self._tx[stream_id]
            rate = self.allocation.rate(stream_id)
            tx.gen_credit_bits += rate * self.tick
            msg_bits = tx.spec.message_bytes * 8
            while tx.gen_credit_bits >= msg_bits:
                tx.gen_credit_bits -= msg_bits
                self.submit(stream_id, tx.spec.message_bytes)
        # Drain backlogs in priority order; HIGHEST streams draw on the
        # global bucket only, others need both buckets.
        for tx in sorted(self._tx.values(), key=lambda t: t.spec.priority):
            highest = tx.spec.priority is Priority.HIGHEST
            while tx.backlog:
                cost = tx.backlog[0].size * 8
                if self._global_tokens < cost:
                    break
                if not highest and tx.tokens < cost:
                    break
                message = tx.backlog.popleft()
                if (message.expired(self.sim.now)
                        and tx.spec.traffic_class is not TrafficClass.CRITICAL):
                    tx.dropped += 1
                    continue
                self._global_tokens -= cost
                if not highest:
                    tx.tokens -= cost
                self._dispatch(tx, message)
            # Expire stale backlog heads even without tokens — except
            # for critical data, which is never discarded.
            if tx.spec.traffic_class is not TrafficClass.CRITICAL:
                while tx.backlog and tx.backlog[0].expired(self.sim.now):
                    tx.backlog.popleft()
                    tx.dropped += 1
        self.sim.schedule(self.tick, self._tick_loop)

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _dispatch(self, tx: _StreamTx, message: Message) -> None:
        chosen = self.scheduler.select(tx.spec, message)
        if not chosen:
            if tx.spec.priority.may_delay:
                tx.backlog.append(message)
            else:
                tx.dropped += 1
            return
        if message.seq == UNSEQUENCED:
            message.seq = tx.next_seq
            tx.next_seq += 1
        if tx.arq is not None and not message.is_retransmit and not message.fec_parity:
            tx.arq.store(message)
        for state in chosen:
            self._util_bytes[state.name] += message.size
            endpoint = self._endpoint_for(state.name)
            endpoint.socket.sendto(
                endpoint.dst,
                endpoint.dst_port,
                message.size + MARTP_HEADER,
                kind="martp-data",
                flow=f"martp:{tx.spec.name}",
                stream=message.stream_id,
                seq=message.seq,
                created=message.created_at,
                msg_deadline=message.deadline,
                parity=message.fec_parity,
                retransmit=message.is_retransmit,
                ts=self.sim.now,
                path=state.name,
            )
        tx.sent += 1
        tx.bytes_sent += message.size
        if tx.fec is not None and not message.is_retransmit and not message.fec_parity:
            parity = tx.fec.push(message)
            if parity is not None:
                self._dispatch(tx, parity)

    def _endpoint_for(self, name: str) -> PathEndpoint:
        for p in self.paths:
            if p.state.name == name:
                return p
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Feedback handling
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != "martp-feedback":
            return
        now = self.sim.now
        path_name = packet.payload.get("path")
        if path_name in self._last_feedback:
            self._last_feedback[path_name] = now
        controller = self.controllers.get(path_name)
        if controller is None:
            controller = next(iter(self.controllers.values()))
        echo_ts = packet.payload.get("echo_ts")
        hold = packet.payload.get("hold", 0.0)
        rtt_estimate = controller.srtt or 0.05
        if echo_ts is not None:
            rtt = max(1e-6, now - echo_ts - hold)
            controller.on_rtt_sample(rtt, now)
            rtt_estimate = rtt
            if path_name in self.scheduler.paths:
                self.scheduler.observe_rtt(path_name, rtt)
        loss = packet.payload.get("loss_fraction", 0.0)
        controller.on_loss(loss, now)
        # Budget validation: while application-limited, do not let the
        # unused budget balloon (it would take seconds of decreases to
        # drain when real congestion arrives).
        # The window must exceed the burst period of the slowest periodic
        # stream (reference frames every 0.5 s) or utilization is
        # systematically underestimated between bursts.
        if path_name in self._util_bytes:
            elapsed = now - self._util_since[path_name]
            if elapsed > 1.0:
                used_bps = self._util_bytes[path_name] * 8 / elapsed
                controller.cap_to_utilization(used_bps)
                self._util_bytes[path_name] = 0
                self._util_since[path_name] = now

        for stream_id, info in packet.payload.get("streams", {}).items():
            tx = self._tx.get(stream_id)
            if tx is None or tx.arq is None:
                continue
            tx.arq.ack_through(info["cum_ack"])
            nacks = info.get("nacks", [])
            if "highest" in info:
                tx.arq.ack_window(info["highest"], nacks)
            retransmit = tx.arq.nack(nacks, now, rtt_estimate)
            for message in retransmit:
                self._dispatch(tx, message)
            tx.arq.expire(now)

        self.allocation = self.degradation.allocate(self.budget_bps, now)
        self.allocation_trace.append((now, self.allocation))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stream_stats(self, stream_id: int) -> _StreamTx:
        return self._tx[stream_id]

    @property
    def budget_bps(self) -> float:
        """Combined budget over all currently usable paths."""
        usable = [
            self.controllers[p.state.name].budget_bps
            for p in self.paths
            if p.state.usable
        ]
        if not usable:
            return min(c.min_bps for c in self.controllers.values())
        return sum(usable)

    @property
    def congestion_events(self) -> int:
        return sum(c.congestion_events for c in self.controllers.values())

    @property
    def controller(self) -> RateController:
        """The single rate controller (single-path connections only)."""
        if len(self.controllers) != 1:
            raise AttributeError("multiple controllers; use .controllers")
        return next(iter(self.controllers.values()))

    def offered_rate_trace(self) -> List[Tuple[float, Dict[int, float]]]:
        """(time, per-stream allocated bps) — the Figure 4 series."""
        return [(t, dict(a.rates_bps)) for t, a in self.allocation_trace]


@dataclass
class _StreamRx:
    """Receiver-side per-stream state."""

    spec: StreamSpec
    highest: int = -1
    cum_ack: int = -1
    received_seqs: set = field(default_factory=set)
    received: int = 0
    in_time: int = 0
    bytes: int = 0
    recovered: int = 0
    duplicates: int = 0
    latencies: List[float] = field(default_factory=list)
    fec: Optional[FecDecoder] = None
    reorder: Dict[int, dict] = field(default_factory=dict)
    next_deliver: int = 0
    fb_highest: int = -1
    fb_received: int = 0
    prev_missing: set = field(default_factory=set)
    counted_lost: set = field(default_factory=set)
    #: seqs below this were pruned from ``received_seqs``; anything
    #: arriving under it is stale (already delivered or written off) and
    #: must not be delivered again.
    prune_floor: int = 0


class MartpReceiver:
    """The receiving half: delivery accounting, FEC recovery, feedback."""

    def __init__(
        self,
        host: Host,
        port: int,
        streams: List[StreamSpec],
        feedback_interval: float = DEFAULT_FEEDBACK_INTERVAL,
        on_message: Optional[Callable[[int, int, float], None]] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.socket = UdpSocket(host, port, on_receive=self._on_packet)
        self.feedback_interval = feedback_interval
        self.on_message = on_message
        self._rx: Dict[int, _StreamRx] = {}
        for spec in streams:
            rx = _StreamRx(spec=spec)
            if spec.fec:
                rx.fec = FecDecoder(spec.fec_group)
            self._rx[spec.stream_id] = rx
        self._last_packet_by_path: Dict[str, Tuple[float, float, str, int]] = {}
        self._window_expected = 0
        self._window_received = 0
        self._feedback_event = None

    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != "martp-data":
            return
        now = self.sim.now
        stream_id = packet.payload["stream"]
        rx = self._rx.get(stream_id)
        if rx is None:
            return
        path = packet.payload.get("path", "default")
        self._last_packet_by_path[path] = (
            packet.payload["ts"],
            now,
            packet.src,
            packet.src_port,
        )
        if packet.payload.get("parity"):
            if rx.fec is not None:
                recovered = rx.fec.on_parity(-packet.payload["seq"] - 1)
                rx.recovered += len(recovered)
            self._bump_window(packet)
            return

        seq = packet.payload["seq"]
        if seq in rx.received_seqs or seq < rx.prune_floor or seq <= rx.cum_ack:
            # ``received_seqs`` is pruned below the NACK window to bound
            # memory, so membership alone cannot reject a sufficiently
            # stale duplicate — without the floor check, a duplicate
            # older than the prune window would be re-counted as a fresh
            # receipt and delivered to the application a second time
            # (found by repro.check's degradation harness).
            rx.duplicates += 1
            return
        rx.received_seqs.add(seq)
        if seq > rx.highest + 1 and rx.spec.traffic_class.retransmits:
            # A fresh gap on a retransmitting stream: send feedback
            # almost immediately (the NACK equivalent of a dupack) so
            # recovery fits inside tight deadlines instead of waiting a
            # full feedback interval.
            self._arm_feedback(0.002)
        rx.highest = max(rx.highest, seq)
        rx.received += 1
        rx.bytes += packet.size
        latency = now - packet.payload["created"]
        rx.latencies.append(latency)
        if latency <= packet.payload["msg_deadline"]:
            rx.in_time += 1
        if rx.fec is not None:
            rx.fec.on_data(seq)
        # Advance the cumulative ack over contiguous receipt.
        while rx.cum_ack + 1 in rx.received_seqs:
            rx.cum_ack += 1
        self._deliver(rx, seq, latency)
        self._bump_window(packet)

    def _deliver(self, rx: _StreamRx, seq: int, latency: float) -> None:
        if self.on_message is None:
            return
        if rx.spec.traffic_class.ordered:
            rx.reorder[seq] = {"latency": latency}
            while rx.next_deliver in rx.reorder:
                info = rx.reorder.pop(rx.next_deliver)
                self.on_message(rx.spec.stream_id, rx.next_deliver, info["latency"])
                rx.next_deliver += 1
        else:
            self.on_message(rx.spec.stream_id, seq, latency)

    def _bump_window(self, packet: Packet) -> None:
        self._window_received += 1
        self._arm_feedback(self.feedback_interval)

    def _arm_feedback(self, delay: float) -> None:
        """Schedule feedback after ``delay``, keeping the earliest."""
        due = self.sim.now + delay
        if self._feedback_event is not None:
            if self._feedback_event.time <= due:
                return
            self._feedback_event = self.sim.reschedule_at(self._feedback_event, due)
            return
        self._feedback_event = self.sim.schedule(delay, self._send_feedback)

    # ------------------------------------------------------------------
    def _send_feedback(self) -> None:
        self._feedback_event = None
        streams_info = {}
        expected = 0
        confirmed_lost = 0
        for stream_id, rx in self._rx.items():
            missing = {
                s
                for s in range(max(0, rx.highest - NACK_WINDOW), rx.highest + 1)
                if s not in rx.received_seqs
            }
            streams_info[stream_id] = {
                "cum_ack": rx.cum_ack,
                "nacks": sorted(missing)[:32],
                "received": rx.received,
                "highest": rx.highest,
            }
            # Loss signal: a sequence only counts as lost once it has
            # stayed missing across two consecutive feedback rounds —
            # multipath reordering (a fast path racing ahead of a slow
            # one) would otherwise masquerade as heavy loss.
            confirmed = (rx.prev_missing & missing) - rx.counted_lost
            confirmed_lost += len(confirmed)
            rx.counted_lost |= confirmed
            rx.prev_missing = missing
            # Keep the counted set bounded to the NACK window.
            floor = rx.highest - 2 * NACK_WINDOW
            if floor > 0 and len(rx.counted_lost) > 4 * NACK_WINDOW:
                rx.counted_lost = {s for s in rx.counted_lost if s >= floor}
            expected += max(0, rx.highest - rx.fb_highest)
            rx.fb_highest = rx.highest
            rx.fb_received = rx.received
            # Prune the receive set below the NACK window to bound memory,
            # remembering the floor so late stragglers under it still
            # dedupe (see ``_on_packet``).
            floor = rx.highest - 2 * NACK_WINDOW
            if floor > 0 and len(rx.received_seqs) > 4 * NACK_WINDOW:
                rx.received_seqs = {s for s in rx.received_seqs if s >= floor}
                rx.prune_floor = max(rx.prune_floor, floor)
        loss_fraction = min(1.0, confirmed_lost / expected) if expected > 0 else 0.0
        # Send feedback back along every path that recently delivered,
        # so per-path RTTs stay fresh.
        for path, (ts, arrived, src, src_port) in list(self._last_packet_by_path.items()):
            hold = self.sim.now - arrived
            self.socket.sendto(
                src,
                src_port,
                FEEDBACK_SIZE,
                kind="martp-feedback",
                streams=streams_info,
                loss_fraction=loss_fraction,
                echo_ts=ts,
                hold=hold,
                path=path,
            )
        self._last_packet_by_path.clear()

    # ------------------------------------------------------------------
    def stream_stats(self, stream_id: int) -> _StreamRx:
        return self._rx[stream_id]

    def stats(self) -> Dict[int, _StreamRx]:
        return dict(self._rx)
