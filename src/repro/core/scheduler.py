"""Multipath scheduling (Section VI-D).

A MARTP connection may run over several access paths (typically WiFi
and LTE).  The paper proposes three user-facing policies, motivated by
LTE data pricing:

1. ``WIFI_ONLY_HANDOVER`` — WiFi all the time, LTE only to bridge WiFi
   handover gaps;
2. ``WIFI_PREFERRED`` — WiFi when available, LTE whenever it is not;
3. ``AGGREGATE`` — both simultaneously: latency-critical data on the
   lowest-RTT path, bulk data load-balanced, loss-recovery-class data
   optionally *duplicated* on both paths.

:class:`MultipathScheduler` implements path selection per message;
path quality (RTT, usability) is fed by the protocol's feedback loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.traffic import Message, Priority, StreamSpec, TrafficClass


class MultipathPolicy(enum.Enum):
    WIFI_ONLY_HANDOVER = "wifi-only-4g-handover"
    WIFI_PREFERRED = "wifi-preferred"
    AGGREGATE = "wifi-and-4g"


@dataclass
class PathState:
    """Sender-side view of one path."""

    name: str                      # e.g. "wifi", "lte"
    srtt: float = 0.1
    usable: bool = True
    is_metered: bool = False       # LTE-like: costs user money
    bytes_sent: int = 0
    weight: float = 1.0            # share for load balancing

    def observe_rtt(self, rtt: float) -> None:
        self.srtt = 0.875 * self.srtt + 0.125 * rtt


class MultipathScheduler:
    """Chooses the path (or paths) each message travels."""

    def __init__(self, paths: List[PathState], policy: MultipathPolicy) -> None:
        if not paths:
            raise ValueError("need at least one path")
        self.paths = {p.name: p for p in paths}
        self.policy = policy
        self.duplicate_loss_recovery = policy is MultipathPolicy.AGGREGATE
        self._rr_credit: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _unmetered(self) -> List[PathState]:
        return [p for p in self.paths.values() if p.usable and not p.is_metered]

    def _metered(self) -> List[PathState]:
        return [p for p in self.paths.values() if p.usable and p.is_metered]

    def _usable(self) -> List[PathState]:
        return [p for p in self.paths.values() if p.usable]

    def set_usable(self, name: str, usable: bool) -> None:
        self.paths[name].usable = usable

    def observe_rtt(self, name: str, rtt: float) -> None:
        self.paths[name].observe_rtt(rtt)

    # ------------------------------------------------------------------
    def select(self, spec: StreamSpec, message: Message) -> List[PathState]:
        """Paths this message should be sent on (possibly several).

        An empty list means the message cannot currently be sent (no
        usable path under the active policy).
        """
        candidates = self._candidates()
        if not candidates:
            return []

        latency_critical = spec.deadline <= 0.1 and spec.priority <= Priority.MEDIUM_NO_DISCARD
        if (
            self.duplicate_loss_recovery
            and spec.traffic_class is TrafficClass.LOSS_RECOVERY
            and len(candidates) > 1
        ):
            # Duplicate on the two best paths to avoid recovery RTTs.
            ranked = sorted(candidates, key=lambda p: p.srtt)
            chosen = ranked[:2]
        elif latency_critical:
            chosen = [min(candidates, key=lambda p: p.srtt)]
        else:
            chosen = [self._round_robin(candidates)]
        for path in chosen:
            path.bytes_sent += message.size
        return chosen

    def _candidates(self) -> List[PathState]:
        if self.policy is MultipathPolicy.AGGREGATE:
            return self._usable()
        unmetered = self._unmetered()
        if unmetered:
            return unmetered
        if self.policy in (MultipathPolicy.WIFI_PREFERRED, MultipathPolicy.WIFI_ONLY_HANDOVER):
            # Fall back to metered paths.  Under WIFI_ONLY_HANDOVER this
            # fallback exists only to bridge handover gaps; the caller
            # flips the WiFi path unusable during a gap and back after.
            return self._metered()
        return []

    def _round_robin(self, candidates: List[PathState]) -> PathState:
        # Smooth weighted round-robin (the nginx algorithm): every call
        # credits each candidate its weight, picks the highest credit,
        # then debits the picked path by the total weight.
        total = 0.0
        best: Optional[PathState] = None
        for path in sorted(candidates, key=lambda p: p.name):
            weight = max(path.weight, 1e-9)
            total += weight
            credit = self._rr_credit.get(path.name, 0.0) + weight
            self._rr_credit[path.name] = credit
            if best is None or credit > self._rr_credit[best.name]:
                best = path
        self._rr_credit[best.name] -= total
        return best

    # ------------------------------------------------------------------
    def metered_fraction(self) -> float:
        """Fraction of bytes that travelled metered (LTE) paths —
        the user-cost metric of the Section VI-D policy comparison."""
        total = sum(p.bytes_sent for p in self.paths.values())
        if total == 0:
            return 0.0
        metered = sum(p.bytes_sent for p in self.paths.values() if p.is_metered)
        return metered / total
