"""Graceful-degradation congestion control (Section VI-B).

Instead of a congestion *window*, MARTP maintains a sending-rate
*budget*.  The controller reacts to two signals, per the paper's
design notes:

- "a sudden rise of delay or jitter should be treated as a congestion
  indication, with immediate reaction" → a delay-gradient test against
  the observed base RTT;
- packet loss → multiplicative decrease, like TCP, for fairness.

Between congestion events the budget grows additively (one
``increase_quantum`` per RTT), which combined with the multiplicative
decrease gives AIMD fairness against TCP flows sharing the bottleneck —
property (2) of Section VI: "fair to other connections while exploiting
the maximum available bandwidth".

The budget is *advice to the degradation controller*, not a queue of
bytes: when the budget shrinks, the application sheds classes
(Figure 4) rather than pausing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class RateController:
    """AIMD-on-rate with delay-gradient early congestion detection.

    Parameters
    ----------
    initial_bps:
        Starting budget.
    min_bps:
        Floor: the budget never drops below this (the critical class
        must always fit — highest-priority data "should neither be
        discarded nor delayed").
    beta:
        Multiplicative decrease factor on congestion.
    increase_quantum_bps:
        Additive increase per RTT without congestion.
    delay_threshold:
        Queuing-delay rise (seconds above base RTT) treated as
        congestion even without loss.
    reaction_interval:
        Refractory period after a decrease — at most one multiplicative
        decrease per RTT-ish interval, mirroring TCP's once-per-window
        halving.
    """

    initial_bps: float = 2e6
    min_bps: float = 64_000.0
    max_bps: float = 1e9
    beta: float = 0.7
    increase_quantum_bps: float = 150_000.0
    delay_threshold: float = 0.015
    reaction_interval: float = 0.1

    budget_bps: float = field(init=False)
    base_rtt: Optional[float] = field(init=False, default=None)
    srtt: Optional[float] = field(init=False, default=None)
    last_decrease: float = field(init=False, default=-1e9)
    congestion_events: int = field(init=False, default=0)
    trace: List[Tuple[float, float]] = field(init=False, default_factory=list)
    _last_growth: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.budget_bps = self.initial_bps

    # ------------------------------------------------------------------
    def on_rtt_sample(self, rtt: float, now: float) -> None:
        """Feed one RTT measurement from receiver feedback."""
        if rtt <= 0:
            return
        if self.base_rtt is None or rtt < self.base_rtt:
            self.base_rtt = rtt
        self.srtt = rtt if self.srtt is None else 0.875 * self.srtt + 0.125 * rtt
        queuing = self.srtt - self.base_rtt
        if queuing > self.delay_threshold:
            self._decrease(now, reason="delay")
        else:
            self._increase(now)

    def on_loss(self, loss_fraction: float, now: float) -> None:
        """Feed the loss fraction reported in the last feedback window.

        Random wireless loss is not congestion: a moderate loss rate
        only triggers a decrease when queuing delay corroborates it
        (the paper's controller is delay-centric).  Heavy loss is
        treated as congestion unconditionally.
        """
        if loss_fraction > 0.15:
            self._decrease(now, reason="loss")
        elif loss_fraction > 0.01 and self.queuing_delay > self.delay_threshold * 0.5:
            self._decrease(now, reason="loss")

    # ------------------------------------------------------------------
    def _increase(self, now: float) -> None:
        interval = self.srtt if self.srtt else self.reaction_interval
        # Scale the quantum so the growth is ~quantum per RTT regardless
        # of how often feedback arrives: each call contributes the
        # fraction of an RTT that elapsed since the last growth step.
        # The elapsed time is capped at a few RTTs so a feedback gap
        # (handled separately by ``on_feedback_timeout``) cannot buy a
        # burst of credit.
        if self._last_growth is None:
            elapsed = interval
        else:
            elapsed = min(now - self._last_growth, 4.0 * interval)
        self._last_growth = now
        if elapsed <= 0:
            return
        gain = self.increase_quantum_bps * (elapsed / interval)
        self.budget_bps = min(self.max_bps, self.budget_bps + gain)
        self._record(now)

    def _decrease(self, now: float, reason: str) -> None:
        if now - self.last_decrease < self.reaction_interval:
            return
        self.last_decrease = now
        # Congested time is not growth time: restart the AI clock.
        self._last_growth = now
        self.congestion_events += 1
        self.budget_bps = max(self.min_bps, self.budget_bps * self.beta)
        self._record(now)

    def _record(self, now: float) -> None:
        self.trace.append((now, self.budget_bps))

    def on_feedback_timeout(self, now: float) -> None:
        """No feedback while data is flowing: the path is likely dead
        or fully congested — collapse multiplicatively toward the floor
        (one decrease per refractory interval, like any other
        congestion signal)."""
        self._decrease(now, reason="feedback-timeout")

    def cap_to_utilization(self, used_bps: float) -> None:
        """Bound the budget near what the sender actually uses.

        Like TCP's congestion-window validation (RFC 7661): an
        application-limited sender must not grow an arbitrarily large
        budget it has never validated, or the first real congestion
        episode takes many multiplicative decreases to drain.
        """
        if used_bps <= 0:
            return
        ceiling = max(used_bps * 3.0, self.min_bps)
        if self.budget_bps > ceiling:
            self.budget_bps = ceiling

    # ------------------------------------------------------------------
    @property
    def queuing_delay(self) -> float:
        if self.srtt is None or self.base_rtt is None:
            return 0.0
        return max(0.0, self.srtt - self.base_rtt)
