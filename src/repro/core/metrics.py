"""QoS/QoE metrics (the quantities the paper's figures report).

- :class:`ClassReport` — per-stream delivery accounting (in-time ratio,
  goodput, recovery counts).
- :class:`QoeReport` — session-level aggregation with an MOS-like
  score: MAR experience degrades with missed frame deadlines, stalls
  of critical data, and quality reduction of the video stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

from repro.analysis.stats import percentile as _stats_percentile
from repro.core.traffic import Priority, TrafficClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import MartpReceiver, MartpSender


@dataclass
class ClassReport:
    """Delivery report of one stream."""

    name: str
    traffic_class: TrafficClass
    priority: Priority
    sent: int
    dropped_at_sender: int
    received: int
    in_time: int
    recovered: int
    mean_latency: float
    p95_latency: float
    #: Declared full-quality rate; 0 when unknown.
    nominal_rate_bps: float = 0.0
    #: Rate actually delivered to the receiver; 0 when unknown.
    achieved_rate_bps: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        offered = self.sent + self.dropped_at_sender
        return self.received / offered if offered else 1.0

    @property
    def in_time_ratio(self) -> float:
        return self.in_time / self.received if self.received else 0.0

    @property
    def shed_ratio(self) -> float:
        offered = self.sent + self.dropped_at_sender
        return self.dropped_at_sender / offered if offered else 0.0

    @property
    def fulfillment(self) -> float:
        """How much of the stream's *need* was served: the worse of
        delivery ratio and achieved/nominal rate.  A stream starved at
        the source scores low here even with perfect delivery of what
        little it offered."""
        ratio = self.delivery_ratio
        if self.nominal_rate_bps > 0 and self.achieved_rate_bps > 0:
            ratio = min(ratio, self.achieved_rate_bps / self.nominal_rate_bps)
        return min(1.0, ratio)


# The single canonical linear-interpolation percentile lives in
# analysis.stats; this module used to carry a near-identical copy that
# differed in its interpolation form (convex combination vs.
# a + frac*(b-a)) and could disagree in the last ulp.  Keep the name as
# a deprecated alias so existing call sites and tests stay valid.
_percentile = _stats_percentile


def class_report(sender: "MartpSender", receiver: "MartpReceiver",
                 stream_id: int, duration: float = 0.0) -> ClassReport:
    """Join sender and receiver accounting for one stream."""
    tx = sender.stream_stats(stream_id)
    rx = receiver.stream_stats(stream_id)
    achieved = rx.bytes * 8 / duration if duration > 0 else 0.0
    return ClassReport(
        name=tx.spec.name,
        traffic_class=tx.spec.traffic_class,
        priority=tx.spec.priority,
        # Distinct data messages only: next_seq counts first
        # transmissions, excluding retransmits and FEC parity, so the
        # delivery ratio is not diluted by redundancy overhead.
        sent=tx.next_seq,
        dropped_at_sender=tx.dropped,
        received=rx.received,
        in_time=rx.in_time,
        recovered=rx.recovered,
        mean_latency=sum(rx.latencies) / len(rx.latencies) if rx.latencies else float("nan"),
        p95_latency=_percentile(rx.latencies, 95.0),
        nominal_rate_bps=tx.spec.nominal_rate_bps,
        achieved_rate_bps=achieved,
    )


@dataclass
class QoeReport:
    """Session-level quality of experience."""

    per_class: Dict[int, ClassReport]
    video_quality_timeline: List[float] = field(default_factory=list)
    duration: float = 0.0

    @property
    def critical_intact(self) -> bool:
        """Did every critical-class message arrive (the Figure 4 claim)?"""
        return all(
            r.delivery_ratio >= 0.999
            for r in self.per_class.values()
            if r.traffic_class is TrafficClass.CRITICAL
        )

    @property
    def mean_video_quality(self) -> float:
        tl = self.video_quality_timeline
        return sum(tl) / len(tl) if tl else 1.0


@dataclass
class ResilienceReport:
    """Failure-handling summary of one session (Section VI-B).

    Produced by :meth:`repro.core.resilience.ResilienceMetrics.report`;
    quantifies how the session behaved *around* failures: how fast they
    were detected, how long recovery took, and how service time and
    frames split between offloaded, degraded-local and dropped.
    """

    duration: float
    detection_delays: List[float] = field(default_factory=list)
    recovery_times: List[float] = field(default_factory=list)
    failovers: int = 0
    breaker_trips: int = 0
    frames_offloaded: int = 0
    frames_degraded: int = 0
    frames_dropped: int = 0
    offload_available_time: float = 0.0
    degraded_time: float = 0.0
    frames_total: int = 0

    @property
    def mean_detection_time(self) -> float:
        """Mean delay from last good contact to failure declaration."""
        d = self.detection_delays
        return sum(d) / len(d) if d else float("nan")

    @property
    def mttr(self) -> float:
        """Mean time from failure declaration to restored offloading."""
        r = self.recovery_times
        return sum(r) / len(r) if r else float("nan")

    @property
    def availability(self) -> float:
        """Fraction of the session with the offload service available."""
        if self.duration <= 0:
            return 0.0
        return min(1.0, self.offload_available_time / self.duration)

    @property
    def degraded_fraction(self) -> float:
        """Fraction of completed frames served in degraded-local mode."""
        done = self.frames_offloaded + self.frames_degraded
        return self.frames_degraded / done if done else 0.0

    @property
    def drop_fraction(self) -> float:
        return self.frames_dropped / self.frames_total if self.frames_total else 0.0

    @property
    def served_every_frame(self) -> bool:
        """Graceful degradation's bottom line: nothing was dropped."""
        return self.frames_dropped == 0 and self.frames_total > 0


def mos_score(report: QoeReport, deadline_weight: float = 3.0) -> float:
    """A 1–5 mean-opinion-score-like aggregate.

    Starts at 5 and subtracts for: missed deadlines on interactive
    classes (heaviest), critical-data loss (catastrophic), and reduced
    video quality (gentler — graceful degradation is the point).
    """
    score = 5.0
    for r in report.per_class.values():
        if r.traffic_class is TrafficClass.CRITICAL:
            # Both losing critical data and starving it are catastrophic.
            score -= 4.0 * (1.0 - r.fulfillment)
        elif r.priority is Priority.HIGHEST:
            score -= deadline_weight * (1.0 - r.in_time_ratio) * 0.5
        else:
            score -= (1.0 - r.in_time_ratio) * 0.25
    score -= (1.0 - report.mean_video_quality) * 1.0
    return max(1.0, min(5.0, score))
