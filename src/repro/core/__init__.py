"""MARTP — the AR-oriented transport protocol of Section VI.

The paper proposes six properties for a MAR transport; each maps to a
module here:

1. **Classful traffic** (VI-A) → :mod:`~repro.core.traffic`: three
   traffic classes (full best effort, best effort with loss recovery,
   critical) crossed with four priorities.
2. **Fairness + graceful degradation** (VI-B) →
   :mod:`~repro.core.congestion` (delay/loss rate controller producing
   a budget instead of a cwnd) and :mod:`~repro.core.degradation`
   (priority-ordered shedding of that budget across streams —
   Figure 4's alternative to halving a congestion window).
3. **Low latency + selective loss recovery** (VI-C) →
   :mod:`~repro.core.reliability`: deadline-aware ARQ and XOR FEC.
4. **Multipath** (VI-D) → :mod:`~repro.core.scheduler`: WiFi/LTE path
   selection with the three usage policies.
5. **Distributed** (VI-E) → :mod:`~repro.core.session`: multi-server
   and D2D offloading sessions (Figure 5 scenarios).
6. **Security/privacy** (VI-G) → :mod:`~repro.core.privacy`: payload
   anonymization budget accounting (region blurring before D2D share).

:mod:`~repro.core.protocol` assembles 1–4 into a working sender /
receiver pair over UDP; :mod:`~repro.core.metrics` computes the QoS/QoE
measures the benchmarks report.
"""

from repro.core.traffic import (
    TrafficClass,
    Priority,
    StreamSpec,
    Message,
    MAR_BASELINE_STREAMS,
)
from repro.core.congestion import RateController
from repro.core.degradation import Allocation, DegradationController
from repro.core.reliability import ArqBuffer, FecEncoder, FecDecoder
from repro.core.scheduler import MultipathScheduler, PathState, MultipathPolicy
from repro.core.protocol import MartpSender, MartpReceiver
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.core.metrics import ClassReport, QoeReport, ResilienceReport, mos_score
from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    DecorrelatedBackoff,
    HeartbeatMonitor,
    Liveness,
    ResilienceMetrics,
    RttEstimator,
    ServiceMode,
)
from repro.core.privacy import PrivacyFilter, SensitiveRegion
from repro.core.qlog import EventLog, instrument_sender

__all__ = [
    "TrafficClass",
    "Priority",
    "StreamSpec",
    "Message",
    "MAR_BASELINE_STREAMS",
    "RateController",
    "Allocation",
    "DegradationController",
    "ArqBuffer",
    "FecEncoder",
    "FecDecoder",
    "MultipathScheduler",
    "PathState",
    "MultipathPolicy",
    "MartpSender",
    "MartpReceiver",
    "OffloadSession",
    "ScenarioBuilder",
    "ClassReport",
    "QoeReport",
    "ResilienceReport",
    "mos_score",
    "BreakerState",
    "CircuitBreaker",
    "DecorrelatedBackoff",
    "HeartbeatMonitor",
    "Liveness",
    "ResilienceMetrics",
    "RttEstimator",
    "ServiceMode",
    "PrivacyFilter",
    "SensitiveRegion",
    "EventLog",
    "instrument_sender",
]
