"""Privacy filtering for shared visual data (Section VI-G).

Before offloading camera data — especially to *other users' devices*
in a D2D context — "at least faces, license plates and visible street
plates should be blurred".  :class:`PrivacyFilter` implements that
contract on the synthetic frames of :mod:`repro.vision`: sensitive
regions are box-blurred in place, and the filter reports the compute
cost and the information destroyed so benchmarks can quantify the
privacy/utility trade-off (blurring regions removes corners the vision
pipeline would otherwise use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import ndimage

#: Cycles per blurred pixel (separable gaussian).
CYCLES_PER_BLURRED_PIXEL = 90.0


@dataclass(frozen=True)
class SensitiveRegion:
    """An axis-aligned region to anonymize: (x, y, width, height), pixels."""

    x: int
    y: int
    width: int
    height: int
    kind: str = "face"   # face | license-plate | street-plate | custom

    @property
    def area(self) -> int:
        return self.width * self.height

    def clamp(self, img_h: int, img_w: int) -> "SensitiveRegion":
        x = max(0, min(self.x, img_w - 1))
        y = max(0, min(self.y, img_h - 1))
        w = max(1, min(self.width, img_w - x))
        h = max(1, min(self.height, img_h - y))
        return SensitiveRegion(x, y, w, h, self.kind)


@dataclass
class FilterResult:
    """Outcome of anonymizing one frame."""

    frame: np.ndarray
    regions_blurred: int
    pixels_blurred: int
    megacycles: float


class PrivacyFilter:
    """Blurs declared sensitive regions before a frame leaves the device.

    ``sigma`` controls how destructive the blur is; levels follow the
    I-PIC idea of user-selected privacy levels.
    """

    LEVELS = {"low": 2.0, "medium": 4.0, "high": 8.0}

    def __init__(self, level: str = "medium") -> None:
        if level not in self.LEVELS:
            raise ValueError(f"unknown privacy level {level!r}")
        self.level = level
        self.sigma = self.LEVELS[level]

    def apply(self, frame: np.ndarray, regions: Sequence[SensitiveRegion]) -> FilterResult:
        """Blur every region; returns a new frame plus cost accounting."""
        out = np.array(frame, dtype=np.float64, copy=True)
        img_h, img_w = out.shape
        pixels = 0
        for region in regions:
            r = region.clamp(img_h, img_w)
            patch = out[r.y : r.y + r.height, r.x : r.x + r.width]
            out[r.y : r.y + r.height, r.x : r.x + r.width] = ndimage.gaussian_filter(
                patch, self.sigma
            )
            pixels += r.area
        return FilterResult(
            frame=out,
            regions_blurred=len(regions),
            pixels_blurred=pixels,
            megacycles=pixels * CYCLES_PER_BLURRED_PIXEL / 1e6,
        )

    @staticmethod
    def information_loss(before: np.ndarray, after: np.ndarray) -> float:
        """Mean absolute pixel change — a proxy for destroyed detail."""
        return float(np.abs(np.asarray(before) - np.asarray(after)).mean())
