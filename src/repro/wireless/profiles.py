"""Access-network profiles built from the measurements in Section IV-A.

Each :class:`AccessProfile` captures the *measured* (not theoretical)
behaviour of one access technology as reported in the paper: mean and
range of downlink/uplink throughput, round-trip latency, jitter and
loss.  Profiles build :class:`~repro.simnet.link.VariableRateLink`
pairs so simulated paths exhibit the large throughput variance the
paper stresses ("abrupt changes of several orders of magnitude").

Sources for the numbers (paper Section IV-A, quoting OpenSignal,
SpeedTest, Xu et al., the NGMN 5G White Paper):

========== =========================== ======================== ===========
technology downlink (Mb/s)             uplink (Mb/s)            RTT (ms)
========== =========================== ======================== ===========
HSPA+      0.66–3.48 (avg ~2), to 7    ~1.5                     110–131, to 800
LTE        6.56–19.61 (avg ~12)        ~7.94                    66–85
802.11n    ~6.7 (public APs)           similar                  ~150 (public)
802.11ac   ~33.4                       similar                  ~150 (public)
home WiFi  up to link rate             symmetric                "a few ms"
5G (KPI)   300                         50                       10 (E2E)
LTE-Direct 1000 (D2D, ~1 km)           symmetric                <10
WiFi-Direct 500 (D2D, ~200 m)          symmetric                <10
========== =========================== ======================== ===========
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simnet.link import VariableRateLink
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue, QueueDiscipline

#: Minimum uplink bandwidth for "a video feed with enough information to
#: perform advanced AR operations" (Section III-B).
MAR_MIN_UPLINK_BPS = 10e6

#: Maximum tolerable round-trip latency for MAR (Section III-B).
MAR_MAX_RTT = 0.075

#: Maximum tolerable jitter so a 30 FPS stream never skips a frame
#: (Section IV, intro).
MAR_MAX_JITTER = 0.030


#: Floor on the per-user capacity share under background load, so an
#: overloaded cell (ρ→1 and beyond) degrades gracefully instead of
#: starving the foreground session outright.
MIN_LOAD_SHARE = 0.02

#: Cap on the extra loss the overload residue may add (ρ>1 sheds the
#: excess offered load; beyond 2x capacity everything above the cap is
#: already reflected in the throughput share).
MAX_OVERLOAD_LOSS = 0.5


def mbps(x: float) -> float:
    """Megabits/s to bits/s."""
    return x * 1e6


@dataclass(frozen=True)
class LoadFactors:
    """How a background utilization ρ degrades one more user's service.

    ``share`` multiplies throughputs, ``delay_factor`` multiplies RTT
    and jitter, ``extra_loss`` adds to the loss probability.  At ρ=0
    the factors are exactly ``(1.0, 1.0, 0.0)`` — multiplying by them
    is bit-exact identity, which the zero-background fast path of
    :mod:`repro.scale.coupling` relies on.
    """

    share: float
    delay_factor: float
    extra_loss: float

    @property
    def is_identity(self) -> bool:
        return (self.share == 1.0 and self.delay_factor == 1.0
                and self.extra_loss == 0.0)


def load_factors(utilization: float) -> LoadFactors:
    """Service-degradation factors at background utilization ρ.

    - throughput scales by the processor-sharing residue
      ``max(1-ρ, MIN_LOAD_SHARE)`` (802.11 DCF and cellular schedulers
      both approximate equal resource shares);
    - delay inflates by the M/M/1-style factor ``1 + ρ/(1-ρ)``,
      capped via :data:`MIN_LOAD_SHARE` — the paper's "oversized
      uplink buffers" effect at cell scale;
    - loss picks up the overload residue once offered load exceeds
      capacity (ρ>1 sheds the excess), capped at
      :data:`MAX_OVERLOAD_LOSS`.
    """
    rho = max(0.0, float(utilization))
    share = max(1.0 - rho, MIN_LOAD_SHARE)
    delay_factor = 1.0 + min(rho, 1.0) / max(1.0 - rho, MIN_LOAD_SHARE)
    extra_loss = min(max(rho - 1.0, 0.0) / max(rho, 1.0), MAX_OVERLOAD_LOSS)
    return LoadFactors(share=share, delay_factor=delay_factor,
                       extra_loss=extra_loss)


@dataclass(frozen=True)
class AccessProfile:
    """Measured behaviour of one access technology.

    Rates are in bits/s, times in seconds.  ``rtt`` is the full
    round-trip budget of the access segment; when building a duplex
    link each direction gets ``rtt / 2`` of propagation delay.
    """

    name: str
    down_mean: float
    down_min: float
    down_max: float
    up_mean: float
    up_min: float
    up_max: float
    rtt: float
    rtt_jitter: float = 0.0
    loss: float = 0.0
    #: Coefficient of throughput variation for the AR(1) rate process.
    sigma: float = 0.25
    #: Typical coverage radius in metres (D2D / AP technologies).
    range_m: Optional[float] = None
    #: True when the technology is device-to-device (no infrastructure).
    d2d: bool = False

    @property
    def asymmetry_ratio(self) -> float:
        return self.down_mean / self.up_mean

    def meets_mar_uplink(self) -> bool:
        """Does the *measured mean* uplink carry a minimal AR video feed?"""
        return self.up_mean >= MAR_MIN_UPLINK_BPS

    def meets_mar_latency(self) -> bool:
        return self.rtt <= MAR_MAX_RTT

    def meets_mar_jitter(self) -> bool:
        return self.rtt_jitter <= MAR_MAX_JITTER

    def mar_ready(self) -> bool:
        """All three MAR requirements at once (Section III-B / IV)."""
        return self.meets_mar_uplink() and self.meets_mar_latency() and self.meets_mar_jitter()

    # ------------------------------------------------------------------
    # Exogenous-load hook (repro.scale background population coupling)
    # ------------------------------------------------------------------
    def per_user_share(self, utilization: float) -> float:
        """Processor-sharing capacity fraction left for one more user.

        ``utilization`` is the background population's offered load as
        a fraction of cell capacity (the fluid model's ρ).  At ρ=0 the
        share is exactly 1.0 — the zero-background fast path must leave
        link parameters byte-identical — and it floors at
        :data:`MIN_LOAD_SHARE` so an overloaded cell degrades instead
        of dividing by zero.
        """
        return load_factors(utilization).share

    def under_load(self, utilization: float) -> "AccessProfile":
        """Derive the profile one *additional* user experiences when a
        background population already fills ``utilization`` of the cell.

        This is the hook :mod:`repro.scale.coupling` uses to let the
        fluid background tier press on event-level foreground sessions:

        - throughputs scale by the processor-sharing residue
          :meth:`per_user_share` (802.11 DCF and cellular schedulers
          both approximate equal time/resource shares);
        - RTT and jitter inflate by the M/M/1-style queueing factor
          ``1 + ρ/(1-ρ)`` (capped via :data:`MIN_LOAD_SHARE`), the
          paper's "oversized uplink buffers" effect at cell scale;
        - loss picks up the overload residue once offered load exceeds
          capacity (admission pressure: ρ>1 sheds the excess).

        ``under_load(0.0)`` returns a profile whose fields are
        bit-equal to this one (every factor is exactly 1.0 / 0.0), so
        a zero-background foreground tier reproduces the uncoupled
        scenario byte-identically.
        """
        f = load_factors(utilization)
        return dataclasses.replace(
            self,
            down_mean=self.down_mean * f.share,
            down_min=min(self.down_min, self.down_mean * f.share),
            up_mean=self.up_mean * f.share,
            up_min=min(self.up_min, self.up_mean * f.share),
            rtt=self.rtt * f.delay_factor,
            rtt_jitter=self.rtt_jitter * f.delay_factor,
            loss=min(self.loss + f.extra_loss, 1.0),
        )

    # ------------------------------------------------------------------
    def build_duplex(
        self,
        net: Network,
        infrastructure: str,
        device: str,
        queue_down: Optional[QueueDiscipline] = None,
        queue_up: Optional[QueueDiscipline] = None,
        uplink_buffer_packets: int = 1000,
        static: bool = False,
    ) -> Dict[str, VariableRateLink]:
        """Attach this access technology between two existing nodes.

        ``down`` carries infrastructure→device traffic, ``up`` the
        reverse.  The uplink buffer defaults to the oversized ~1000
        packets the paper calls out (Section VI-H).  With
        ``static=True`` the rate process is frozen at the mean (useful
        for deterministic unit tests).
        """
        sim = net.sim
        sigma = 0.0 if static else self.sigma
        qd = queue_down if queue_down is not None else DropTailQueue(100)
        qu = queue_up if queue_up is not None else DropTailQueue(uplink_buffer_packets)
        down = VariableRateLink(
            sim,
            net[infrastructure],
            net[device],
            mean_rate_bps=self.down_mean,
            min_rate_bps=self.down_min,
            max_rate_bps=self.down_max,
            sigma=sigma,
            delay=self.rtt / 2,
            jitter=self.rtt_jitter / 2,
            loss=self.loss,
            queue=qd,
            name=f"{self.name}:{infrastructure}->{device}",
        )
        up = VariableRateLink(
            sim,
            net[device],
            net[infrastructure],
            mean_rate_bps=self.up_mean,
            min_rate_bps=self.up_min,
            max_rate_bps=self.up_max,
            sigma=sigma,
            delay=self.rtt / 2,
            jitter=self.rtt_jitter / 2,
            loss=self.loss,
            queue=qu,
            name=f"{self.name}:{device}->{infrastructure}",
        )
        net.links.extend([down, up])
        return {"down": down, "up": up}


HSPA_PLUS = AccessProfile(
    name="HSPA+",
    down_mean=mbps(2.0), down_min=mbps(0.3), down_max=mbps(7.0),
    up_mean=mbps(1.5), up_min=mbps(0.2), up_max=mbps(1.5),
    rtt=0.120, rtt_jitter=0.300, loss=0.01, sigma=0.6,
)

LTE = AccessProfile(
    name="LTE",
    down_mean=mbps(12.0), down_min=mbps(3.0), down_max=mbps(40.0),
    up_mean=mbps(7.94), up_min=mbps(1.0), up_max=mbps(20.0),
    rtt=0.075, rtt_jitter=0.030, loss=0.003, sigma=0.35,
)

WIFI_N = AccessProfile(
    name="802.11n(public)",
    down_mean=mbps(6.7), down_min=mbps(0.5), down_max=mbps(40.0),
    up_mean=mbps(6.7), up_min=mbps(0.5), up_max=mbps(40.0),
    rtt=0.150, rtt_jitter=0.060, loss=0.01, sigma=0.4, range_m=60.0,
)

WIFI_AC = AccessProfile(
    name="802.11ac(public)",
    down_mean=mbps(33.4), down_min=mbps(5.0), down_max=mbps(200.0),
    up_mean=mbps(33.4), up_min=mbps(5.0), up_max=mbps(200.0),
    rtt=0.150, rtt_jitter=0.060, loss=0.01, sigma=0.4, range_m=40.0,
)

WIFI_HOME = AccessProfile(
    name="WiFi(controlled)",
    down_mean=mbps(120.0), down_min=mbps(40.0), down_max=mbps(300.0),
    up_mean=mbps(120.0), up_min=mbps(40.0), up_max=mbps(300.0),
    rtt=0.004, rtt_jitter=0.002, loss=0.001, sigma=0.1, range_m=30.0,
)

FIVE_G = AccessProfile(
    name="5G(KPI)",
    down_mean=mbps(300.0), down_min=mbps(50.0), down_max=mbps(1000.0),
    up_mean=mbps(50.0), up_min=mbps(10.0), up_max=mbps(100.0),
    rtt=0.010, rtt_jitter=0.005, loss=0.0005, sigma=0.2,
)

LTE_DIRECT = AccessProfile(
    name="LTE-Direct",
    down_mean=mbps(1000.0), down_min=mbps(100.0), down_max=mbps(1000.0),
    up_mean=mbps(1000.0), up_min=mbps(100.0), up_max=mbps(1000.0),
    rtt=0.008, rtt_jitter=0.004, loss=0.002, sigma=0.3, range_m=1000.0, d2d=True,
)

BLUETOOTH = AccessProfile(
    name="Bluetooth",
    down_mean=mbps(1.8), down_min=mbps(0.3), down_max=mbps(2.1),
    up_mean=mbps(1.8), up_min=mbps(0.3), up_max=mbps(2.1),
    rtt=0.030, rtt_jitter=0.015, loss=0.01, sigma=0.3, range_m=10.0, d2d=True,
)

WIFI_DIRECT = AccessProfile(
    name="WiFi-Direct",
    down_mean=mbps(500.0), down_min=mbps(20.0), down_max=mbps(500.0),
    up_mean=mbps(500.0), up_min=mbps(20.0), up_max=mbps(500.0),
    rtt=0.006, rtt_jitter=0.004, loss=0.005, sigma=0.4, range_m=200.0, d2d=True,
)


def all_profiles() -> List[AccessProfile]:
    """Every built-in profile, infrastructure technologies first."""
    return [HSPA_PLUS, LTE, WIFI_N, WIFI_AC, WIFI_HOME, FIVE_G,
            LTE_DIRECT, WIFI_DIRECT, BLUETOOTH]
