"""Wireless access-network models.

- :mod:`~repro.wireless.profiles` — stochastic link models for HSPA+,
  LTE, WiFi (802.11n/ac, home/public), 5G and D2D technologies, using
  the measured numbers quoted in Section IV-A of the paper.
- :mod:`~repro.wireless.wifi` — an 802.11 DCF airtime model exhibiting
  the performance-anomaly of Heusse et al. (Figure 2).
- :mod:`~repro.wireless.lte` — a shared-cell LTE capacity model.
- :mod:`~repro.wireless.d2d` — LTE-Direct / WiFi-Direct device-to-device
  links with range and mobility effects.
- :mod:`~repro.wireless.mobility` / :mod:`~repro.wireless.handover` —
  the city coverage study of Section IV-A4 (WiFi nominally available
  98.9 % of the time but usable only 53.8 %).
"""

from repro.wireless.profiles import (
    AccessProfile,
    BLUETOOTH,
    FIVE_G,
    HSPA_PLUS,
    LTE,
    LTE_DIRECT,
    MAR_MAX_RTT,
    MAR_MIN_UPLINK_BPS,
    WIFI_AC,
    WIFI_DIRECT,
    WIFI_HOME,
    WIFI_N,
    all_profiles,
)
from repro.wireless.wifi import WifiCell, WifiStation, anomaly_throughput
from repro.wireless.dcf import DcfChannel, DcfStation
from repro.wireless.lte import LteCell
from repro.wireless.slicing import Slice, SlicedCell
from repro.wireless.d2d import D2DLink, d2d_energy_per_bit
from repro.wireless.mobility import RandomWaypoint, Waypoint
from repro.wireless.handover import CoverageMap, ConnectivityTrace

__all__ = [
    "AccessProfile",
    "BLUETOOTH",
    "HSPA_PLUS",
    "LTE",
    "LTE_DIRECT",
    "WIFI_N",
    "WIFI_AC",
    "WIFI_HOME",
    "WIFI_DIRECT",
    "FIVE_G",
    "MAR_MIN_UPLINK_BPS",
    "MAR_MAX_RTT",
    "all_profiles",
    "WifiCell",
    "WifiStation",
    "anomaly_throughput",
    "DcfChannel",
    "DcfStation",
    "LteCell",
    "Slice",
    "SlicedCell",
    "D2DLink",
    "d2d_energy_per_bit",
    "RandomWaypoint",
    "Waypoint",
    "CoverageMap",
    "ConnectivityTrace",
]
