"""5G network slicing for MAR (Section IV-C).

The 5G White Paper KPIs the paper quotes assume AR gets treated as a
first-class service: "AR ... should be provided as a stable and
uninterrupted service in densely populated areas".  Network slicing is
the 5G mechanism for that: the cell's capacity is partitioned into
isolated slices with guaranteed minimums.

:class:`SlicedCell` builds per-UE access links whose uplinks run a
:class:`~repro.transport.rsvp.ReservedQueue` carrying each slice's
guarantee, so an eMBB bulk surge cannot starve the MAR slice — the
slice-level generalization of the per-flow RSVP experiment (A5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simnet.link import Link
from repro.simnet.network import Network
from repro.transport.rsvp import ReservedQueue


@dataclass(frozen=True)
class Slice:
    """One network slice: a guaranteed share of the cell."""

    name: str
    guaranteed_bps: float
    #: flow-label prefix identifying traffic of this slice
    flow_prefix: str = ""

    def matches(self, flow: str) -> bool:
        prefix = self.flow_prefix or self.name
        return flow.startswith(prefix)


class SlicedCell:
    """A 5G cell whose uplink enforces slice guarantees.

    Each attached UE gets a duplex pair; the uplink's queue is a
    :class:`ReservedQueue` with one reservation per slice.  Traffic
    claims its slice by setting the packet flow label to the slice's
    key (``flow_prefix`` or name) exactly; anything else rides the
    unreserved best-effort remainder.  The sum of guarantees must fit
    inside the uplink capacity.
    """

    def __init__(
        self,
        net: Network,
        core: str,
        slices: List[Slice],
        uplink_bps: float = 50e6,
        downlink_bps: float = 300e6,
        base_rtt: float = 0.010,
        name: str = "5g-cell",
    ) -> None:
        total = sum(s.guaranteed_bps for s in slices)
        if total > uplink_bps:
            raise ValueError(
                f"slice guarantees ({total / 1e6:.1f} Mb/s) exceed uplink "
                f"capacity ({uplink_bps / 1e6:.1f} Mb/s)"
            )
        self.net = net
        self.core = core
        self.slices = list(slices)
        self.uplink_bps = uplink_bps
        self.downlink_bps = downlink_bps
        self.base_rtt = base_rtt
        self.name = name
        self._ues: Dict[str, Dict[str, Link]] = {}

    # ------------------------------------------------------------------
    def attach(self, ue: str) -> Dict[str, Link]:
        if ue in self._ues:
            return self._ues[ue]
        sim = self.net.sim
        uplink_queue = ReservedQueue(capacity=1000)
        for slice_ in self.slices:
            uplink_queue.add_reservation(
                slice_.flow_prefix or slice_.name, slice_.guaranteed_bps
            )
        down = Link(
            sim, self.net[self.core], self.net[ue],
            rate_bps=self.downlink_bps, delay=self.base_rtt / 2,
            name=f"{self.name}:down:{ue}",
        )
        up = Link(
            sim, self.net[ue], self.net[self.core],
            rate_bps=self.uplink_bps, delay=self.base_rtt / 2,
            queue=uplink_queue, name=f"{self.name}:up:{ue}",
        )
        self.net.links.extend([down, up])
        self._ues[ue] = {"down": down, "up": up}
        return self._ues[ue]

    def slice_for(self, flow: str) -> Optional[Slice]:
        for slice_ in self.slices:
            if slice_.matches(flow):
                return slice_
        return None

    @property
    def unreserved_bps(self) -> float:
        return self.uplink_bps - sum(s.guaranteed_bps for s in self.slices)
