"""Device-to-device links: LTE-Direct and WiFi-Direct (Sections IV-A3/5).

The paper contrasts the two D2D technologies: LTE-Direct (licensed
spectrum, ~1 km range, ~1 Gb/s, better discovery, more energy-efficient
with many users) versus WiFi-Direct (~200 m, ~500 Mb/s, cheaper, more
energy-efficient for small transfers, strongly mobility-sensitive per
Chatzopoulos et al. [41]).

:class:`D2DLink` instantiates a duplex link between two devices from a
D2D :class:`~repro.wireless.profiles.AccessProfile`, derating the rate
with distance and relative mobility.  :func:`d2d_energy_per_bit`
encodes the energy cross-over reported in [40].
"""

from __future__ import annotations

import math

from repro.simnet.link import Link
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.wireless.profiles import AccessProfile, LTE_DIRECT, WIFI_DIRECT


class OutOfRangeError(ValueError):
    """The two devices are farther apart than the technology's range."""


def rate_at_distance(profile: AccessProfile, distance_m: float, mobility_ms: float = 0.0) -> float:
    """Effective symmetric D2D rate at a given distance and mobility.

    Rate falls off smoothly toward ~15 % of nominal at the range edge
    (log-distance path loss folded into a single derating curve), and
    mobility (relative speed, m/s) further derates WiFi-Direct-like
    technologies, matching the experimental finding of [41] that
    "bandwidth depends strongly on the mobility of the users".
    """
    if profile.range_m is None:
        raise ValueError(f"{profile.name} has no range; not a D2D profile?")
    if distance_m > profile.range_m:
        raise OutOfRangeError(
            f"{distance_m:.0f} m exceeds {profile.name} range {profile.range_m:.0f} m"
        )
    frac = distance_m / profile.range_m
    distance_derate = 1.0 - 0.85 * frac ** 1.5
    # ~6 %/ (m/s) of throughput lost to rate re-adaptation under motion,
    # saturating at 80 % loss; licensed-band LTE-Direct is half as
    # sensitive thanks to scheduled access.
    sensitivity = 0.03 if profile is LTE_DIRECT else 0.06
    mobility_derate = max(0.2, 1.0 - sensitivity * mobility_ms)
    return profile.down_mean * distance_derate * mobility_derate


class D2DLink:
    """A duplex device-to-device link between two hosts."""

    def __init__(
        self,
        net: Network,
        a: str,
        b: str,
        profile: AccessProfile = WIFI_DIRECT,
        distance_m: float = 20.0,
        mobility_ms: float = 0.0,
        buffer_packets: int = 100,
    ) -> None:
        if not profile.d2d:
            raise ValueError(f"{profile.name} is not a D2D technology")
        self.profile = profile
        self.distance_m = distance_m
        self.rate_bps = rate_at_distance(profile, distance_m, mobility_ms)
        sim = net.sim
        common = dict(
            rate_bps=self.rate_bps,
            delay=profile.rtt / 2,
            jitter=profile.rtt_jitter / 2,
            loss=profile.loss,
        )
        self.ab = Link(sim, net[a], net[b], queue=DropTailQueue(buffer_packets),
                       name=f"{profile.name}:{a}->{b}", **common)
        self.ba = Link(sim, net[b], net[a], queue=DropTailQueue(buffer_packets),
                       name=f"{profile.name}:{b}->{a}", **common)
        net.links.extend([self.ab, self.ba])

    def update_geometry(self, distance_m: float, mobility_ms: float = 0.0) -> None:
        """Re-derate the link after the devices moved."""
        self.distance_m = distance_m
        self.rate_bps = rate_at_distance(self.profile, distance_m, mobility_ms)
        self.ab.rate_bps = self.rate_bps
        self.ba.rate_bps = self.rate_bps


def d2d_energy_per_bit(profile: AccessProfile, n_peers: int, transfer_bytes: int) -> float:
    """Relative energy per transferred bit (arbitrary units).

    Encodes the qualitative comparison of Condoluci et al. [40] quoted
    in Section IV-A5: LTE-Direct wins when the number of users is
    relatively high (discovery amortized by the network), WiFi-Direct
    wins for small amounts of data (no licensed-band control overhead).
    """
    if not profile.d2d:
        raise ValueError(f"{profile.name} is not a D2D technology")
    bits = transfer_bytes * 8
    if profile is LTE_DIRECT:
        # High fixed control/discovery cost, amortized over peers & data.
        fixed = 5e6 / max(1, n_peers)
        per_bit = 0.8
    else:  # WiFi-Direct
        # Cheap setup, but per-peer group-owner overhead grows.
        fixed = 5e5 * math.sqrt(max(1, n_peers))
        per_bit = 1.0
    return (fixed + per_bit * bits) / bits
