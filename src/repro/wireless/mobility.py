"""Mobility models for the coverage/handover study (Section IV-A4).

:class:`RandomWaypoint` generates the classic random-waypoint walk over
a rectangular city area; :class:`Waypoint` trajectories can also be
built by hand for deterministic tests.  Positions are sampled on a
fixed tick so the coverage analysis in
:mod:`repro.wireless.handover` sees a regular time series.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Waypoint:
    """A position sample: time (s), x (m), y (m)."""

    t: float
    x: float
    y: float

    def distance_to(self, other: "Waypoint") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class RandomWaypoint:
    """Random-waypoint mobility in a ``width``×``height`` metre area.

    The walker picks a uniform destination and a uniform speed in
    ``[v_min, v_max]``, walks there in a straight line, pauses up to
    ``max_pause`` seconds, and repeats.
    """

    def __init__(
        self,
        width: float = 2000.0,
        height: float = 2000.0,
        v_min: float = 0.5,
        v_max: float = 2.0,
        max_pause: float = 60.0,
        seed: int = 0,
    ) -> None:
        if v_min <= 0 or v_max < v_min:
            raise ValueError("need 0 < v_min <= v_max")
        self.width = width
        self.height = height
        self.v_min = v_min
        self.v_max = v_max
        self.max_pause = max_pause
        self._rng = random.Random(seed)

    def trajectory(self, duration: float, tick: float = 1.0) -> List[Waypoint]:
        """Sample the walk every ``tick`` seconds for ``duration`` seconds."""
        rng = self._rng
        x = rng.uniform(0, self.width)
        y = rng.uniform(0, self.height)
        samples: List[Waypoint] = []
        t = 0.0
        while t < duration:
            # Choose next leg.
            dest_x = rng.uniform(0, self.width)
            dest_y = rng.uniform(0, self.height)
            speed = rng.uniform(self.v_min, self.v_max)
            pause = rng.uniform(0, self.max_pause)
            leg_len = math.hypot(dest_x - x, dest_y - y)
            leg_time = leg_len / speed
            # Walk the leg.
            steps = max(1, int(leg_time / tick))
            for i in range(1, steps + 1):
                if t >= duration:
                    break
                frac = min(1.0, (i * tick) / leg_time) if leg_time > 0 else 1.0
                samples.append(Waypoint(t, x + (dest_x - x) * frac, y + (dest_y - y) * frac))
                t += tick
            x, y = dest_x, dest_y
            # Pause at the destination.
            pause_steps = int(pause / tick)
            for _ in range(pause_steps):
                if t >= duration:
                    break
                samples.append(Waypoint(t, x, y))
                t += tick
        return samples

    @staticmethod
    def speeds(trajectory: List[Waypoint]) -> List[float]:
        """Instantaneous speed (m/s) between consecutive samples."""
        out = []
        for a, b in zip(trajectory, trajectory[1:]):
            dt = b.t - a.t
            out.append(a.distance_to(b) / dt if dt > 0 else 0.0)
        return out
