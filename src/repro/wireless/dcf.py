"""Slot-level 802.11 DCF: contention windows, collisions, backoff.

The airtime model in :mod:`repro.wireless.wifi` grants the channel to a
uniformly random backlogged station — a clean approximation that
reproduces the performance anomaly but hides *collisions*.  This module
simulates the MAC at slot level:

- each backlogged station draws a backoff from its contention window
  ``[0, CW)`` and counts down idle slots;
- stations reaching zero in the same slot **collide**: the channel is
  occupied for the longest colliding frame, nobody is credited, and
  every loser doubles its CW (binary exponential backoff, up to
  ``CW_MAX``);
- a successful transmission resets the winner's CW to ``CW_MIN``.

The model exposes the classic DCF results: collision probability grows
with the number of stations; goodput peaks at a small station count and
decays as contention overhead mounts; and the Heusse performance
anomaly emerges here too, now with collision losses on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.simnet.engine import Simulator

SLOT_TIME = 9e-6           # 802.11a/g slot
DIFS = 34e-6
SIFS_ACK = 44e-6           # SIFS + ACK at basic rate
CW_MIN = 16
CW_MAX = 1024


@dataclass
class DcfStation:
    """A saturated station with its own contention state."""

    name: str
    phy_rate_bps: float
    payload: int = 1500
    cw: int = CW_MIN
    backoff: int = 0
    bytes_sent: int = 0
    frames_sent: int = 0
    collisions: int = 0
    tx_log: List[Tuple[float, int]] = field(default_factory=list)

    def airtime(self) -> float:
        return DIFS + SIFS_ACK + self.payload * 8 / self.phy_rate_bps

    def throughput_bps(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        sent = sum(size for t, size in self.tx_log if t0 < t <= t1)
        return sent * 8 / (t1 - t0)


class DcfChannel:
    """Slot-synchronous DCF contention among saturated stations."""

    def __init__(self, sim: Simulator, name: str = "dcf") -> None:
        self.sim = sim
        self.name = name
        self.stations: Dict[str, DcfStation] = {}
        self._rng = sim.child_rng(f"dcf:{name}")
        self._running = False
        self.total_collisions = 0
        self.total_successes = 0

    # ------------------------------------------------------------------
    def add_station(self, station: DcfStation) -> DcfStation:
        if station.name in self.stations:
            raise ValueError(f"duplicate station {station.name!r}")
        station.backoff = self._rng.randrange(station.cw)
        self.stations[station.name] = station
        self._kick()
        return station

    def set_rate(self, name: str, phy_rate_bps: float) -> None:
        self.stations[name].phy_rate_bps = phy_rate_bps

    def _kick(self) -> None:
        if not self._running and self.stations:
            self._running = True
            self.sim.schedule(0.0, self._contend)

    # ------------------------------------------------------------------
    def _contend(self) -> None:
        """Jump to the next transmission attempt and resolve it."""
        if not self.stations:
            self._running = False
            return
        stations = list(self.stations.values())
        min_backoff = min(s.backoff for s in stations)
        winners = [s for s in stations if s.backoff == min_backoff]
        # Idle slots elapse for everyone.
        idle_time = min_backoff * SLOT_TIME
        for s in stations:
            s.backoff -= min_backoff

        if len(winners) == 1:
            winner = winners[0]
            busy = winner.airtime()
            self.sim.schedule(idle_time + busy, self._success, winner)
        else:
            # Collision: channel busy for the longest colliding frame.
            busy = max(s.airtime() for s in winners)
            self.sim.schedule(idle_time + busy, self._collision, winners)

    def _success(self, winner: DcfStation) -> None:
        winner.bytes_sent += winner.payload
        winner.frames_sent += 1
        winner.tx_log.append((self.sim.now, winner.payload))
        winner.cw = CW_MIN
        winner.backoff = self._rng.randrange(winner.cw)
        self.total_successes += 1
        self._contend()

    def _collision(self, losers: List[DcfStation]) -> None:
        self.total_collisions += 1
        for s in losers:
            s.collisions += 1
            s.cw = min(s.cw * 2, CW_MAX)
            s.backoff = self._rng.randrange(s.cw)
        self._contend()

    # ------------------------------------------------------------------
    @property
    def collision_probability(self) -> float:
        attempts = self.total_successes + self.total_collisions
        return self.total_collisions / attempts if attempts else 0.0

    def aggregate_throughput_bps(self, t0: float, t1: float) -> float:
        return sum(s.throughput_bps(t0, t1) for s in self.stations.values())
