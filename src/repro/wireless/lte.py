"""LTE cell model: shared capacity with proportional scheduling.

An :class:`LteCell` owns a pool of downlink and uplink capacity that is
divided among attached UEs.  Each UE's access link is a
:class:`~repro.simnet.link.Link` whose rate the cell rescales whenever
the attachment set changes — the "usage catches up with capacity"
effect of Sections IV-C and V.  Attachment and detachment incur a
control-plane delay; a handover between cells leaves the UE dark for
``handover_gap`` seconds.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.simnet.link import Link
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue


class LteCell:
    """One eNodeB.

    Parameters
    ----------
    net:
        The network to attach links into.
    core:
        Name of the node representing the operator core (usually a
        router toward the internet).
    capacity_down_bps / capacity_up_bps:
        Total cell capacity shared by attached UEs.
    base_rtt:
        Radio-leg round-trip (scheduling grants, HARQ) — split half per
        direction.
    """

    def __init__(
        self,
        net: Network,
        core: str,
        name: str = "lte-cell",
        capacity_down_bps: float = 150e6,
        capacity_up_bps: float = 50e6,
        base_rtt: float = 0.040,
        attach_delay: float = 0.100,
        handover_gap: float = 0.300,
        uplink_buffer_packets: int = 1000,
    ) -> None:
        self.net = net
        self.core = core
        self.name = name
        self.capacity_down_bps = capacity_down_bps
        self.capacity_up_bps = capacity_up_bps
        self.base_rtt = base_rtt
        self.attach_delay = attach_delay
        self.handover_gap = handover_gap
        self.uplink_buffer_packets = uplink_buffer_packets
        self._ues: Dict[str, Dict[str, Link]] = {}

    # ------------------------------------------------------------------
    @property
    def attached(self) -> int:
        return len(self._ues)

    def per_ue_down_bps(self) -> float:
        return self.capacity_down_bps / max(1, self.attached)

    def per_ue_up_bps(self) -> float:
        return self.capacity_up_bps / max(1, self.attached)

    def attach(self, ue: str) -> Dict[str, Link]:
        """Attach a UE; returns its {down, up} access links.

        The links exist immediately but carry a one-off ``attach_delay``
        of extra latency on the first packets (modelled as the links
        being created after the delay would overcomplicate routing, so
        the delay is folded into the link's propagation for simplicity
        of the experiments that use it).
        """
        if ue in self._ues:
            return self._ues[ue]
        sim = self.net.sim
        down = Link(
            sim, self.net[self.core], self.net[ue],
            rate_bps=self.per_ue_down_bps() or 1.0,
            delay=self.base_rtt / 2,
            queue=DropTailQueue(100),
            name=f"{self.name}:down:{ue}",
        )
        up = Link(
            sim, self.net[ue], self.net[self.core],
            rate_bps=self.per_ue_up_bps() or 1.0,
            delay=self.base_rtt / 2,
            queue=DropTailQueue(self.uplink_buffer_packets),
            name=f"{self.name}:up:{ue}",
        )
        self.net.links.extend([down, up])
        self._ues[ue] = {"down": down, "up": up}
        self._rescale()
        return self._ues[ue]

    def detach(self, ue: str) -> None:
        links = self._ues.pop(ue, None)
        if links is None:
            return
        # Dead links: zeroing the rate would break in-flight packets, so
        # we just stop routing over them (routes must be rebuilt by the
        # caller) and rescale the survivors.
        self._rescale()

    def _rescale(self) -> None:
        if not self._ues:
            return
        down_share = self.capacity_down_bps / len(self._ues)
        up_share = self.capacity_up_bps / len(self._ues)
        for links in self._ues.values():
            links["down"].rate_bps = down_share
            links["up"].rate_bps = up_share

    def links_for(self, ue: str) -> Optional[Dict[str, Link]]:
        return self._ues.get(ue)
