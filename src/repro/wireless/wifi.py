"""802.11 DCF airtime model and the performance anomaly (Figure 2).

Heusse et al. showed that CSMA/CA gives every station an (approximately)
equal *probability of winning a transmission opportunity*, not an equal
share of *airtime*: a station transmitting at a low PHY rate occupies
the channel far longer per frame, dragging every other station's
throughput down to roughly the slow station's level.

:class:`WifiCell` is a discrete-event realization: saturated stations
contend; each transmission grant goes to a uniformly random backlogged
station; the channel is then busy for that station's frame airtime
(PHY-rate dependent payload time plus rate-independent MAC overhead).
:func:`anomaly_throughput` gives the closed-form prediction for
validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.simnet.engine import Simulator

#: Per-frame MAC/PHY overhead that does not scale with the PHY rate:
#: DIFS + mean backoff + PLCP preamble + SIFS + ACK (seconds).
FRAME_OVERHEAD = 264e-6

#: Default MAC payload per frame (bytes).
FRAME_PAYLOAD = 1500


def frame_airtime(phy_rate_bps: float, payload: int = FRAME_PAYLOAD) -> float:
    """Channel occupancy of one frame at ``phy_rate_bps``."""
    if phy_rate_bps <= 0:
        raise ValueError("phy_rate_bps must be positive")
    return FRAME_OVERHEAD + payload * 8 / phy_rate_bps


def anomaly_throughput(phy_rates_bps: List[float], payload: int = FRAME_PAYLOAD) -> List[float]:
    """Closed-form per-station throughput under saturation.

    With equal access probability each station sends one frame per
    "round" of N frames, so every station's goodput is
    ``payload / sum_i airtime_i`` — the Heusse et al. result.  Returns
    bits/s per station (all equal).
    """
    total_airtime = sum(frame_airtime(r, payload) for r in phy_rates_bps)
    per_station = payload * 8 / total_airtime
    return [per_station for _ in phy_rates_bps]


@dataclass
class WifiStation:
    """A saturated 802.11 station.

    ``phy_rate_bps`` may be changed at any time (e.g. the station moved
    into a lower-rate coverage ring); subsequent frames use the new
    rate.
    """

    name: str
    phy_rate_bps: float
    payload: int = FRAME_PAYLOAD
    backlogged: bool = True
    bytes_sent: int = 0
    frames_sent: int = 0
    tx_log: List[Tuple[float, int]] = field(default_factory=list)

    def throughput_bps(self, t0: float, t1: float) -> float:
        """Goodput over ``(t0, t1]`` from the transmission log."""
        if t1 <= t0:
            return 0.0
        sent = sum(size for t, size in self.tx_log if t0 < t <= t1)
        return sent * 8 / (t1 - t0)


class WifiCell:
    """One access point's contention domain.

    Runs its own grant loop on the shared simulator: while any station
    is backlogged, pick a uniformly random backlogged station, occupy
    the channel for its frame airtime, credit the payload, repeat.
    """

    def __init__(self, sim: Simulator, name: str = "wifi-cell") -> None:
        self.sim = sim
        self.name = name
        self.stations: Dict[str, WifiStation] = {}
        self._rng = sim.child_rng(f"wifi:{name}")
        self._channel_busy = False

    def add_station(self, station: WifiStation) -> WifiStation:
        if station.name in self.stations:
            raise ValueError(f"duplicate station {station.name!r}")
        self.stations[station.name] = station
        self._kick()
        return station

    def set_rate(self, name: str, phy_rate_bps: float) -> None:
        """Change a station's PHY rate (e.g. it moved away from the AP)."""
        self.stations[name].phy_rate_bps = phy_rate_bps

    def set_backlogged(self, name: str, backlogged: bool) -> None:
        self.stations[name].backlogged = backlogged
        self._kick()

    def _kick(self) -> None:
        if not self._channel_busy and any(s.backlogged for s in self.stations.values()):
            self._channel_busy = True
            self.sim.schedule(0.0, self._grant)

    def _grant(self) -> None:
        contenders = [s for s in self.stations.values() if s.backlogged]
        if not contenders:
            self._channel_busy = False
            return
        winner = self._rng.choice(contenders)
        airtime = frame_airtime(winner.phy_rate_bps, winner.payload)
        self.sim.schedule(airtime, self._complete, winner)

    def _complete(self, station: WifiStation) -> None:
        station.bytes_sent += station.payload
        station.frames_sent += 1
        station.tx_log.append((self.sim.now, station.payload))
        self._grant()

    # ------------------------------------------------------------------
    def aggregate_throughput_bps(self, t0: float, t1: float) -> float:
        return sum(s.throughput_bps(t0, t1) for s in self.stations.values())
