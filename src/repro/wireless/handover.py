"""Coverage and handover model for the city study of Section IV-A4.

Castignani et al. (Wi2Me, 2012) measured, in a medium-sized French
city, that WiFi coverage was *nominally* present 98.9 % of the time
(99.23 % for 3G) but an actual Internet connection was available only
53.8 % of the time — killed by closed APs, association/authentication
delay, and multi-second handover gaps.

:class:`CoverageMap` places APs over an area; :meth:`connectivity`
walks a mobility trace through it and classifies every tick:

- ``in_range`` — at least one AP's radio footprint covers the walker;
- ``usable`` — the best AP is open, its backhaul works, association
  (``assoc_time``) has completed since entering it, and the walker is
  not inside a handover gap.

The same map answers cellular availability with a hashed Bernoulli
field so results are deterministic per seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.wireless.mobility import Waypoint


@dataclass(frozen=True)
class AccessPoint:
    name: str
    x: float
    y: float
    radius: float
    open: bool = True
    backhaul_ok: bool = True

    def covers(self, p: Waypoint) -> bool:
        return math.hypot(p.x - self.x, p.y - self.y) <= self.radius


@dataclass
class TickState:
    """Connectivity classification of one mobility sample."""

    t: float
    in_range: bool
    usable: bool
    ap: Optional[str]
    cellular: bool


@dataclass
class ConnectivityTrace:
    """Result of walking a trajectory through a coverage map."""

    ticks: List[TickState] = field(default_factory=list)

    def fraction(self, predicate) -> float:
        if not self.ticks:
            return 0.0
        return sum(1 for t in self.ticks if predicate(t)) / len(self.ticks)

    @property
    def wifi_in_range_fraction(self) -> float:
        return self.fraction(lambda t: t.in_range)

    @property
    def wifi_usable_fraction(self) -> float:
        return self.fraction(lambda t: t.usable)

    @property
    def cellular_fraction(self) -> float:
        return self.fraction(lambda t: t.cellular)

    @property
    def any_connectivity_fraction(self) -> float:
        return self.fraction(lambda t: t.usable or t.cellular)

    def handover_count(self) -> int:
        """Number of AP changes along the walk (None→AP not counted)."""
        count = 0
        prev = None
        for tick in self.ticks:
            if tick.ap is not None and prev is not None and tick.ap != prev:
                count += 1
            if tick.ap is not None:
                prev = tick.ap
        return count


class CoverageMap:
    """APs scattered over a ``width``×``height`` area plus a cellular layer."""

    def __init__(
        self,
        width: float = 2000.0,
        height: float = 2000.0,
        aps: Optional[Sequence[AccessPoint]] = None,
        cellular_coverage: float = 0.9923,
        seed: int = 0,
    ) -> None:
        self.width = width
        self.height = height
        self.aps: List[AccessPoint] = list(aps) if aps is not None else []
        self.cellular_coverage = cellular_coverage
        self.seed = seed

    # ------------------------------------------------------------------
    @classmethod
    def urban(
        cls,
        width: float = 2000.0,
        height: float = 2000.0,
        n_aps: int = 420,
        radius: float = 110.0,
        open_fraction: float = 0.27,
        backhaul_ok_fraction: float = 0.9,
        seed: int = 0,
    ) -> "CoverageMap":
        """Generate a dense urban AP deployment.

        The defaults are tuned so that a random-waypoint walk sees WiFi
        radio coverage ~99 % of the time while only ~55-60 % of APs
        yield a usable connection — the regime of the Wi2Me study.
        """
        rng = random.Random(seed)
        aps = [
            AccessPoint(
                name=f"ap{i}",
                x=rng.uniform(0, width),
                y=rng.uniform(0, height),
                radius=radius,
                open=rng.random() < open_fraction,
                backhaul_ok=rng.random() < backhaul_ok_fraction,
            )
            for i in range(n_aps)
        ]
        return cls(width, height, aps, seed=seed)

    # ------------------------------------------------------------------
    def cellular_at(self, p: Waypoint, grid: float = 100.0) -> bool:
        """Deterministic Bernoulli field: dead zones on a coarse grid."""
        cell = (int(p.x // grid), int(p.y // grid))
        rng = random.Random(f"{self.seed}:{cell[0]}:{cell[1]}")
        return rng.random() < self.cellular_coverage

    def best_ap(self, p: Waypoint) -> Optional[AccessPoint]:
        """Nearest covering AP, preferring open ones."""
        covering = [ap for ap in self.aps if ap.covers(p)]
        if not covering:
            return None
        covering.sort(key=lambda ap: (not ap.open, math.hypot(p.x - ap.x, p.y - ap.y)))
        return covering[0]

    def connectivity(
        self,
        trajectory: Sequence[Waypoint],
        assoc_time: float = 8.0,
        handover_gap: float = 4.0,
    ) -> ConnectivityTrace:
        """Classify every sample of a mobility trace.

        ``assoc_time`` models scan+associate+DHCP when joining an AP;
        ``handover_gap`` the additional dead time when switching APs
        ("handover ... can cause several seconds gaps").
        """
        trace = ConnectivityTrace()
        current_ap: Optional[str] = None
        usable_from = math.inf
        for p in trajectory:
            ap = self.best_ap(p)
            in_range = ap is not None
            if ap is None:
                current_ap = None
                usable_from = math.inf
            elif ap.name != current_ap:
                penalty = assoc_time + (handover_gap if current_ap is not None else 0.0)
                current_ap = ap.name
                usable_from = p.t + penalty
            usable = (
                ap is not None
                and ap.open
                and ap.backhaul_ok
                and p.t >= usable_from
            )
            trace.ticks.append(
                TickState(p.t, in_range, usable, ap.name if ap else None, self.cellular_at(p))
            )
        return trace
