"""Bounded DFS over a harness's choice tree.

The unit of exploration is one harness *step*: a bounded burst of
simulated activity that consults the world's :class:`Chooser` zero or
more times.  Each distinct sequence of picks inside a step is one edge
out of the current state; the explorer enumerates them by running the
step once with a scripted prefix, reading which decisions defaulted,
and queueing the sibling scripts (see
:meth:`ScriptController.sibling_scripts`).

States are forked with :meth:`Simulator.checkpoint` (a deepcopy of the
whole world), so exploration composes with any model code — TCP timers,
fault expiries, feedback loops — without those subsystems knowing they
are being checked.  A fingerprint-based visited set prunes converging
branches; depth/branch/state budgets bound the search.  All budgets are
event counts, never wall time: an explorer run is itself a pure
function of ``(harness, seed, budget)``.

Truncation is never silent: branches dropped by ``max_branch``, leaves
cut by ``max_depth``, and visited-set hits are all counted in the
:class:`ExploreResult` so "no violations" can be read alongside how
much of the tree was actually covered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.check.choices import ScriptController
from repro.check.invariants import Counterexample, state_digest
from repro.simnet.engine import Checkpoint


@dataclass(frozen=True)
class Budget:
    """Bounds for one exploration run (all counts, no wall time)."""

    max_states: int = 10_000      # harness steps executed
    max_depth: int = 10           # steps along any one path
    max_branch: int = 64          # queued sibling scripts per state
    max_violations: int = 1       # stop after this many counterexamples


@dataclass
class ExploreResult:
    """What one bounded exploration covered, and what it found."""

    harness: str
    seed: int
    budget: Budget
    states: int = 0               # steps executed (edges walked)
    unique_states: int = 0        # distinct fingerprints seen
    pruned_visited: int = 0       # branches cut at an already-seen state
    depth_limit_hits: int = 0     # paths cut by max_depth
    truncated_branches: int = 0   # sibling scripts dropped by max_branch
    finalized_leaves: int = 0     # leaves given a harness.finalize() check
    violations: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "harness": self.harness,
            "seed": self.seed,
            "states": self.states,
            "unique_states": self.unique_states,
            "pruned_visited": self.pruned_visited,
            "depth_limit_hits": self.depth_limit_hits,
            "truncated_branches": self.truncated_branches,
            "finalized_leaves": self.finalized_leaves,
            "violations": [c.to_dict() for c in self.violations],
        }


class _Frame:
    """One node of the DFS: a checkpoint plus its unexplored scripts."""

    __slots__ = ("checkpoint", "live", "scripts", "depth", "trace")

    def __init__(self, checkpoint: Checkpoint, live, depth: int,
                 trace: Tuple[Tuple[int, ...], ...]) -> None:
        self.checkpoint = checkpoint
        #: The in-memory world this node was materialized from; consumed
        #: by the node's first branch so a linear chain costs one
        #: deepcopy (the checkpoint), not two.
        self.live = live
        self.scripts: Deque[List[int]] = deque([[]])
        self.depth = depth
        self.trace = trace


def _record_violation(result: ExploreResult, harness, world, trace,
                      messages: List[str]) -> None:
    fingerprint = harness.fingerprint(world)
    plan = harness.fault_plan(world)
    result.violations.append(Counterexample(
        harness=harness.name,
        seed=result.seed,
        trace=[list(step) for step in trace],
        violations=list(messages),
        state=repr(fingerprint),
        digest=state_digest(fingerprint),
        fault_plan=plan.to_dict() if plan is not None else None,
    ))


def explore(harness, seed: int, budget: Optional[Budget] = None) -> ExploreResult:
    """Bounded DFS over ``harness``'s choice tree from ``seed``."""
    budget = budget or Budget()
    result = ExploreResult(harness=harness.name, seed=seed, budget=budget)

    world = harness.make_world(seed)
    visited = set()

    root_violations = harness.invariants(world)
    if root_violations:
        _record_violation(result, harness, world, (), root_violations)
        return result
    root_fp = harness.fingerprint(world)
    visited.add(root_fp)
    result.unique_states = 1

    stack: List[_Frame] = [
        _Frame(world.sim.checkpoint(world), world, depth=0, trace=())
    ]
    while stack:
        if result.states >= budget.max_states:
            break
        if len(result.violations) >= budget.max_violations:
            break
        frame = stack[-1]
        if not frame.scripts:
            stack.pop()
            continue
        script = frame.scripts.popleft()
        if frame.live is not None:
            world = frame.live
            frame.live = None
        else:
            _, world = frame.checkpoint.restore()

        controller = ScriptController(script)
        world.chooser.controller = controller
        harness.step(world)
        world.chooser.controller = None
        result.states += 1

        siblings = controller.sibling_scripts()
        room = budget.max_branch - len(frame.scripts)
        if len(siblings) > room:
            result.truncated_branches += len(siblings) - max(0, room)
            siblings = siblings[:max(0, room)]
        frame.scripts.extend(siblings)

        trace = frame.trace + (tuple(controller.picks),)
        violations = harness.invariants(world)
        if violations:
            _record_violation(result, harness, world, trace, violations)
            continue

        fingerprint = harness.fingerprint(world)
        if fingerprint in visited:
            result.pruned_visited += 1
            continue
        visited.add(fingerprint)
        result.unique_states += 1

        depth = frame.depth + 1
        if depth >= budget.max_depth:
            result.depth_limit_hits += 1
            # ``finalize`` returns None when it declines to drain this
            # leaf (budget cap, no live path); a list — possibly empty —
            # when it ran its end-of-trace checks.
            leaf_violations = harness.finalize(world)
            if leaf_violations is not None:
                result.finalized_leaves += 1
                if leaf_violations:
                    _record_violation(result, harness, world, trace,
                                      leaf_violations)
            continue

        stack.append(_Frame(world.sim.checkpoint(world), world,
                            depth=depth, trace=trace))
    return result
